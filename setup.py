"""Setuptools shim.

The reproduction environment is offline and has no ``wheel`` package, so the
PEP 517 editable-install path (which builds a wheel) is unavailable.  This
shim lets ``pip install -e .`` fall back to the classic ``setup.py develop``
code path; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
