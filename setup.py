"""Setuptools shim.

The reproduction environment is offline and has no ``wheel`` package, so the
PEP 517 editable-install path (which builds a wheel) is unavailable.  This
shim lets ``pip install -e .`` fall back to the classic ``setup.py develop``
code path.

The package itself has **no required third-party dependencies**.  NumPy is
an optional extra: ``pip install .[vector]`` unlocks ``engine="vector"``
(NumPy array kernels over the columnar batches, byte-identical answers);
without it the vector engine is absent from ``available_engines()`` and
requesting it raises a ``ValueError`` naming the valid engines.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    extras_require={
        # engine="vector": NumPy-backed kernels; pure-Python engines serve
        # everything when absent (see repro.relational.vector).
        "vector": ["numpy"],
        # faster Hungarian cross-check in the matcher tests
        "matching": ["scipy"],
    },
)
