"""Quickstart: evaluate a probabilistic query over an uncertain schema matching.

The script builds the library's ready-made experiment scenario — a TPC-H-like
purchase-order source instance matched against the Excel target schema, with
``h`` possible mappings produced by a k-best bipartite matching over the
composite matcher's scores — and evaluates one of the paper's queries with the
o-sharing algorithm.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_scenario, evaluate, evaluate_top_k
from repro.workloads import paper_query


def main() -> None:
    # 1. Build a scenario: source schema + instance, target schema, matcher
    #    output and the set of possible mappings with probabilities.
    scenario = build_scenario(target="Excel", h=100, scale=0.05)
    print("Scenario")
    print("--------")
    print(scenario.describe())
    print(f"matcher correspondences: {scenario.match_result.correspondence_count()}")
    print()

    # 2. Pick a target query (Q1 of the paper: three selections on PO).
    query = paper_query("Q1", scenario.target_schema)
    print("Target query")
    print("------------")
    print(query.describe())
    print()

    # 3. Evaluate it with o-sharing (the paper's best algorithm).
    result = evaluate(
        query,
        scenario.mappings,
        scenario.database,
        method="o-sharing",
        links=scenario.links,
    )
    print("Probabilistic answers (o-sharing)")
    print("---------------------------------")
    print(result.answers.pretty())
    print()
    print(
        f"executed {result.stats.source_operators} source operators in "
        f"{result.elapsed_seconds:.3f}s "
        f"({result.details['units_created']} e-units, "
        f"{result.details['representative_mappings']} representative mappings)"
    )
    print()

    # 4. Compare against the simple e-basic evaluator: identical answers,
    #    more work.
    baseline = evaluate(
        query,
        scenario.mappings,
        scenario.database,
        method="e-basic",
        links=scenario.links,
    )
    assert baseline.answers.equals(result.answers)
    print(
        "e-basic computes the same answers with "
        f"{baseline.stats.source_operators} source operators and "
        f"{baseline.stats.reformulations} query reformulations "
        f"(o-sharing needed {result.stats.reformulations})."
    )
    print()

    # 5. Top-k: only the most probable answers, without exact probabilities.
    top = evaluate_top_k(
        query, scenario.mappings, scenario.database, k=3, links=scenario.links
    )
    print("Top-3 answers")
    print("-------------")
    print(top.answers.pretty())


if __name__ == "__main__":
    main()
