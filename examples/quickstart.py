"""Quickstart: evaluate probabilistic queries over an uncertain schema matching.

The script builds the library's ready-made experiment scenario — a TPC-H-like
purchase-order source instance matched against the Excel target schema, with
``h`` possible mappings produced by a k-best bipartite matching over the
composite matcher's scores — then opens a :class:`repro.Session` (the
session-first public API: one long-lived connection owning the plan cache,
statistics catalog, optimizer memo and worker pools) and serves the paper's
queries through it.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_scenario, connect
from repro.workloads import paper_query


def main() -> None:
    # 1. Build a scenario: source schema + instance, target schema, matcher
    #    output and the set of possible mappings with probabilities.
    scenario = build_scenario(target="Excel", h=100, scale=0.05)
    print("Scenario")
    print("--------")
    print(scenario.describe())
    print(f"matcher correspondences: {scenario.match_result.correspondence_count()}")
    print()

    # 2. Pick a target query (Q1 of the paper: three selections on PO).
    query = paper_query("Q1", scenario.target_schema)
    print("Target query")
    print("------------")
    print(query.describe())
    print()

    # 3. Open a session.  All cross-query state (plan cache, statistics,
    #    optimizer memo, worker pools) lives here and is reused by every
    #    call; close() — or the context manager — releases it.
    with connect(scenario) as session:
        # 4. Evaluate with o-sharing (the paper's best algorithm — the
        #    session's default policy).
        result = session.query(query)
        print("Probabilistic answers (o-sharing)")
        print("---------------------------------")
        print(result.answers.pretty())
        print()
        print(
            f"executed {result.stats.source_operators} source operators in "
            f"{result.elapsed_seconds:.3f}s "
            f"({result.details['units_created']} e-units, "
            f"{result.details['representative_mappings']} representative mappings)"
        )
        print()

        # 5. Per-call overrides: compare against the simple e-basic
        #    evaluator — identical answers, more work.
        baseline = session.query(query, method="e-basic")
        assert baseline.answers.equals(result.answers)
        print(
            "e-basic computes the same answers with "
            f"{baseline.stats.source_operators} source operators and "
            f"{baseline.stats.reformulations} query reformulations "
            f"(o-sharing needed {result.stats.reformulations})."
        )
        print()

        # 6. A repeated workload shows why sessions exist: the second pass
        #    is served from the session's plan cache.
        workload = [paper_query(qid, scenario.target_schema) for qid in ("Q1", "Q2")] * 3
        cold_pass = session.query_many(workload)
        warm_pass = session.query_many(workload)
        print("Session reuse")
        print("-------------")
        print(
            f"first pass executed {cold_pass.stats.source_operators} source "
            f"operators; the repeat pass executed "
            f"{warm_pass.stats.source_operators} "
            f"({warm_pass.stats.plan_cache_hits} plan-cache hits, "
            f"lifetime hit rate {session.stats.plan_cache_hit_rate:.0%})"
        )
        print()

        # 7. Top-k: only the most probable answers, with early termination.
        top = session.top_k(query, k=3)
        print("Top-3 answers")
        print("-------------")
        print(top.answers.pretty())


if __name__ == "__main__":
    main()
