"""Integrating two e-commerce databases whose schemas were matched automatically.

This example exercises the *library adoption* path end to end with schemas and
data defined entirely in this file (nothing from ``repro.datagen``):

1. define a source schema (a web-shop operational database) and load a small
   source instance;
2. define a target schema (the analytics team's canonical model);
3. run the composite matcher and build possible mappings from its scores;
4. ask probabilistic queries against the *target* schema and read answers with
   probabilities reflecting the matching uncertainty;
5. ask a top-k query when only the most likely answers matter.

Run it with::

    python examples/ecommerce_integration.py
"""

from __future__ import annotations

from repro import Session, generate_possible_mappings, match_schemas
from repro.core import SchemaLinks, TargetQuery
from repro.relational import Database, Relation
from repro.relational.algebra import Aggregate, Product, Project, Scan, Select
from repro.relational.expressions import col
from repro.relational.predicates import Equals
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType

_S = DataType.STRING
_I = DataType.INTEGER
_F = DataType.FLOAT


# --------------------------------------------------------------------------- #
# 1. the source side: the web-shop's operational database
# --------------------------------------------------------------------------- #
def build_source() -> tuple[DatabaseSchema, Database, SchemaLinks]:
    shoppers = RelationSchema.build(
        "shoppers",
        [
            ("shopper_id", _I, "internal shopper key"),
            ("full_name", _S, "shopper name"),
            ("contact_phone", _S, "contact phone"),
            ("home_city", _S, "city"),
            ("loyalty_tier", _S, "loyalty tier"),
        ],
    )
    purchases = RelationSchema.build(
        "purchases",
        [
            ("purchase_id", _I, "purchase key"),
            ("shopper_id", _I, "buying shopper"),
            ("purchase_total", _F, "total amount"),
            ("pay_method", _S, "payment method"),
            ("ship_city", _S, "shipping city"),
        ],
    )
    catalog = RelationSchema.build(
        "catalog",
        [
            ("product_id", _I, "product key"),
            ("product_title", _S, "title"),
            ("list_price", _F, "list price"),
            ("category_name", _S, "category"),
        ],
    )
    schema = DatabaseSchema("WebShop", [shoppers, purchases, catalog])

    database = Database(schema)
    database.set_relation(
        "shoppers",
        Relation.from_schema(
            shoppers,
            [
                (1, "Ada Lovelace", "555-0100", "London", "gold"),
                (2, "Grace Hopper", "555-0101", "New York", "gold"),
                (3, "Alan Turing", "555-0102", "London", "silver"),
                (4, "Edsger Dijkstra", "555-0103", "Rotterdam", "bronze"),
            ],
        ),
    )
    database.set_relation(
        "purchases",
        Relation.from_schema(
            purchases,
            [
                (10, 1, 120.0, "card", "London"),
                (11, 1, 80.0, "card", "Cambridge"),
                (12, 2, 310.0, "invoice", "New York"),
                (13, 3, 45.0, "card", "London"),
                (14, 4, 260.0, "invoice", "Rotterdam"),
            ],
        ),
    )
    database.set_relation(
        "catalog",
        Relation.from_schema(
            catalog,
            [
                (100, "mechanical keyboard", 89.0, "peripherals"),
                (101, "vertical mouse", 59.0, "peripherals"),
                (102, "4k monitor", 420.0, "displays"),
            ],
        ),
    )
    links = SchemaLinks.from_pairs([("purchases", "shopper_id", "shoppers", "shopper_id")])
    return schema, database, links


# --------------------------------------------------------------------------- #
# 2. the target side: the analytics team's canonical customer model
# --------------------------------------------------------------------------- #
def build_target() -> DatabaseSchema:
    customer = RelationSchema.build(
        "Customer",
        [
            ("name", _S, "customer name"),
            ("phone", _S, "phone number"),
            ("city", _S, "home city"),
            ("tier", _S, "loyalty tier"),
        ],
    )
    order = RelationSchema.build(
        "Order",
        [
            ("total", _F, "order total"),
            ("payment", _S, "payment method"),
            ("city", _S, "shipping city"),
        ],
    )
    return DatabaseSchema("Analytics", [customer, order])


def main() -> None:
    source_schema, database, links = build_source()
    target_schema = build_target()

    # 3. Match the schemas and derive possible mappings with probabilities.
    match_result = match_schemas(source_schema, target_schema, threshold=0.35)
    print("Matcher correspondences (top 8)")
    print("-------------------------------")
    for correspondence in match_result.correspondences[:8]:
        print(f"  {correspondence}")
    mappings = generate_possible_mappings(match_result, h=12)
    print(f"\n{mappings.size} possible mappings, o-ratio {mappings.o_ratio():.2f}")
    print()

    # A session is the serving surface: one connection to this
    # (database, mappings) pair whose caches warm up across the queries.
    with Session(database, mappings, links=links) as session:

        # 4a. Which cities do our gold-tier customers live in?
        city_query = TargetQuery(
            Project(
                Select(Scan("Customer"), Equals(col("tier"), "gold")),
                [col("Customer.city")],
            ),
            target_schema,
            name="gold-cities",
        )
        result = session.query(city_query)
        print("π city σ tier='gold' Customer")
        print(result.answers.pretty())
        print()

        # 4b. How many card-paid orders shipped to London?  (an aggregate query)
        count_query = TargetQuery(
            Aggregate(
                Select(
                    Select(Scan("Order"), Equals(col("Order.city"), "London")),
                    Equals(col("Order.payment"), "card"),
                ),
                "COUNT",
            ),
            target_schema,
            name="london-card-orders",
        )
        result = session.query(count_query)
        print("COUNT(σ city='London' σ payment='card' Order)")
        print(result.answers.pretty())
        print()

        # 4c. A cross-schema query: customers paired with high-value orders.
        join_query = TargetQuery(
            Project(
                Select(
                    Product(Scan("Customer"), Scan("Order")),
                    Equals(col("Customer.tier"), "gold"),
                ),
                [col("Customer.name"), col("Order.total")],
            ),
            target_schema,
            name="gold-order-pairs",
        )
        result = session.query(join_query)
        print("π name,total σ tier='gold' (Customer × Order)  — top 5 answers")
        for answer in result.answers.ranked()[:5]:
            print(f"  {answer.values}  p={answer.probability:.3f}")
        print()

        # 5. Only the most confident answer matters?  Ask a top-k query.
        top = session.top_k(city_query, k=1)
        print("Top-1 gold-tier city")
        print(top.answers.pretty())


if __name__ == "__main__":
    main()
