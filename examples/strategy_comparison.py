"""Compare evaluation algorithms and operator-selection strategies on one query.

The script runs every exact evaluator (basic, e-basic, e-MQO, q-sharing,
o-sharing) and every o-sharing strategy (Random, SNF, SEF) on the paper's
default query Q4, verifies that they all return the same probabilistic
answers, and prints a side-by-side cost comparison — a miniature version of
the paper's Figure 11 / Table IV analysis, runnable in a few seconds.

Run it with::

    python examples/strategy_comparison.py
"""

from __future__ import annotations

import time

from repro import build_scenario, evaluate
from repro.bench.reporting import format_table
from repro.workloads import paper_query


def measure(query, scenario, method, **options):
    started = time.perf_counter()
    result = evaluate(
        query,
        scenario.mappings,
        scenario.database,
        method=method,
        links=scenario.links,
        **options,
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def main() -> None:
    scenario = build_scenario(target="Excel", h=60, scale=0.02)
    query = paper_query("Q4", scenario.target_schema)
    print(scenario.describe())
    print(query.describe())
    print()

    rows = []
    reference = None
    for method in ("basic", "e-basic", "e-mqo", "q-sharing", "o-sharing"):
        result, elapsed = measure(query, scenario, method)
        if reference is None:
            reference = result
        else:
            assert reference.answers.equals(result.answers), f"{method} disagrees with basic!"
        rows.append(
            [
                method,
                round(elapsed, 3),
                result.stats.source_operators,
                result.stats.source_queries,
                result.stats.reformulations,
                len(result.answers),
            ]
        )
    print("Evaluators (identical answers, different cost)")
    print(
        format_table(
            ["method", "seconds", "source operators", "source queries", "reformulations", "answers"],
            rows,
        )
    )
    print()

    rows = []
    for strategy in ("random", "snf", "sef"):
        result, elapsed = measure(query, scenario, "o-sharing", strategy=strategy, seed=11)
        assert reference.answers.equals(result.answers)
        rows.append(
            [
                strategy.upper(),
                round(elapsed, 3),
                result.stats.source_operators,
                result.details["units_created"],
            ]
        )
    print("o-sharing operator-selection strategies (Section VI-A)")
    print(format_table(["strategy", "seconds", "source operators", "e-units"], rows))


if __name__ == "__main__":
    main()
