"""Walk through the paper's running example (Figures 1-3, Sections I-V).

The example matches a Customer/C_Order/Nation source schema against a
Person/Order target schema under five possible mappings, and the paper works
out several query answers by hand.  This script reproduces every one of them:

* the introduction's query ``q0 = π_addr σ_phone='123' Person``,
* the Section III-B example ``π_phone σ_addr='aaa' Person``,
* the q-sharing partitioning of ``q1 = π_pname σ_addr='abc' Person``,
* the o-sharing evaluation of ``q2 = (σ_addr='hk' σ_phone='123' Person) × Order``,
* a probabilistic top-1 query.

Run it with::

    python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro.core import evaluate, evaluate_top_k
from repro.core.partition_tree import partition
from repro.datagen.paper_example import build_paper_example


def main() -> None:
    example = build_paper_example()

    print("Possible mappings (Figure 3)")
    print("----------------------------")
    for mapping in example.mappings:
        pairs = ", ".join(
            f"({source.split('.')[1]}, {target.split('.')[1]})"
            for target, source in sorted(mapping.correspondences.items())
        )
        print(f"  m{mapping.mapping_id}  Pr={mapping.probability:.1f}  {pairs}")
    print(f"  o-ratio of the mapping set: {example.mappings.o_ratio():.2f}")
    print()

    print("Customer relation (Figure 2)")
    print("----------------------------")
    print(example.database.relation("Customer").pretty())
    print()

    print("q0 = π_addr σ_phone='123' Person   (paper: {(aaa, 0.5), (hk, 0.5)})")
    result = evaluate(
        example.q0(), example.mappings, example.database,
        method="basic", links=example.links,
    )
    print(result.answers.pretty())
    print()

    print("π_phone σ_addr='aaa' Person   (paper: {(123, 0.5), (456, 0.8), (789, 0.2)})")
    result = evaluate(
        example.q_phone_by_addr(), example.mappings, example.database,
        method="o-sharing", links=example.links,
    )
    print(result.answers.pretty())
    print()

    print("q-sharing partitioning of q1 = π_pname σ_addr='abc' Person")
    print("(paper: P1={m1,m2}, P2={m3,m4}, P3={m5})")
    groups = partition(["Person.pname", "Person.addr"], example.mappings)
    for index, group in enumerate(groups, start=1):
        ids = ", ".join(f"m{mapping.mapping_id}" for mapping in group)
        total = sum(mapping.probability for mapping in group)
        print(f"  P{index} = {{{ids}}}  probability {total:.1f}")
    print()

    print("q2 = (σ_addr='hk' σ_phone='123' Person) × Order   (o-sharing, Section V)")
    result = evaluate(
        example.q2(), example.mappings, example.database,
        method="o-sharing", links=example.links,
    )
    print(result.answers.pretty())
    print(
        f"  e-units created: {result.details['units_created']}, "
        f"pruned through empty intermediates: {result.details['units_pruned_empty']}, "
        f"source operators executed: {result.stats.source_operators}"
    )
    baseline = evaluate(
        example.q2(), example.mappings, example.database,
        method="basic", links=example.links,
    )
    print(f"  (basic executes {baseline.stats.source_operators} source operators)")
    print()

    print("Top-1 of π_phone σ_addr='aaa' Person   (paper's Table II walks this through)")
    top = evaluate_top_k(
        example.q_phone_by_addr(), example.mappings, example.database,
        k=1, links=example.links,
    )
    print(top.answers.pretty())


if __name__ == "__main__":
    main()
