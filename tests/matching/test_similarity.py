"""Unit tests for the string similarity measures."""

import pytest

from repro.matching.similarity import (
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    ngram_similarity,
    prefix_suffix_similarity,
    token_similarity,
)

ALL_MEASURES = [
    levenshtein_similarity,
    jaro,
    jaro_winkler,
    ngram_similarity,
    token_similarity,
    prefix_suffix_similarity,
]


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("phone", "phone") == 0
        assert levenshtein_similarity("phone", "phone") == 1.0

    def test_empty_strings(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_similarity("", "") == 1.0

    def test_known_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_similarity_normalisation(self):
        assert levenshtein_similarity("kitten", "sitting") == pytest.approx(1 - 3 / 7)

    def test_single_substitution(self):
        assert levenshtein_distance("phone", "phono") == 1


class TestJaroWinkler:
    def test_identical(self):
        assert jaro("abc", "abc") == 1.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_no_common_characters(self):
        assert jaro("abc", "xyz") == 0.0

    def test_known_value(self):
        # Classical example: MARTHA vs MARHTA has Jaro similarity 0.944...
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_prefix_boost(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    def test_winkler_no_boost_without_common_prefix(self):
        assert jaro_winkler("abcd", "xbcd") == pytest.approx(jaro("abcd", "xbcd"))


class TestNgram:
    def test_identical(self):
        assert ngram_similarity("telephone", "telephone") == 1.0

    def test_disjoint(self):
        assert ngram_similarity("aaaa", "zzzz") == 0.0

    def test_short_strings_are_padded(self):
        assert ngram_similarity("ab", "ab") == 1.0
        assert 0.0 <= ngram_similarity("ab", "ac") < 1.0

    def test_both_empty(self):
        assert ngram_similarity("", "") == 1.0

    def test_one_empty(self):
        assert ngram_similarity("", "abc") == 0.0


class TestTokenAndPrefixSuffix:
    def test_token_similarity_shared_words(self):
        assert token_similarity("deliverToStreet", "deliver_street") == pytest.approx(0.8)

    def test_token_similarity_synonyms(self):
        # 'bill' expands to 'invoice', so billTo ~ invoiceTo share both tokens.
        assert token_similarity("billTo", "invoiceTo") == 1.0

    def test_token_similarity_disjoint(self):
        assert token_similarity("phone", "street") == 0.0

    def test_token_similarity_empty(self):
        assert token_similarity("", "") == 1.0
        assert token_similarity("", "x") == 0.0

    def test_prefix_suffix_identical(self):
        assert prefix_suffix_similarity("phone", "phone") == 1.0

    def test_prefix_suffix_partial(self):
        value = prefix_suffix_similarity("deliverto", "deliverstreet")
        assert 0.0 < value <= 1.0

    def test_prefix_suffix_empty(self):
        assert prefix_suffix_similarity("", "") == 1.0
        assert prefix_suffix_similarity("", "abc") == 0.0


class TestBounds:
    @pytest.mark.parametrize("measure", ALL_MEASURES)
    @pytest.mark.parametrize(
        "left,right",
        [
            ("telephone", "c_phone"),
            ("orderNum", "o_orderkey"),
            ("deliverToStreet", "c_deliverstreet"),
            ("quantity", "l_quantity"),
            ("", "x"),
            ("same", "same"),
        ],
    )
    def test_measures_stay_in_unit_interval(self, measure, left, right):
        value = measure(left, right)
        assert 0.0 <= value <= 1.0 + 1e-9

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_measures_are_symmetric_on_examples(self, measure):
        assert measure("ordernumber", "orderkey") == pytest.approx(
            measure("orderkey", "ordernumber")
        )
