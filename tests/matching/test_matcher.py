"""Unit tests for the composite matcher."""

import pytest

from repro.datagen.source_schema import source_schema
from repro.datagen.target_schemas import target_schema
from repro.matching.matcher import CompositeMatcher, MatchResult, match_schemas
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.types import DataType


def tiny_schemas():
    source = DatabaseSchema(
        "Src",
        [
            RelationSchema.build(
                "Customer",
                [("cname", DataType.STRING), ("ophone", DataType.STRING), ("oaddr", DataType.STRING)],
            )
        ],
    )
    target = DatabaseSchema(
        "Tgt",
        [
            RelationSchema.build(
                "Person",
                [("pname", DataType.STRING), ("phone", DataType.STRING), ("addr", DataType.STRING)],
            )
        ],
    )
    return source, target


class TestCompositeMatcher:
    def test_weights_are_normalised(self):
        matcher = CompositeMatcher(weights={"levenshtein": 2.0, "token": 2.0})
        assert sum(matcher.weights.values()) == pytest.approx(1.0)

    def test_non_positive_weights_rejected(self):
        with pytest.raises(ValueError):
            CompositeMatcher(weights={"levenshtein": 0.0})

    def test_attribute_similarity_bounds(self):
        matcher = CompositeMatcher()
        source = Attribute(relation="Customer", name="ophone")
        target = Attribute(relation="Person", name="phone")
        assert 0.0 <= matcher.attribute_similarity(source, target) <= 1.0

    def test_identical_names_score_highest(self):
        matcher = CompositeMatcher()
        same = matcher.attribute_similarity(
            Attribute("R", "telephone"), Attribute("T", "telephone")
        )
        different = matcher.attribute_similarity(
            Attribute("R", "telephone"), Attribute("T", "quantity")
        )
        assert same > different
        assert same > 0.9

    def test_match_produces_dense_score_matrix(self):
        source, target = tiny_schemas()
        result = match_schemas(source, target, threshold=0.3)
        assert set(result.scores) == {a.qualified for a in target.attributes}
        for row in result.scores.values():
            assert set(row) == {a.qualified for a in source.attributes}

    def test_expected_correspondences_found(self):
        source, target = tiny_schemas()
        result = match_schemas(source, target, threshold=0.4)
        best_phone = result.best_correspondence("Person.phone")
        assert best_phone is not None
        assert best_phone.source == "Customer.ophone"
        best_addr = result.best_correspondence("Person.addr")
        assert best_addr.source == "Customer.oaddr"

    def test_correspondences_sorted_by_score(self):
        source, target = tiny_schemas()
        result = match_schemas(source, target, threshold=0.2)
        scores = [c.score for c in result.correspondences]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_filters_correspondences(self):
        source, target = tiny_schemas()
        low = match_schemas(source, target, threshold=0.1).correspondence_count()
        high = match_schemas(source, target, threshold=0.8).correspondence_count()
        assert low >= high

    def test_candidates_and_score_lookup(self):
        source, target = tiny_schemas()
        result = match_schemas(source, target, threshold=0.3)
        candidates = result.candidates("Person.phone", limit=2)
        assert all(c.target == "Person.phone" for c in candidates)
        assert result.score("Person.phone", "Customer.ophone") > 0
        assert result.score("Person.phone", "unknown.attr") == 0.0


class TestFullSchemaMatching:
    @pytest.mark.parametrize("target_name", ["Excel", "Noris", "Paragon"])
    def test_purchase_order_schemas_have_rich_matchings(self, target_name):
        result = match_schemas(source_schema(), target_schema(target_name), threshold=0.45)
        # The paper reports 34/18/31 correspondences for its three schemas;
        # the composite matcher should find a comparably rich matching.
        assert result.correspondence_count() >= 15

    def test_ambiguous_attributes_have_multiple_candidates(self):
        result = match_schemas(source_schema(), target_schema("Excel"), threshold=0.45)
        # telephone is the paper's canonical ambiguous attribute (Figure 1).
        assert len(result.candidates("PO.telephone")) >= 2
