"""Unit tests for Murty's k-best assignment enumeration."""

import itertools

import pytest

from repro.matching.hungarian import FORBIDDEN, scipy_assignment_solver
from repro.matching.kbest import iter_best_assignments, k_best_assignments


def brute_force_ranking(weights):
    """All feasible assignments sorted by decreasing total weight."""
    rows, cols = len(weights), len(weights[0])
    ranking = []
    for permutation in itertools.permutations(range(cols), rows):
        if any(weights[i][j] <= FORBIDDEN / 2 for i, j in enumerate(permutation)):
            continue
        weight = sum(weights[i][j] for i, j in enumerate(permutation))
        ranking.append((weight, permutation))
    ranking.sort(key=lambda item: -item[0])
    return ranking


WEIGHTS = [
    [0.9, 0.5, 0.1, 0.0],
    [0.4, 0.8, 0.3, 0.0],
    [0.2, 0.6, 0.7, 0.0],
]


class TestKBest:
    def test_zero_k(self):
        assert k_best_assignments(WEIGHTS, 0) == []

    def test_empty_matrix(self):
        assert k_best_assignments([], 3) == []

    def test_first_assignment_is_optimal(self):
        best = k_best_assignments(WEIGHTS, 1)[0]
        expected_weight, _ = brute_force_ranking(WEIGHTS)[0]
        assert best.weight == pytest.approx(expected_weight)
        assert best.rank == 1

    def test_weights_are_non_increasing(self):
        ranked = k_best_assignments(WEIGHTS, 10)
        weights = [assignment.weight for assignment in ranked]
        assert weights == sorted(weights, reverse=True)

    def test_assignments_are_distinct(self):
        ranked = k_best_assignments(WEIGHTS, 10)
        assert len({assignment.assignment for assignment in ranked}) == len(ranked)

    def test_matches_brute_force_prefix(self):
        ranked = k_best_assignments(WEIGHTS, 6)
        expected = brute_force_ranking(WEIGHTS)[: len(ranked)]
        for mine, (weight, _) in zip(ranked, expected):
            assert mine.weight == pytest.approx(weight)

    def test_k_larger_than_solution_space(self):
        weights = [[1.0, 0.5], [0.5, 1.0]]
        ranked = k_best_assignments(weights, 10)
        assert len(ranked) == 2

    def test_forbidden_pairs_never_selected(self):
        weights = [[FORBIDDEN, 1.0, 0.5], [0.7, FORBIDDEN, 0.6]]
        for assignment in k_best_assignments(weights, 5):
            assert weights[0][assignment.assignment[0]] > FORBIDDEN / 2
            assert weights[1][assignment.assignment[1]] > FORBIDDEN / 2

    def test_lazy_iteration(self):
        iterator = iter_best_assignments(WEIGHTS, 3)
        first = next(iterator)
        assert first.rank == 1

    def test_scipy_solver_gives_same_ranking(self):
        plain = [a.weight for a in k_best_assignments(WEIGHTS, 8)]
        scipy_based = [
            a.weight for a in k_best_assignments(WEIGHTS, 8, solver=scipy_assignment_solver())
        ]
        assert plain == pytest.approx(scipy_based)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_matrices_match_brute_force(self, seed):
        import random

        rng = random.Random(seed)
        rows, cols = 3, 4
        weights = [[round(rng.random(), 3) for _ in range(cols)] for _ in range(rows)]
        ranked = k_best_assignments(weights, 5)
        expected = brute_force_ranking(weights)[:5]
        assert [a.weight for a in ranked] == pytest.approx([w for w, _ in expected])
