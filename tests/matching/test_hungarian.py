"""Unit tests for the maximum-weight assignment solver."""

import itertools

import pytest

from repro.matching.hungarian import (
    FORBIDDEN,
    assignment_weight,
    is_feasible,
    max_weight_assignment,
    scipy_assignment_solver,
)


def brute_force_best(weights):
    rows = len(weights)
    cols = len(weights[0])
    best = None
    for permutation in itertools.permutations(range(cols), rows):
        weight = sum(weights[i][j] for i, j in enumerate(permutation))
        if best is None or weight > best:
            best = weight
    return best


class TestMaxWeightAssignment:
    def test_empty(self):
        assert max_weight_assignment([]) == []

    def test_single_cell(self):
        assert max_weight_assignment([[5.0]]) == [0]

    def test_square_known_optimum(self):
        weights = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [3.0, 6.0, 9.0]]
        assignment = max_weight_assignment(weights)
        assert sorted(assignment) == [0, 1, 2]
        assert assignment_weight(weights, assignment) == brute_force_best(weights)

    def test_rectangular(self):
        weights = [[0.9, 0.1, 0.5], [0.2, 0.8, 0.7]]
        assignment = max_weight_assignment(weights)
        assert len(set(assignment)) == 2
        assert assignment_weight(weights, assignment) == brute_force_best(weights)

    def test_more_rows_than_columns_rejected(self):
        with pytest.raises(ValueError, match="rows <= columns"):
            max_weight_assignment([[1.0], [2.0]])

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            max_weight_assignment([[1.0, 2.0], [1.0]])

    def test_forbidden_pairs_avoided_when_possible(self):
        weights = [[FORBIDDEN, 1.0], [1.0, FORBIDDEN]]
        assignment = max_weight_assignment(weights)
        assert is_feasible(weights, assignment)

    def test_infeasible_detected(self):
        weights = [[FORBIDDEN, FORBIDDEN], [1.0, 1.0]]
        assignment = max_weight_assignment(weights)
        assert not is_feasible(weights, assignment)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_on_random_matrices(self, seed):
        import random

        rng = random.Random(seed)
        rows, cols = rng.randint(2, 4), rng.randint(4, 5)
        weights = [[rng.random() for _ in range(cols)] for _ in range(rows)]
        assignment = max_weight_assignment(weights)
        assert assignment_weight(weights, assignment) == pytest.approx(brute_force_best(weights))


class TestScipySolver:
    @pytest.fixture(autouse=True)
    def _needs_scipy(self):
        # SciPy is an optional cross-check, not a dependency of the solver.
        if scipy_assignment_solver() is None:
            pytest.skip("SciPy not installed")

    def test_solver_available(self):
        assert scipy_assignment_solver() is not None

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_pure_python(self, seed):
        import random

        rng = random.Random(100 + seed)
        rows, cols = rng.randint(2, 5), rng.randint(5, 6)
        weights = [[rng.random() for _ in range(cols)] for _ in range(rows)]
        scipy_solve = scipy_assignment_solver()
        ours = assignment_weight(weights, max_weight_assignment(weights))
        theirs = assignment_weight(weights, scipy_solve(weights))
        assert ours == pytest.approx(theirs)
