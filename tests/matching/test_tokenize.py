"""Unit tests for attribute-name tokenisation."""

from repro.matching.tokenize import (
    ABBREVIATIONS,
    normalize_tokens,
    normalized_name,
    segment_token,
    split_name,
)


class TestSplitName:
    def test_camel_case(self):
        assert split_name("deliverToStreet") == ["deliver", "to", "street"]

    def test_underscores(self):
        assert split_name("ship_to_phone") == ["ship", "to", "phone"]

    def test_prefix_and_run_together_words(self):
        assert split_name("o_orderkey") == ["o", "order", "key"]

    def test_digits_are_separated(self):
        assert split_name("item2name") == ["item", "2", "name"]

    def test_acronym_boundary(self):
        assert split_name("PONumber") == ["po", "number"]

    def test_empty(self):
        assert split_name("") == []

    def test_non_alnum_separators(self):
        assert split_name("ship-to.phone") == ["ship", "to", "phone"]


class TestSegmentToken:
    def test_two_words(self):
        assert segment_token("orderkey") == ["order", "key"]

    def test_word_plus_abbreviation(self):
        assert segment_token("itemnum") == ["item", "num"]

    def test_unknown_token_survives(self):
        assert segment_token("foobar") == ["foobar"]

    def test_partial_residue(self):
        assert segment_token("xorder") == ["x", "order"]

    def test_empty_token(self):
        assert segment_token("") == [""]


class TestNormalizeTokens:
    def test_abbreviations_expanded(self):
        assert normalize_tokens("custNo") == ["customer", "number"]

    def test_expansion_can_be_disabled(self):
        assert normalize_tokens("custNo", expand_abbreviations=False) == ["cust", "no"]

    def test_bill_is_a_synonym_of_invoice(self):
        assert "invoice" in normalize_tokens("billTo")
        assert ABBREVIATIONS["bill"] == "invoice"

    def test_normalized_name_joins_tokens(self):
        assert normalized_name("orderNum") == "ordernumber"
        assert normalized_name("o_orderkey") == "oorderkey"
