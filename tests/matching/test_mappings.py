"""Unit tests for the possible-mapping model."""

import pytest

from repro.datagen.source_schema import source_schema
from repro.datagen.target_schemas import target_schema
from repro.matching.mappings import Mapping, MappingSet, generate_possible_mappings
from repro.matching.matcher import match_schemas


def mapping(mapping_id, correspondences, probability=0.5, score=1.0):
    return Mapping(
        mapping_id=mapping_id,
        correspondences=correspondences,
        score=score,
        probability=probability,
    )


class TestMapping:
    def test_source_for(self):
        m = mapping(1, {"T.a": "S.x"})
        assert m.source_for("T.a") == "S.x"
        assert m.source_for("T.b") is None

    def test_size_and_pairs(self):
        m = mapping(1, {"T.a": "S.x", "T.b": "S.y"})
        assert m.size == 2
        assert ("T.a", "S.x") in m.pairs

    def test_covers(self):
        m = mapping(1, {"T.a": "S.x", "T.b": "S.y"})
        assert m.covers(["T.a", "T.b"])
        assert not m.covers(["T.a", "T.c"])

    def test_signature(self):
        m = mapping(1, {"T.a": "S.x"})
        assert m.signature(["T.a", "T.b"]) == ("S.x", None)

    def test_with_probability(self):
        m = mapping(1, {"T.a": "S.x"}, probability=0.2)
        changed = m.with_probability(0.7)
        assert changed.probability == 0.7
        assert changed.correspondences == m.correspondences

    def test_overlap_identical(self):
        m = mapping(1, {"T.a": "S.x", "T.b": "S.y"})
        assert m.overlap(m) == 1.0

    def test_overlap_partial(self):
        left = mapping(1, {"T.a": "S.x", "T.b": "S.y"})
        right = mapping(2, {"T.a": "S.x", "T.b": "S.z"})
        assert left.overlap(right) == pytest.approx(1 / 3)

    def test_overlap_empty_mappings(self):
        assert mapping(1, {}).overlap(mapping(2, {})) == 1.0


class TestMappingSet:
    def build(self):
        return MappingSet(
            [
                mapping(1, {"T.a": "S.x"}, probability=0.5, score=3.0),
                mapping(2, {"T.a": "S.y"}, probability=0.3, score=2.0),
                mapping(3, {"T.a": "S.x", "T.b": "S.y"}, probability=0.2, score=1.0),
            ]
        )

    def test_requires_at_least_one_mapping(self):
        with pytest.raises(ValueError):
            MappingSet([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MappingSet([mapping(1, {}), mapping(1, {})])

    def test_normalisation_from_scores(self):
        normalised = MappingSet(
            [mapping(1, {}, score=3.0), mapping(2, {}, score=1.0)], normalize=True
        )
        assert normalised[0].probability == pytest.approx(0.75)
        assert normalised.total_probability == pytest.approx(1.0)

    def test_normalisation_with_zero_scores_is_uniform(self):
        normalised = MappingSet(
            [mapping(1, {}, score=0.0), mapping(2, {}, score=0.0)], normalize=True
        )
        assert normalised[0].probability == pytest.approx(0.5)

    def test_lookup_by_id(self):
        mappings = self.build()
        assert mappings.mapping(2).probability == 0.3
        with pytest.raises(KeyError):
            mappings.mapping(99)

    def test_subset_renormalises(self):
        subset = self.build().subset(2)
        assert subset.size == 2
        assert subset.total_probability == pytest.approx(1.0)

    def test_subset_invalid(self):
        with pytest.raises(ValueError):
            self.build().subset(0)

    def test_probability_of_group(self):
        mappings = self.build()
        assert mappings.probability_of([mappings[0], mappings[2]]) == pytest.approx(0.7)

    def test_o_ratio_single_mapping(self):
        assert MappingSet([mapping(1, {"T.a": "S.x"})]).o_ratio() == 1.0

    def test_shared_correspondences(self):
        shared = self.build().shared_correspondences()
        assert shared == frozenset()
        same = MappingSet([mapping(1, {"T.a": "S.x"}), mapping(2, {"T.a": "S.x"})])
        assert same.shared_correspondences() == frozenset({("T.a", "S.x")})

    def test_iteration_and_indexing(self):
        mappings = self.build()
        assert len(mappings) == 3
        assert [m.mapping_id for m in mappings] == [1, 2, 3]
        assert mappings[1].mapping_id == 2


class TestGeneratePossibleMappings:
    @pytest.fixture(scope="class")
    def match_result(self):
        return match_schemas(source_schema(), target_schema("Excel"), threshold=0.45)

    def test_requires_positive_h(self, match_result):
        with pytest.raises(ValueError):
            generate_possible_mappings(match_result, 0)

    def test_generates_requested_count(self, match_result):
        mappings = generate_possible_mappings(match_result, 12)
        assert mappings.size == 12

    def test_probabilities_sum_to_one(self, match_result):
        mappings = generate_possible_mappings(match_result, 10)
        assert mappings.total_probability == pytest.approx(1.0)

    def test_probabilities_follow_score_order(self, match_result):
        mappings = generate_possible_mappings(match_result, 10)
        scores = [m.score for m in mappings]
        assert scores == sorted(scores, reverse=True)
        probabilities = [m.probability for m in mappings]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_mappings_are_one_to_one(self, match_result):
        mappings = generate_possible_mappings(match_result, 10)
        for m in mappings:
            sources = list(m.correspondences.values())
            assert len(sources) == len(set(sources)), "a source attribute was reused"

    def test_mappings_are_distinct(self, match_result):
        mappings = generate_possible_mappings(match_result, 10)
        assert len({m.pairs for m in mappings}) == 10

    def test_high_overlap_between_mappings(self, match_result):
        mappings = generate_possible_mappings(match_result, 20)
        # The paper's central observation: possible mappings overlap heavily.
        assert mappings.o_ratio() > 0.5

    def test_threshold_too_high_raises(self, match_result):
        with pytest.raises(ValueError, match="no correspondence"):
            generate_possible_mappings(match_result, 5, candidate_threshold=1.1)
