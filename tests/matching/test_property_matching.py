"""Property-based tests for the matching substrate (hypothesis)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.hungarian import assignment_weight, max_weight_assignment
from repro.matching.kbest import k_best_assignments
from repro.matching.mappings import Mapping, MappingSet
from repro.matching.similarity import (
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    ngram_similarity,
    token_similarity,
)

names = st.text(alphabet="abcdefg_", min_size=0, max_size=8)


@settings(max_examples=80, deadline=None)
@given(left=names, right=names)
def test_similarity_measures_bounded_and_symmetric(left, right):
    for measure in (levenshtein_similarity, jaro_winkler, ngram_similarity, token_similarity):
        forward = measure(left, right)
        backward = measure(right, left)
        assert 0.0 <= forward <= 1.0 + 1e-9
        assert abs(forward - backward) < 1e-9


@settings(max_examples=80, deadline=None)
@given(left=names, right=names)
def test_identity_gives_maximal_similarity(left, right):
    assert levenshtein_similarity(left, left) == 1.0
    assert levenshtein_distance(left, left) == 0
    assert levenshtein_distance(left, right) == levenshtein_distance(right, left)


@settings(max_examples=80, deadline=None)
@given(left=names, middle=names, right=names)
def test_levenshtein_triangle_inequality(left, middle, right):
    assert levenshtein_distance(left, right) <= levenshtein_distance(
        left, middle
    ) + levenshtein_distance(middle, right)


small_matrices = st.integers(min_value=2, max_value=4).flatmap(
    lambda rows: st.integers(min_value=rows, max_value=5).flatmap(
        lambda cols: st.lists(
            st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
)


def brute_force_best(weights):
    rows, cols = len(weights), len(weights[0])
    return max(
        sum(weights[i][j] for i, j in enumerate(permutation))
        for permutation in itertools.permutations(range(cols), rows)
    )


@settings(max_examples=40, deadline=None)
@given(weights=small_matrices)
def test_hungarian_is_optimal(weights):
    assignment = max_weight_assignment(weights)
    assert assignment_weight(weights, assignment) >= brute_force_best(weights) - 1e-9


@settings(max_examples=30, deadline=None)
@given(weights=small_matrices, k=st.integers(min_value=1, max_value=6))
def test_kbest_weights_non_increasing_and_distinct(weights, k):
    ranked = k_best_assignments(weights, k)
    observed = [assignment.weight for assignment in ranked]
    # Non-increasing up to floating-point noise (equal-weight assignments may
    # be enumerated in either order).
    for previous, current in zip(observed, observed[1:]):
        assert current <= previous + 1e-9
    assert len({assignment.assignment for assignment in ranked}) == len(ranked)


correspondence_dicts = st.dictionaries(
    keys=st.sampled_from([f"T.a{i}" for i in range(6)]),
    values=st.sampled_from([f"S.x{i}" for i in range(6)]),
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(left=correspondence_dicts, right=correspondence_dicts)
def test_overlap_is_symmetric_and_bounded(left, right):
    first = Mapping(1, left, score=1.0, probability=0.5)
    second = Mapping(2, right, score=1.0, probability=0.5)
    assert first.overlap(second) == second.overlap(first)
    assert 0.0 <= first.overlap(second) <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    scores=st.lists(st.floats(min_value=0.01, max_value=10, allow_nan=False), min_size=1, max_size=8)
)
def test_mapping_set_normalisation_sums_to_one(scores):
    mappings = MappingSet(
        [
            Mapping(index, {"T.a": "S.x"}, score=score, probability=0.0)
            for index, score in enumerate(scores)
        ],
        normalize=True,
    )
    assert abs(mappings.total_probability - 1.0) < 1e-9
    assert all(m.probability > 0 for m in mappings)
