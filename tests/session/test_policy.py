"""ExecutionPolicy: eager validation with did-you-mean errors.

The policy is the single validation boundary of the public API: the typed
constructor, per-call overrides and the legacy shims' ``**options`` all run
through it, so an unknown method/engine/strategy/option name fails *here*,
as a ``ValueError`` naming the valid choices — never as a bare
``KeyError``/``TypeError`` deep inside an evaluator constructor.
"""

from __future__ import annotations

import pytest

from repro.policy import ExecutionPolicy, suggest, validate_choice


class TestDefaults:
    def test_defaults_are_valid(self):
        policy = ExecutionPolicy()
        assert policy.method == "o-sharing"
        assert policy.engine == "columnar"
        assert policy.optimize is True
        assert policy.strategy == "sef"
        assert policy.cache_size == 4096
        assert policy.k is None

    def test_policy_is_frozen(self):
        policy = ExecutionPolicy()
        with pytest.raises(AttributeError):
            policy.method = "basic"

    def test_names_are_normalised_case_insensitively(self):
        policy = ExecutionPolicy(method="E-MQO", engine="ROW", strategy="SNF")
        assert policy.method == "e-mqo"
        assert policy.engine == "row"
        assert policy.strategy == "snf"


class TestValidation:
    def test_unknown_method_lists_choices_and_suggests(self):
        with pytest.raises(ValueError) as err:
            ExecutionPolicy(method="o-sharng")
        message = str(err.value)
        assert "unknown method" in message
        assert "did you mean 'o-sharing'" in message
        assert "e-mqo" in message  # the valid choices are listed

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ExecutionPolicy(engine="vectorised")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ExecutionPolicy(strategy="optimal")

    def test_non_string_method_rejected(self):
        with pytest.raises(ValueError, match="method must be a string"):
            ExecutionPolicy(method=7)

    def test_cache_size_must_be_positive(self):
        with pytest.raises(ValueError, match="cache_size"):
            ExecutionPolicy(cache_size=0)

    def test_k_must_be_positive_or_none(self):
        with pytest.raises(ValueError, match="k must be"):
            ExecutionPolicy(k=-1)

    def test_top_k_requires_k(self):
        with pytest.raises(ValueError, match="requires k"):
            ExecutionPolicy(method="top-k")
        assert ExecutionPolicy(method="top-k", k=5).k == 5

    def test_parallel_must_be_a_parallel_config(self):
        from repro.relational.parallel import ParallelConfig

        with pytest.raises(ValueError, match="ParallelConfig"):
            ExecutionPolicy(parallel=4)
        config = ParallelConfig(workers=2)
        assert ExecutionPolicy(parallel=config).parallel is config


class TestOptionBoundary:
    def test_from_options_rejects_unknown_names_with_suggestion(self):
        with pytest.raises(ValueError) as err:
            ExecutionPolicy.from_options(engin="row")
        message = str(err.value)
        assert "unknown option 'engin'" in message
        assert "did you mean 'engine'" in message
        assert "optimize" in message  # the valid options are listed

    def test_from_options_builds_policies(self):
        policy = ExecutionPolicy.from_options(method="e-basic", engine="row")
        assert (policy.method, policy.engine) == ("e-basic", "row")

    def test_with_overrides_returns_validated_copies(self):
        base = ExecutionPolicy()
        override = base.with_overrides(method="batch", cache_size=7)
        assert base.method == "o-sharing"  # unchanged original
        assert (override.method, override.cache_size) == ("batch", 7)
        with pytest.raises(ValueError, match="unknown option"):
            base.with_overrides(metod="basic")
        with pytest.raises(ValueError, match="unknown engine"):
            base.with_overrides(engine="gpu")
        assert base.with_overrides() is base

    def test_legacy_evaluate_validates_at_the_boundary(self, paper_example):
        """The shims share the policy validation (the satellite bugfix)."""
        from repro.core import evaluate, evaluate_many

        args = (paper_example.q0(), paper_example.mappings, paper_example.database)
        with pytest.raises(ValueError, match="did you mean 'o-sharing'"):
            evaluate(*args, method="o-sharng", links=paper_example.links)
        with pytest.raises(ValueError, match="unknown option 'engin'"):
            evaluate(*args, links=paper_example.links, engin="row")
        with pytest.raises(ValueError, match="unknown option"):
            evaluate_many(
                [paper_example.q0()],
                paper_example.mappings,
                paper_example.database,
                links=paper_example.links,
                cache_sz=16,
            )

    def test_make_evaluator_raises_value_error_with_suggestion(self):
        from repro.core import make_evaluator

        with pytest.raises(ValueError, match="did you mean 'q-sharing'"):
            make_evaluator("q-sharng")


class TestEvaluatorOptions:
    def test_common_options_always_present(self):
        options = ExecutionPolicy(method="basic").evaluator_options()
        assert set(options) == {"engine", "optimize", "parallel"}

    def test_osharing_gets_strategy_seed_and_prune(self):
        options = ExecutionPolicy(
            method="o-sharing", strategy="snf", seed=3, prune_empty=False
        ).evaluator_options()
        assert options["strategy"] == "snf"
        assert options["seed"] == 3
        assert options["prune_empty"] is False

    def test_batch_gets_cache_and_planning_knobs(self):
        options = ExecutionPolicy(
            method="batch", cache_size=9, exhaustive_planning=True
        ).evaluator_options()
        assert options["cache_size"] == 9
        assert options["exhaustive_planning"] is True
        assert "strategy" not in options

    def test_top_k_gets_strategy_but_not_prune(self):
        options = ExecutionPolicy(method="top-k", k=3).evaluator_options()
        assert "strategy" in options and "prune_empty" not in options

    def test_every_method_splats_into_its_constructor(self):
        from repro.core.evaluators import EVALUATORS

        for method, cls in EVALUATORS.items():
            evaluator = cls(**ExecutionPolicy(method=method).evaluator_options())
            assert evaluator.name == method


class TestHelpers:
    def test_suggest_finds_close_matches(self):
        assert "o-sharing" in suggest("o-sharng", ["o-sharing", "basic"])
        assert suggest("zzz", ["basic"]) == ""

    def test_validate_choice_passes_valid_names_through(self):
        assert validate_choice("method", "Basic", {"basic": 1}) == "basic"
