"""``serve()`` under adversarial conditions: timer scope and close() races.

Two pins prompted by the serving front end (ISSUE: PR 9):

* **Timer scope.**  The claim that ``serve()`` measured overrides-parsing
  and ``_observe_request`` bookkeeping inside the per-request timer does
  **not** reproduce: inspection of ``Session.serve`` shows the tuple unpack
  happens before ``perf_counter()`` starts and ``_observe_request`` runs
  after ``elapsed`` is computed.  Rather than "fix" working code, the tests
  here pin the actual behaviour — the timer covers the query alone, so a
  slow *producer* (the request generator) can never push a fast query over
  the slow-query threshold.

* **close() racing a generator-based serve().**  The documented contract:
  once ``close()`` returns, the next request drawn through a still-live
  ``serve()`` generator raises ``RuntimeError("session is closed")`` — and
  the race, however it lands, never corrupts :class:`SessionStats` (every
  successfully-served request is counted exactly once, the snapshot stays
  readable).
"""

from __future__ import annotations

import queue
import threading
import time

import pytest

from repro import ExecutionPolicy, Session
from repro.datagen.paper_example import build_paper_example


@pytest.fixture()
def example():
    return build_paper_example()


def _session(example, **policy_fields):
    return Session(
        example.database,
        example.mappings,
        links=example.links,
        policy=ExecutionPolicy(**policy_fields),
    )


class TestServeTimerScope:
    def test_slow_producer_does_not_trip_the_slow_query_log(self, example):
        """The per-request timer excludes time spent *waiting* for requests.

        Each paper-example query runs in well under 40 ms; the producer
        stalls 120 ms before yielding each one.  If the timer wrapped the
        generator pull (the claimed defect), every request would be
        attributed ~120 ms and land in the slow-query log.
        """
        with _session(example, slow_query_seconds=0.04) as s:

            def stalling_requests():
                for query in (example.q0(), example.q0()):
                    time.sleep(0.12)
                    yield query

            results = list(s.serve(stalling_requests()))
            assert len(results) == 2
            assert list(s.slow_queries) == [], (
                "producer stall was billed to the request timer: "
                f"{list(s.slow_queries)}"
            )

    def test_overrides_parsing_happens_outside_the_timer(self, example):
        """(query, overrides) tuples are unpacked before the clock starts.

        Behavioural proxy: an *invalid* override raises before any timing
        or stats bookkeeping — the failed request is never recorded.
        """
        with _session(example, slow_query_seconds=10.0) as s:
            before = s.stats.queries
            requests = [(example.q0(), {"methd": "e-mqo"})]
            with pytest.raises(ValueError, match="did you mean 'method'"):
                list(s.serve(requests))
            assert s.stats.queries == before
            assert list(s.slow_queries) == []


class TestCloseRacingServe:
    def test_next_request_after_close_raises_documented_error(self, example):
        """A live serve() generator fails loudly — not silently — post-close."""
        s = _session(example)
        requests: "queue.Queue" = queue.Queue()
        sentinel = object()

        def request_stream():
            while True:
                item = requests.get()
                if item is sentinel:
                    return
                yield item

        served = s.serve(request_stream())
        requests.put(example.q0())
        first = next(served)
        assert first.answers is not None
        queries_before_close = s.stats.queries
        assert queries_before_close == 1

        s.close()
        requests.put(example.q0())
        with pytest.raises(RuntimeError, match="session is closed"):
            next(served)

        # The failed request corrupted nothing: totals unchanged, snapshot
        # intact, close() still idempotent.
        assert s.stats.queries == queries_before_close
        snapshot = s.stats.snapshot()
        assert snapshot["queries"] == queries_before_close
        s.close()

    def test_concurrent_close_never_corrupts_session_stats(self, example):
        """Hammer serve() from a thread while close() lands mid-stream.

        Every request either completes (and is counted exactly once) or
        raises the documented error (and is not counted at all) — there is
        no third outcome and no torn accounting.
        """
        s = _session(example)
        outcomes: list[str] = []
        query = example.q0()

        def hammer():
            def stream():
                for _ in range(200):
                    yield query

            try:
                for _ in s.serve(stream()):
                    outcomes.append("served")
            except RuntimeError as err:
                assert "session is closed" in str(err)
                outcomes.append("refused")

        thread = threading.Thread(target=hammer)
        thread.start()
        # Let a few requests through, then yank the session away.
        deadline = time.monotonic() + 10
        while len(outcomes) < 3 and time.monotonic() < deadline:
            time.sleep(0.001)
        s.close()
        thread.join(timeout=30)
        assert not thread.is_alive()

        served = outcomes.count("served")
        assert served >= 3
        # The one-and-only invariant: SessionStats counted exactly the
        # successfully-served requests, whatever the race decided.
        assert s.stats.queries == served
        assert s.stats.snapshot()["queries"] == served
