"""Session observability: span trees, the metrics registry, slow-query log.

The tentpole pins of the unified tracing + metrics subsystem at the public
surface:

* ``policy.trace=True`` gives the session a :class:`~repro.obs.Tracer` whose
  root spans mirror the serving calls (``session.query`` →
  ``phase:*`` → ``optimize`` → ``op:*`` with rows and plan-cache events);
* ``session.metrics()`` mirrors the legacy counters into a
  :class:`~repro.obs.metrics.MetricsSnapshot` (per-stage latency histograms,
  cache hit/patch counters, pool queue depth) that renders to JSON and
  Prometheus text;
* ``trace``/``metrics`` are session-construction state — per-call attempts
  to toggle them are rejected, not silently ignored;
* ``serve()`` times every request and feeds the bounded slow-query log;
* concurrent ``query()``/``query_many()`` merges into the lifetime totals
  are torn-read free (the satellite-2 race pin).
"""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro import ExecutionPolicy, Session
from repro.datagen.paper_example import build_paper_example


def _answers(result):
    return dict(result.answers.items())


@pytest.fixture()
def example():
    return build_paper_example()


def _session(example, **policy_fields):
    return Session(
        example.database,
        example.mappings,
        links=example.links,
        policy=ExecutionPolicy(**policy_fields),
    )


# --------------------------------------------------------------------------- #
# tracing
# --------------------------------------------------------------------------- #
class TestSessionTracing:
    def test_tracing_disabled_by_default(self, example):
        with _session(example) as s:
            assert s.tracer is None
            s.query(example.q0())  # runs fine without a tracer

    def test_query_builds_a_span_tree(self, example):
        with _session(example, trace=True, method="e-basic") as s:
            s.query(example.q0())
            assert len(s.tracer) == 1
            root = s.tracer.roots[0]
        assert root.name == "session.query"
        assert root.attributes["method"] == "e-basic"
        assert root.attributes["engine"] == "columnar"
        names = [span.name for span in root.walk()]
        assert any(name.startswith("phase:") for name in names)
        assert any(name.startswith("op:") for name in names)

    def test_operator_spans_carry_engine_and_rows(self, example):
        with _session(example, trace=True, method="e-basic") as s:
            s.query(example.q0())
            root = s.tracer.roots[0]
        op_spans = [
            span for span in root.walk() if span.name.startswith("op:")
        ]
        assert op_spans
        for span in op_spans:
            assert span.attributes["engine"] == "columnar"
            assert span.attributes["rows_out"] >= 0
        # The ambient operator-count events land on their op spans.
        assert any(
            event["name"] == "operator"
            for span in op_spans
            for event in span.events
        )

    def test_plan_cache_events_flip_from_miss_to_hit(self, example):
        def cache_outcomes(root):
            return [
                event["outcome"]
                for span in root.walk()
                for event in span.events
                if event["name"] == "plan-cache"
            ]

        workload = [example.q0(), example.q2()]
        with _session(example, trace=True) as s:
            s.query_many(workload)
            s.query_many(workload)
            cold, warm = s.tracer.roots
        assert "miss" in cache_outcomes(cold)
        assert "hit" in cache_outcomes(warm)
        assert "miss" not in cache_outcomes(warm)

    def test_optimize_span_present_when_optimizing(self, example):
        with _session(example, trace=True, method="e-basic") as s:
            s.query(example.q0())
            root = s.tracer.roots[0]
        assert root.find("optimize") is not None

    def test_workload_root_span(self, example):
        with _session(example, trace=True) as s:
            s.query_many([example.q0(), example.q2()])
            root = s.tracer.roots[0]
        assert root.name == "session.workload"
        assert root.attributes["queries"] == 2

    def test_top_k_root_span(self, example):
        with _session(example, trace=True) as s:
            s.top_k(example.q0(), k=2)
            root = s.tracer.roots[0]
        assert root.name == "session.top_k"
        assert root.attributes["k"] == 2

    def test_parallel_engine_records_pool_and_kernel_fanout(self):
        from repro.datagen.scenario import build_scenario
        from repro.relational.parallel import ParallelConfig
        from repro.workloads import paper_query

        scenario = build_scenario(target="Excel", h=8, scale=0.01, seed=3)
        query = paper_query("Q1", scenario.target_schema)
        with Session(
            scenario.database,
            scenario.mappings,
            links=scenario.links,
            policy=ExecutionPolicy(
                trace=True,
                method="e-basic",
                engine="parallel",
                parallel=ParallelConfig(workers=2, min_partition_rows=0),
            ),
        ) as s:
            s.query(query)
            root = s.tracer.roots[0]
        events = {}
        for span in root.walk():
            for event in span.events:
                events.setdefault(event["name"], []).append(event)
        # Forced sharding must record the kernel fan-out decisions and the
        # pool dispatches they schedule (morsel/worker counts).
        assert "kernel" in events, sorted(events)
        assert all(event["kernel"] for event in events["kernel"])
        assert "pool" in events, sorted(events)
        assert all(event["workers"] >= 1 for event in events["pool"])

    def test_exporters_cover_the_session_trace(self, example):
        with _session(example, trace=True) as s:
            s.query(example.q0())
            jsonl = s.tracer.export_jsonl()
            chrome = json.loads(s.tracer.chrome_trace())
        spans = [json.loads(line) for line in jsonl.splitlines()]
        assert spans[0]["name"] == "session.query"
        assert spans[0]["parent"] is None
        assert chrome["traceEvents"][0]["name"] == "session.query"

    def test_trace_override_rejected_per_call(self, example):
        with _session(example) as s:
            with pytest.raises(ValueError, match="trace wires the session-owned"):
                s.query(example.q0(), trace=True)
        with _session(example, trace=True) as s:
            with pytest.raises(ValueError, match="trace wires the session-owned"):
                s.query(example.q0(), trace=False)
            # Restating the session's own value is allowed (a no-op).
            s.query(example.q0(), trace=True)

    def test_metrics_override_rejected_per_call(self, example):
        with _session(example) as s:
            with pytest.raises(ValueError, match="metrics wires the session-owned"):
                s.query(example.q0(), metrics=False)
            s.query(example.q0(), metrics=True)  # no-op restatement


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #
class TestSessionMetrics:
    def test_metrics_cover_stages_cache_and_pools(self, example):
        with _session(example, method="e-basic") as s:
            s.query(example.q2())
            s.query(example.q2())
            snapshot = s.metrics()
        assert snapshot.enabled is True
        # Per-stage latency histograms, one series per execution phase.
        stages = snapshot.data["repro_stage_seconds"]["series"]
        assert {series["labels"]["stage"] for series in stages} >= {
            "rewriting",
            "evaluation",
            "aggregation",
        }
        assert all(series["count"] >= 1 for series in stages)
        # Cache hit/miss counters mirror the legacy plan-cache stats.
        cache = s.plan_cache.stats_snapshot()
        assert (
            snapshot.value("repro_plan_cache_lookups_total", {"outcome": "hit"})
            == cache["hits"]
        )
        assert (
            snapshot.value("repro_plan_cache_lookups_total", {"outcome": "miss"})
            == cache["misses"]
        )
        assert snapshot.value("repro_plan_cache_entries") == cache["entries"]
        assert snapshot.value("repro_operators_saved_total") == cache["operators_saved"]
        # Engine totals mirror the session lifetime totals.
        assert snapshot.value("repro_queries_total") == 2
        assert (
            snapshot.value("repro_source_operators_total")
            == s.stats.source_operators
        )
        # Pool gauges exist even while no pool has started.
        assert snapshot.value("repro_pool_queue_depth") == 0
        assert snapshot.value("repro_pools_started") == 0

    def test_call_latency_histograms_by_kind(self, example):
        with _session(example) as s:
            s.query(example.q0())
            s.query_many([example.q0(), example.q2()])
            snapshot = s.metrics()
        series = {
            entry["labels"]["kind"]: entry
            for entry in snapshot.data["repro_call_seconds"]["series"]
        }
        assert series["query"]["count"] == 1
        assert series["workload"]["count"] == 1
        assert snapshot.value("repro_workloads_total") == 1

    def test_snapshot_is_point_in_time(self, example):
        with _session(example) as s:
            s.query(example.q0())
            before = s.metrics()
            s.query(example.q0())
            after = s.metrics()
        assert before.value("repro_queries_total") == 1
        assert after.value("repro_queries_total") == 2

    def test_renders_json_and_prometheus(self, example):
        with _session(example) as s:
            s.query(example.q0())
            snapshot = s.metrics()
        document = json.loads(snapshot.to_json())
        assert document["enabled"] is True
        assert "repro_stage_seconds" in document["metrics"]
        text = snapshot.to_prometheus()
        assert "# TYPE repro_stage_seconds histogram" in text
        assert "repro_queries_total 1" in text

    def test_disabled_metrics_snapshot_is_empty(self, example):
        with _session(example, metrics=False) as s:
            s.query(example.q0())
            snapshot = s.metrics()
        assert snapshot.enabled is False
        assert snapshot.data == {}
        assert snapshot.to_prometheus() == ""

    def test_write_invalidation_reaches_the_metrics(self, example):
        with _session(example, method="e-basic") as s:
            s.query(example.q2())
            relation = example.database.relation_names[0]
            s.database.set_relation(relation, s.database.relation(relation))
            snapshot = s.metrics()
        assert snapshot.value("repro_plan_cache_invalidations_total") >= 0
        assert (
            snapshot.value("repro_plan_cache_invalidations_total")
            == s.plan_cache.stats_snapshot()["invalidations"]
        )


# --------------------------------------------------------------------------- #
# serve(): per-request timing + slow-query log
# --------------------------------------------------------------------------- #
class TestServeObservability:
    def test_serve_times_every_request(self, example):
        with _session(example) as s:
            list(s.serve([example.q0(), example.q2(), example.q0()]))
            snapshot = s.metrics()
        assert snapshot.value("repro_request_seconds")["count"] == 3

    def test_slow_query_log_flags_threshold_crossers(self, example, caplog):
        # Threshold of 1ns: every request is slow.
        with _session(example, slow_query_seconds=1e-9) as s:
            with caplog.at_level(logging.WARNING, logger="repro.session"):
                list(s.serve([example.q0(), example.q2()]))
            snapshot = s.metrics()
            slow = list(s.slow_queries)
        assert len(slow) == 2
        assert slow[0]["query"] == example.q0().name
        assert slow[0]["seconds"] > 0
        assert slow[0]["threshold"] == 1e-9
        assert snapshot.value("repro_slow_queries_total") == 2
        assert sum("slow query" in record.message for record in caplog.records) == 2

    def test_fast_queries_not_flagged(self, example):
        with _session(example, slow_query_seconds=3600.0) as s:
            list(s.serve([example.q0()]))
        assert list(s.slow_queries) == []

    def test_no_threshold_means_no_log(self, example):
        with _session(example) as s:
            assert s.policy.slow_query_seconds is None
            list(s.serve([example.q0()]))
        assert list(s.slow_queries) == []

    def test_slow_query_log_is_bounded(self, example):
        with _session(example, slow_query_seconds=1e-9) as s:
            assert s.slow_queries.maxlen == 128

    def test_slow_query_seconds_override_per_session_only(self, example):
        # slow_query_seconds is read from the session policy by serve();
        # as a plain policy field it also validates eagerly.
        with pytest.raises(ValueError, match="slow_query_seconds"):
            ExecutionPolicy(slow_query_seconds=-1)


# --------------------------------------------------------------------------- #
# satellite 2: lifetime totals under concurrency (torn-read pin)
# --------------------------------------------------------------------------- #
class TestConcurrentStatsAggregation:
    def test_concurrent_merges_pin_exact_totals(self, example):
        """N threads × M calls: the final totals are exactly N×M serial sums.

        Lifetime totals merge under the session lock; this pins that no
        concurrent ``query()``/``query_many()`` merge is lost or doubled.
        """
        threads_n, rounds = 4, 3
        with _session(example, method="e-basic") as serial:
            for _ in range(threads_n * rounds):
                serial.query(example.q0())
            for _ in range(threads_n * rounds):
                serial.query_many([example.q2()])
            expected = serial.stats

        with _session(example, method="e-basic") as s:
            errors = []

            def work():
                try:
                    for _ in range(rounds):
                        s.query(example.q0())
                        s.query_many([example.q2()])
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=work) for _ in range(threads_n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            concurrent = s.stats

        assert concurrent.queries == threads_n * rounds == expected.queries
        assert concurrent.workloads == threads_n * rounds == expected.workloads
        assert concurrent.source_operators == expected.source_operators
        assert concurrent.totals.source_queries == expected.totals.source_queries
        assert concurrent.totals.rows_scanned == expected.totals.rows_scanned
        assert concurrent.totals.reformulations == expected.totals.reformulations

    def test_snapshots_never_observe_torn_merges(self, example):
        """A reader thread hammering ``stats``/``metrics()`` during writes
        must only ever observe consistent (query, source_queries) states."""
        stop = threading.Event()
        torn = []

        with _session(example, method="e-basic") as s:
            baseline = None

            def read():
                while not stop.is_set():
                    snap = s.stats
                    # Each e-basic q0 call contributes the same number of
                    # source queries; a torn merge would show a remainder.
                    if baseline and snap.queries:
                        expected = baseline * snap.queries
                        observed = snap.totals.source_queries
                        if observed not in (
                            expected,
                            # the merge of the in-flight call may have landed
                            # before its query-count increment (both guarded,
                            # sequential under one lock acquisition)
                            baseline * (snap.queries + 1),
                        ):
                            torn.append((snap.queries, observed))

            s.query(example.q0())
            baseline = s.stats.totals.source_queries
            reader = threading.Thread(target=read)
            reader.start()
            try:
                for _ in range(30):
                    s.query(example.q0())
            finally:
                stop.set()
                reader.join()

        assert not torn, f"torn stats snapshots observed: {torn[:5]}"


# --------------------------------------------------------------------------- #
# explain(analyze=True)
# --------------------------------------------------------------------------- #
class TestExplainAnalyze:
    def test_analyze_reports_measured_wall_clock(self, example):
        with _session(example) as s:
            text = s.explain(example.q2(), analyze=True)
        assert "== execution" in text
        assert "actual" in text
        assert " ms" in text
        assert "total time:" in text

    def test_plain_explain_has_no_timings(self, example):
        with _session(example) as s:
            text = s.explain(example.q2())
        assert "total time:" not in text

    def test_analyze_answers_match_plain_run(self, example):
        # analyze only adds timing annotations; the executed plan and its
        # rendered rows stay the same.
        with _session(example) as s:
            analyzed = s.explain(example.q2(), analyze=True)
            plain = s.explain(example.q2())
        strip = lambda text: [
            line.split(", ")[0]
            for line in text.splitlines()
            if "actual" in line
        ]
        assert strip(analyzed) == strip(plain)


# --------------------------------------------------------------------------- #
# read-through pool queue depth (the serving front end's saturation signal)
# --------------------------------------------------------------------------- #
class TestQueueDepthGauge:
    def test_gauge_reads_live_depth_between_metrics_calls(self, example):
        """A direct registry snapshot observes a queued kernel.

        ``repro_pool_queue_depth`` used to be sampled only inside
        ``Session.metrics()``: any collector snapshotting the registry
        between ``metrics()`` calls (the serving front end's ``/metrics``
        scrape does exactly that) read a stale depth.  The gauge is now
        registered with a read-through callback, so collection time *is*
        sampling time — this test never calls ``metrics()`` at all.
        """
        from repro.relational.parallel.pool import ROLE_MORSEL

        with _session(example) as s:
            release = threading.Event()
            running = threading.Event()

            def occupy():
                running.set()
                release.wait(timeout=30)

            # One worker: the first task occupies it, the second must queue.
            pool = s.pools.thread_pool(1, role=ROLE_MORSEL)
            try:
                pool.submit(occupy)
                assert running.wait(timeout=30)
                queued = pool.submit(lambda: None)
                snapshot = s.metrics_registry.snapshot()
                assert snapshot.value("repro_pool_queue_depth") >= 1
            finally:
                release.set()
            queued.result(timeout=30)
            # Drained: the same gauge reads the emptied queue live.
            assert s.metrics_registry.snapshot().value("repro_pool_queue_depth") == 0

    def test_metrics_snapshot_still_reports_depth_zero_when_idle(self, example):
        with _session(example) as s:
            s.query(example.q0())
            assert s.metrics().value("repro_pool_queue_depth") == 0

    def test_depth_gauge_survives_session_close(self, example):
        # close() shuts the pools down; the callback must fall back instead
        # of failing the scrape.
        s = _session(example)
        s.query(example.q0())
        s.close()
        snapshot = s.metrics_registry.snapshot()
        assert snapshot.value("repro_pool_queue_depth") >= 0
