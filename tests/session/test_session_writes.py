"""Warm sessions vs the write API: delta counters, scoping, thread races.

The PR-level acceptance pins:

* ``session.stats`` exposes the delta counters (``entries_patched``,
  ``entries_invalidated``, ``stats_refreshed_incrementally``) and they move
  when writes flow through an attached database;
* ``set_relation`` invalidation is scoped to the written relation's
  dependents — unrelated relations keep their cached state;
* concurrent ``session.query`` + ``Database.append_rows`` never crashes and
  never serves a stale-version answer (every observed answer corresponds to
  a prefix of the write sequence, and post-write queries see the final
  state).
"""

from __future__ import annotations

import threading

import pytest

from repro import ExecutionPolicy, Session
from repro.core import evaluate
from repro.datagen.paper_example import build_paper_example
from repro.matching.mappings import Mapping, MappingSet


def _answers(result):
    return dict(result.answers.items())


@pytest.fixture()
def example():
    return build_paper_example()


def _customer(cid: int, ophone: str, oaddr: str) -> tuple:
    """A Customer row (cid, cname, ophone, hphone, mobile, oaddr, haddr, nid)."""
    return (cid, f"C{cid}", ophone, "999", "555", oaddr, "hk", 1)


# --------------------------------------------------------------------------- #
# delta counters
# --------------------------------------------------------------------------- #
class TestDeltaCounters:
    def test_appends_patch_warm_entries(self, example):
        policy = ExecutionPolicy(method="e-mqo")
        with Session(
            example.database, example.mappings, links=example.links, policy=policy
        ) as s:
            s.query(example.q0())
            baseline = _answers(s.query(example.q0()))
            assert s.stats.entries_patched == 0
            example.database.append_rows(
                "Customer", [_customer(10, "123", "www")]
            )
            after_write = s.stats
            assert after_write.entries_patched > 0
            assert after_write.totals.entries_patched == after_write.entries_patched
            assert after_write.plan_cache["patches"] == after_write.entries_patched
            answer = _answers(s.query(example.q0()))
        assert answer != baseline  # the write is visible...
        cold = evaluate(
            example.q0(), example.mappings, example.database,
            method="e-mqo", links=example.links,
        )
        assert answer == _answers(cold)  # ... and byte-identical to cold

    def test_nonappend_writes_invalidate_warm_entries(self, example):
        policy = ExecutionPolicy(method="e-mqo")
        with Session(
            example.database, example.mappings, links=example.links, policy=policy
        ) as s:
            s.query(example.q0())
            assert len(s.plan_cache) > 0
            # An update delta is not append-monotone: dependents are dropped.
            example.database.update_rows(
                "Customer", [0], [_customer(1, "123", "aaa")]
            )
            assert s.stats.entries_invalidated > 0
            assert len(s.plan_cache) == 0
            cold = evaluate(
                example.q0(), example.mappings, example.database,
                method="e-mqo", links=example.links,
            )
            assert _answers(s.query(example.q0())) == _answers(cold)

    def test_stats_refresh_incrementally_after_appends(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            s.query(example.q0())  # optimizer profiles Customer columns
            assert s.stats.stats_refreshed_incrementally == 0
            # Two rounds: one appended row against the 3-row base exceeds the
            # 25% staleness threshold (a legitimate full re-profile); the
            # second append against the re-profiled base patches in place.
            example.database.append_rows(
                "Customer", [_customer(10, "123", "www")]
            )
            s.query(example.q0())
            example.database.append_rows(
                "Customer", [_customer(11, "123", "xxx")]
            )
            s.query(example.q0())  # optimizer re-reads stats past the write
            stats = s.stats
        assert stats.stats_refreshed_incrementally > 0
        assert (
            stats.totals.stats_refreshed_incrementally
            == stats.stats_refreshed_incrementally
        )

    def test_counters_appear_in_snapshot(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            snapshot = s.stats.snapshot()
        for key in (
            "entries_patched",
            "entries_invalidated",
            "stats_refreshed_incrementally",
        ):
            assert key in snapshot


# --------------------------------------------------------------------------- #
# scoped invalidation
# --------------------------------------------------------------------------- #
class TestScopedInvalidation:
    def test_set_relation_spares_unrelated_dependents(self, example):
        """A wholesale Nation write must not evict Customer-only entries."""
        policy = ExecutionPolicy(method="e-mqo")
        with Session(
            example.database, example.mappings, links=example.links, policy=policy
        ) as s:
            first = s.query(example.q0())
            warm = s.query(example.q0())
            assert warm.stats.source_operators < first.stats.source_operators
            entries = len(s.plan_cache)
            assert entries > 0

            # q0's reformulations only scan Customer.
            example.database.set_relation(
                "Nation", example.database.relation("Nation")
            )
            assert len(s.plan_cache) == entries  # nothing evicted
            unaffected = s.query(example.q0())
            assert unaffected.stats.source_operators == warm.stats.source_operators
            assert _answers(unaffected) == _answers(warm)

            # ... while writing Customer evicts them (cold again).
            example.database.set_relation(
                "Customer", example.database.relation("Customer")
            )
            assert len(s.plan_cache) < entries
            cold_again = s.query(example.q0())
            assert cold_again.stats.source_operators == first.stats.source_operators


# --------------------------------------------------------------------------- #
# thread races: queries racing writes
# --------------------------------------------------------------------------- #
class TestWriteRaces:
    def test_racing_reads_observe_only_prefix_states(self, example):
        """Every answer served during a write storm is a consistent prefix.

        A single mapping (probability 1.0) makes each query one source plan
        over Customer only, so every served answer must correspond to some
        prefix of the append sequence — a torn or stale-version read would
        produce an answer matching no prefix.
        """
        mapping = Mapping(
            mapping_id=1,
            correspondences={
                "Person.pname": "Customer.cname",
                "Person.phone": "Customer.ophone",
                "Person.addr": "Customer.oaddr",
            },
            score=1.0,
            probability=1.0,
        )
        mappings = MappingSet([mapping])
        appends = [_customer(10 + i, "123", f"w{i}") for i in range(8)]

        # Cold answers for every prefix of the append sequence.
        prefix_answers = []
        for steps in range(len(appends) + 1):
            replayed = build_paper_example()
            replayed.database.relation("Customer").append_rows(appends[:steps])
            prefix_answers.append(
                _answers(
                    evaluate(
                        replayed.q0(), mappings, replayed.database,
                        links=replayed.links,
                    )
                )
            )
        assert len(set(map(tuple, (sorted(a) for a in prefix_answers)))) == len(
            prefix_answers
        ), "prefixes must be distinguishable for the check to mean anything"

        with Session(example.database, mappings, links=example.links) as s:
            errors: list[BaseException] = []
            observed: list[dict] = []
            done = threading.Event()

            def reader() -> None:
                try:
                    while not done.is_set():
                        observed.append(_answers(s.query(example.q0())))
                except BaseException as error:  # noqa: BLE001 - asserted below
                    errors.append(error)

            def writer() -> None:
                try:
                    for row in appends:
                        example.database.append_rows("Customer", [row])
                except BaseException as error:  # noqa: BLE001 - asserted below
                    errors.append(error)
                finally:
                    done.set()

            threads = [threading.Thread(target=reader) for _ in range(3)]
            threads.append(threading.Thread(target=writer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert not errors, errors
            for answer in observed:
                assert answer in prefix_answers, (
                    f"answer matches no write-sequence prefix: {answer}"
                )
            # Once the writes settle, the warm session serves the final state.
            assert _answers(s.query(example.q0())) == prefix_answers[-1]

    def test_full_mapping_race_settles_to_cold_state(self, example):
        """The five-mapping session under mixed writes: no crash, no staleness."""
        with Session(example.database, example.mappings, links=example.links) as s:
            errors: list[BaseException] = []
            done = threading.Event()

            def reader() -> None:
                try:
                    while not done.is_set():
                        s.query(example.q0())
                        s.query(example.q2())
                except BaseException as error:  # noqa: BLE001 - asserted below
                    errors.append(error)

            def writer() -> None:
                try:
                    for i in range(5):
                        example.database.append_rows(
                            "Customer", [_customer(20 + i, "123", f"r{i}")]
                        )
                    example.database.update_rows(
                        "Customer", [0], [_customer(1, "777", "zzz")]
                    )
                    example.database.delete_rows("Customer", [1])
                except BaseException as error:  # noqa: BLE001 - asserted below
                    errors.append(error)
                finally:
                    done.set()

            threads = [threading.Thread(target=reader) for _ in range(3)]
            threads.append(threading.Thread(target=writer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors

            for build in (example.q0, example.q2):
                cold = evaluate(
                    build(), example.mappings, example.database, links=example.links
                )
                warm = _answers(s.query(build()))
                assert warm == _answers(cold)
