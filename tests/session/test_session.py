"""Session lifecycle: persistent cross-query state, invalidation, threads.

The acceptance pins of the session-first API:

* a warm session **beats** cold one-shot calls — the second pass over a
  repeated workload reports plan-cache hits and executes strictly fewer
  source operators;
* the legacy one-shot functions still work (emitting ``DeprecationWarning``)
  with byte-identical answers to the session path;
* ``Database.set_relation`` flushes the session-owned caches (a session can
  never serve stale results);
* ``close()`` is idempotent and shuts the session's worker pools down;
* concurrent ``query()`` calls from threads are safe end to end.
"""

from __future__ import annotations

import threading

import pytest

from repro import ExecutionPolicy, Session, connect
from repro.datagen.paper_example import build_paper_example
from repro.workloads import paper_query


def _answers(result):
    return dict(result.answers.items())


@pytest.fixture()
def example():
    """A fresh paper example per test (mutation tests poke at the database)."""
    return build_paper_example()


def _workload(example, repeats: int = 10):
    """A 20-query serving workload with heavy repetition (2 distinct)."""
    return [example.q0(), example.q2()] * repeats


# --------------------------------------------------------------------------- #
# warm beats cold (the acceptance criterion)
# --------------------------------------------------------------------------- #
class TestWarmSession:
    def test_second_pass_hits_cache_and_executes_strictly_fewer(self, example):
        queries = _workload(example)
        assert len(queries) == 20
        with Session(example.database, example.mappings, links=example.links) as s:
            first = s.query_many(queries)
            second = s.query_many(queries)
        assert second.stats.plan_cache_hits > 0
        assert second.stats.source_operators < first.stats.source_operators
        for one, two in zip(first.results, second.results):
            assert _answers(one) == _answers(two)
            assert one.answers.empty_probability == two.answers.empty_probability

    def test_optimizer_memo_persists_across_calls(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            cold = s.query(example.q2(), method="e-basic")
            assert s.stats.snapshot()["optimizer_memo_entries"] > 0
            warm = s.query(example.q2(), method="e-basic")
        # Every plan of the second identical call is answered from the
        # session optimizer's fingerprint memo.
        assert warm.stats.plans_optimized == warm.stats.optimizer_memo_hits
        assert warm.stats.optimizer_memo_hits > 0
        assert _answers(cold) == _answers(warm)

    def test_emqo_shares_materializations_across_calls(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            first = s.query(example.q2(), method="e-mqo")
            second = s.query(example.q2(), method="e-mqo")
        assert second.stats.source_operators <= first.stats.source_operators
        assert _answers(first) == _answers(second)

    def test_batch_result_plan_cache_snapshot_is_per_call(self, example):
        """The session cache is cumulative; each BatchResult reports its own call."""
        queries = _workload(example, repeats=5)
        with Session(example.database, example.mappings, links=example.links) as s:
            first = s.query_many(queries)
            second = s.query_many(queries)
            lifetime = s.stats.plan_cache
        for batch in (first, second):
            assert batch.plan_cache["hits"] == batch.stats.plan_cache_hits
            assert batch.plan_cache["misses"] == batch.stats.plan_cache_misses
        assert lifetime["hits"] == first.plan_cache["hits"] + second.plan_cache["hits"]

    def test_batch_method_via_query_records_planning_stats(self, example):
        policy = ExecutionPolicy(method="batch")
        with Session(
            example.database, example.mappings, links=example.links, policy=policy
        ) as s:
            s.query(example.q2())
            assert s.stats.queries == 1
            assert s.stats.totals.plans_optimized > 0

    def test_shutdown_pools_resets_the_default_manager_in_place(self, example):
        from repro.core import evaluate
        from repro.relational.parallel import (
            ParallelConfig,
            default_manager,
            shutdown_pools,
        )

        manager = default_manager()
        shutdown_pools()
        assert default_manager() is manager and not manager.closed
        config = ParallelConfig(workers=2, min_partition_rows=0)
        with pytest.warns(DeprecationWarning):
            result = evaluate(
                example.q2(), example.mappings, example.database,
                links=example.links, engine="parallel", parallel=config,
            )
        assert len(result.answers) > 0 or result.answers.empty_probability > 0

    def test_session_stats_aggregate_across_lifetime(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            s.query(example.q0())
            s.query_many(_workload(example, repeats=2))
            s.query_many(_workload(example, repeats=2))
            stats = s.stats
        assert stats.queries == 1
        assert stats.workloads == 2
        assert stats.source_operators > 0
        assert stats.operators_saved > 0
        assert stats.plan_cache["hits"] > 0
        assert 0.0 < stats.plan_cache_hit_rate <= 1.0
        snapshot = stats.snapshot()
        for key in (
            "queries",
            "workloads",
            "source_operators",
            "operators_saved",
            "plan_cache",
            "plan_cache_hit_rate",
            "optimizer_memo_entries",
            "pools_started",
            "seconds",
        ):
            assert key in snapshot


# --------------------------------------------------------------------------- #
# legacy shims
# --------------------------------------------------------------------------- #
class TestLegacyShims:
    def test_evaluate_warns_and_matches_session(self, example):
        from repro.core import evaluate

        with Session(example.database, example.mappings, links=example.links) as s:
            warm = s.query(example.q2())
        with pytest.warns(DeprecationWarning, match="repro.Session"):
            cold = evaluate(
                example.q2(), example.mappings, example.database, links=example.links
            )
        assert _answers(cold) == _answers(warm)
        assert cold.answers.empty_probability == warm.answers.empty_probability

    def test_evaluate_many_warns_and_matches_session(self, example):
        from repro.core import evaluate_many

        queries = _workload(example, repeats=2)
        with Session(example.database, example.mappings, links=example.links) as s:
            warm = s.query_many(queries)
        with pytest.warns(DeprecationWarning, match="query_many"):
            cold = evaluate_many(
                queries, example.mappings, example.database, links=example.links
            )
        for one, two in zip(cold.results, warm.results):
            assert _answers(one) == _answers(two)

    def test_evaluate_top_k_warns_and_matches_session(self, example):
        from repro.core import evaluate_top_k

        with Session(example.database, example.mappings, links=example.links) as s:
            warm = s.top_k(example.q0(), k=2)
        with pytest.warns(DeprecationWarning, match="top_k"):
            cold = evaluate_top_k(
                example.q0(), example.mappings, example.database, k=2,
                links=example.links,
            )
        assert _answers(cold) == _answers(warm)


# --------------------------------------------------------------------------- #
# invalidation
# --------------------------------------------------------------------------- #
class TestInvalidation:
    def test_set_relation_flushes_session_caches(self, example):
        queries = _workload(example, repeats=5)
        with Session(example.database, example.mappings, links=example.links) as s:
            first = s.query_many(queries)
            warmed = s.query_many(queries)
            assert warmed.stats.source_operators < first.stats.source_operators

            # Mutate every base relation (reinstalling the same contents
            # still counts as a mutation — the hook fires on set_relation).
            invalidations_before = s.plan_cache.stats.invalidations
            for name in example.database.relation_names:
                example.database.set_relation(name, example.database.relation(name))
            assert s.plan_cache.stats.invalidations > invalidations_before
            assert len(s.plan_cache) == 0

            # Cold again: the flushed session re-executes exactly the work
            # of the first pass, then re-warms.
            third = s.query_many(queries)
            assert third.stats.source_operators == first.stats.source_operators
            fourth = s.query_many(queries)
            assert fourth.stats.source_operators < third.stats.source_operators
        for one, two in zip(first.results, third.results):
            assert _answers(one) == _answers(two)


# --------------------------------------------------------------------------- #
# close / pools
# --------------------------------------------------------------------------- #
class TestLifecycle:
    def test_close_is_idempotent_and_blocks_serving(self, example):
        session = Session(example.database, example.mappings, links=example.links)
        session.query(example.q0())
        session.close()
        session.close()  # idempotent
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.query(example.q0())
        with pytest.raises(RuntimeError, match="closed"):
            session.query_many([example.q0()])
        # statistics stay readable after closing
        assert session.stats.queries == 1

    def test_close_detaches_the_plan_cache(self, example):
        session = Session(example.database, example.mappings, links=example.links)
        session.query_many(_workload(example, repeats=2))
        session.close()
        before = session.plan_cache.stats.invalidations
        for name in example.database.relation_names:
            example.database.set_relation(name, example.database.relation(name))
        assert session.plan_cache.stats.invalidations == before

    def test_close_shuts_down_lazily_started_pools(self, example):
        from repro.relational.parallel import ParallelConfig

        policy = ExecutionPolicy(
            engine="parallel",
            parallel=ParallelConfig(workers=2, min_partition_rows=0),
        )
        with Session(
            example.database, example.mappings, links=example.links, policy=policy
        ) as session:
            assert session.pools.started_pools == 0  # lazy: nothing yet
            result = session.query(example.q2())
            assert len(result.answers) > 0 or result.answers.empty_probability > 0
            assert session.pools.started_pools > 0  # morsel pool started
        assert session.pools.closed
        with pytest.raises(RuntimeError):
            session.pools.thread_pool(2)

    def test_pools_started_survives_close(self, example):
        from repro.relational.parallel import ParallelConfig

        policy = ExecutionPolicy(
            engine="parallel",
            parallel=ParallelConfig(workers=2, min_partition_rows=0),
        )
        session = Session(
            example.database, example.mappings, links=example.links, policy=policy
        )
        session.query(example.q2())
        started = session.stats.pools_started
        assert started > 0
        session.close()
        # lifetime statistics stay truthful after teardown
        assert session.stats.pools_started == started

    def test_close_drains_in_flight_calls(self, example):
        queries = _workload(example, repeats=5)
        session = Session(example.database, example.mappings, links=example.links)
        errors: list[BaseException] = []
        started = threading.Event()

        def worker() -> None:
            try:
                started.set()
                for _ in range(3):
                    session.query_many(queries)
            except RuntimeError:
                pass  # a later call observed the closed session: acceptable
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append(error)

        thread = threading.Thread(target=worker)
        thread.start()
        started.wait()
        session.close()  # must drain the in-flight call, not crash it
        thread.join()
        assert not errors, errors
        assert session.closed

    def test_cache_size_override_is_rejected_not_ignored(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            with pytest.raises(ValueError, match="fixed when the session"):
                s.query_many([example.q0()], cache_size=1)
            # restating the session's own value is fine
            s.query_many([example.q0()], cache_size=s.policy.cache_size)

    def test_injected_pool_manager_survives_close(self, example):
        """A shared pools manager (the shims' path) is not shut down."""
        from repro.relational.parallel import PoolManager

        shared_pools = PoolManager()
        session = Session(
            example.database, example.mappings, links=example.links,
            pools=shared_pools,
        )
        session.query(example.q0())
        session.close()
        assert session.closed and not shared_pools.closed
        shared_pools.shutdown()

    def test_legacy_shims_reuse_the_process_wide_pools(self, example):
        from repro.core import evaluate
        from repro.relational.parallel import ParallelConfig, default_manager

        config = ParallelConfig(workers=2, min_partition_rows=0)
        with pytest.warns(DeprecationWarning):
            evaluate(
                example.q2(), example.mappings, example.database,
                links=example.links, engine="parallel", parallel=config,
            )
        manager = default_manager()
        assert not manager.closed
        assert manager.started_pools > 0  # warm workers survive the shim

    def test_context_manager_closes_on_exit(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            pass
        assert s.closed

    def test_policy_type_is_validated(self, example):
        with pytest.raises(ValueError, match="ExecutionPolicy"):
            Session(example.database, example.mappings, policy="o-sharing")


# --------------------------------------------------------------------------- #
# concurrency
# --------------------------------------------------------------------------- #
class TestThreadSafety:
    def test_concurrent_queries_share_session_state_safely(self, example):
        queries = [example.q0(), example.q2()]
        with Session(example.database, example.mappings, links=example.links) as s:
            expected = [_answers(s.query(q, method="e-mqo")) for q in queries]
            errors: list[BaseException] = []
            observed: list[list[dict]] = [[] for _ in range(6)]

            def worker(slot: int) -> None:
                try:
                    for _ in range(3):
                        for query in queries:
                            observed[slot].append(
                                _answers(s.query(query, method="e-mqo"))
                            )
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(slot,)) for slot in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = s.stats
        assert not errors, errors
        for per_thread in observed:
            assert per_thread == expected * 3
        assert stats.queries == 2 + 6 * 3 * 2

    def test_concurrent_workloads_match_serial(self, example):
        queries = _workload(example, repeats=3)
        with Session(example.database, example.mappings, links=example.links) as s:
            serial = s.query_many(queries)
            results: dict[int, object] = {}

            def worker(slot: int) -> None:
                results[slot] = s.query_many(queries)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for batch in results.values():
            for one, two in zip(serial.results, batch.results):
                assert _answers(one) == _answers(two)


# --------------------------------------------------------------------------- #
# serving loop, connect, top-k, explain, overrides
# --------------------------------------------------------------------------- #
class TestServingSurface:
    def test_serve_streams_results_in_request_order(self, example):
        requests = [
            example.q0(),
            (example.q2(), {"method": "e-basic"}),
            example.q0(),
        ]
        with Session(example.database, example.mappings, links=example.links) as s:
            results = list(s.serve(requests))
            assert s.stats.queries == 3
        assert [r.evaluator for r in results] == ["o-sharing", "e-basic", "o-sharing"]
        assert _answers(results[0]) == _answers(results[2])

    def test_serve_is_lazy(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            stream = s.serve(iter([example.q0(), example.q0()]))
            assert s.stats.queries == 0  # nothing evaluated yet
            next(stream)
            assert s.stats.queries == 1

    def test_connect_builds_a_session_from_a_scenario(self, example):
        with connect(example, method="e-basic") as s:
            assert isinstance(s, Session)
            assert s.policy.method == "e-basic"
            result = s.query(example.q0())
        assert result.evaluator == "e-basic"

    def test_query_dispatches_top_k_method(self, example):
        policy = ExecutionPolicy(method="top-k", k=2)
        with Session(
            example.database, example.mappings, links=example.links, policy=policy
        ) as s:
            via_query = s.query(example.q0())
            via_top_k = s.top_k(example.q0())  # k from the policy
        assert via_query.evaluator == "top-k"
        assert _answers(via_query) == _answers(via_top_k)

    def test_top_k_requires_k_somewhere(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            with pytest.raises(ValueError, match="top-k needs k"):
                s.top_k(example.q0())
            assert len(s.top_k(example.q0(), k=1).answers.ranked()) <= 1

    def test_explain_uses_the_session_optimizer(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            text = s.explain(example.q2())
        assert "logical plan" in text
        assert "optimized plan" in text

    def test_top_k_accepts_redundant_method_override(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            # The explicit k must merge before policy validation runs.
            result = s.top_k(example.q0(), k=2, method="top-k")
            assert result.evaluator == "top-k"

    def test_stats_are_point_in_time_copies(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            before = s.stats
            assert before.source_operators == 0
            s.query(example.q0())
            after = s.stats
        assert before.source_operators == 0  # held snapshots never mutate
        assert after.source_operators > 0

    def test_injected_state_is_pinned_to_the_session_database(self, example):
        """Shared state must never serve a different database's queries."""
        other = build_paper_example()
        with Session(example.database, example.mappings, links=example.links) as s:
            s.query_many(_workload(example, repeats=3))
            assert len(s.plan_cache) > 0
            from repro.core.evaluators import BatchEvaluator

            foreign = BatchEvaluator(links=other.links, shared=s._shared)
            lookups_before = s.plan_cache.stats.lookups
            entries_before = len(s.plan_cache)
            for _ in range(2):
                foreign.evaluate_many(
                    _workload(other, repeats=3), other.mappings, other.database
                )
            # The foreign runs got throwaway caches: the session cache was
            # neither probed nor grown by another database's queries.
            assert s.plan_cache.stats.lookups == lookups_before
            assert len(s.plan_cache) == entries_before

    def test_per_call_overrides_are_validated(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            with pytest.raises(ValueError, match="unknown option 'metod'"):
                s.query(example.q0(), metod="basic")
            with pytest.raises(ValueError, match="unknown engine"):
                s.query(example.q0(), engine="gpu")
            row = s.query(example.q0(), engine="row")
            default = s.query(example.q0())
            assert _answers(row) == _answers(default)

    def test_inapplicable_options_are_rejected_not_dropped(self, example):
        from repro.core import evaluate

        with Session(example.database, example.mappings, links=example.links) as s:
            with pytest.raises(ValueError, match="does not apply to method 'e-basic'"):
                s.query(example.q0(), method="e-basic", strategy="snf")
            with pytest.raises(ValueError, match="does not apply to method 'batch'"):
                s.query_many([example.q0()], strategy="snf")
            with pytest.raises(ValueError, match="does not apply to method 'top-k'"):
                s.top_k(example.q0(), k=2, prune_empty=False)
            # ...while applicable combinations still work
            s.query(example.q0(), method="o-sharing", strategy="snf")
            s.query_many([example.q0()], exhaustive_planning=True)
        with pytest.raises(ValueError, match="does not apply"):
            evaluate(
                example.q0(), example.mappings, example.database,
                method="q-sharing", strategy="snf", links=example.links,
            )

    def test_method_override_on_fixed_method_calls_is_rejected(self, example):
        with Session(example.database, example.mappings, links=example.links) as s:
            with pytest.raises(ValueError, match="always runs 'batch'"):
                s.query_many([example.q0()], method="e-mqo")
            with pytest.raises(ValueError, match="always runs 'top-k'"):
                s.top_k(example.q0(), k=2, method="e-basic")
            # restating the call's own method stays legal
            s.query_many([example.q0()], method="batch")
            s.top_k(example.q0(), k=2, method="top-k")

    def test_explicit_cache_size_with_cacheless_method_is_rejected(self, example):
        from repro.core import evaluate

        with pytest.raises(ValueError, match="does not apply to method 'o-sharing'"):
            evaluate(
                example.q0(), example.mappings, example.database,
                method="o-sharing", cache_size=10, links=example.links,
            )
        # ...but it stays valid for the methods that consult the cache, and
        # as a session-level default regardless of method.
        with connect(example, cache_size=16) as s:
            assert s.plan_cache.maxsize == 16
            s.query(example.q0())

    def test_explicit_k_with_non_top_k_method_is_rejected(self, example):
        from repro.core import evaluate

        with Session(example.database, example.mappings, links=example.links) as s:
            with pytest.raises(ValueError, match="does not apply to method 'o-sharing'"):
                s.query(example.q0(), k=5)
        with pytest.raises(ValueError, match="does not apply"):
            evaluate(
                example.q0(), example.mappings, example.database,
                method="o-sharing", k=5, links=example.links,
            )
        # ...but k as a session-policy default for later top_k calls is fine
        policy = ExecutionPolicy(k=2)
        with Session(
            example.database, example.mappings, links=example.links, policy=policy
        ) as s:
            assert s.top_k(example.q0()).evaluator == "top-k"

    def test_connect_validates_the_policy_type(self, example):
        with pytest.raises(ValueError, match="ExecutionPolicy"):
            connect(example, policy={"method": "e-basic"})

    def test_connect_kwargs_are_session_defaults_not_overrides(self, example):
        """connect(scenario, method=..., k=...) configures defaults freely."""
        with connect(example, method="e-basic", k=10, strategy="snf") as s:
            assert (s.policy.method, s.policy.k) == ("e-basic", 10)
            assert s.query(example.q0()).evaluator == "e-basic"
            assert s.top_k(example.q0(), k=1).evaluator == "top-k"
        with pytest.raises(ValueError, match="unknown option"):
            connect(example, metod="e-basic")

    def test_concurrent_close_both_wait_for_release(self, example):
        session = Session(example.database, example.mappings, links=example.links)
        session.query(example.q0())
        threads = [threading.Thread(target=session.close) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # once any close() returned, the resources are released
        assert session.closed and session.pools.closed

    def test_unattached_shared_cache_is_never_reused(self, example):
        """A cache not attached to the database's hooks must not be shared."""
        from repro.core.evaluators import BatchEvaluator, SharedState
        from repro.relational.plancache import PlanCache

        stray = PlanCache(maxsize=64)  # never attached to any database
        evaluator = BatchEvaluator(
            links=example.links, shared=SharedState(plan_cache=stray)
        )
        evaluator.evaluate_many(
            _workload(example, repeats=3), example.mappings, example.database
        )
        assert len(stray) == 0 and stray.stats.lookups == 0
