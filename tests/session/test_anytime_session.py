"""Session-level anytime: budget routing, metrics, spans, resume accounting.

``session.query(q, budget=...)`` / ``budget_ms=...`` route to the anytime
evaluator, the returned result resumes *through the session* (refinement
steps land in the lifetime totals and the anytime gauges/counters), and the
``phase:anytime`` span shows up in traced calls.
"""

from __future__ import annotations

import pytest

from repro import AnytimeResult, Budget, ExecutionPolicy, Session
from repro.datagen.paper_example import build_paper_example


@pytest.fixture()
def example():
    return build_paper_example()


def _session(example, **policy_fields):
    return Session(
        example.database,
        example.mappings,
        links=example.links,
        policy=ExecutionPolicy(**policy_fields),
    )


class TestBudgetRouting:
    def test_budget_override_implies_anytime(self, example):
        with _session(example) as s:
            result = s.query(example.q2(), budget={"mapping_limit": 1})
            assert isinstance(result, AnytimeResult)
            assert result.evaluator == "anytime"
            assert not result.exhausted

    def test_budget_ms_shorthand_implies_anytime(self, example):
        with _session(example) as s:
            result = s.query(example.q2(), budget_ms=60_000)
            assert isinstance(result, AnytimeResult)
            assert result.exhausted  # a minute is unreachable here

    def test_budget_and_budget_ms_conflict(self, example):
        with _session(example) as s:
            with pytest.raises(ValueError, match="not both"):
                s.query(example.q2(), budget=Budget(), budget_ms=5.0)

    def test_explicit_non_anytime_method_rejects_budget(self, example):
        with _session(example) as s:
            with pytest.raises(ValueError, match="does not apply"):
                s.query(example.q2(), method="o-sharing", budget={"mapping_limit": 1})

    def test_unknown_budget_field_gets_did_you_mean(self, example):
        with _session(example) as s:
            with pytest.raises(ValueError, match="did you mean 'eunit_limit'"):
                s.query(example.q2(), budget={"eunit_limits": 1})

    def test_unbudgeted_anytime_matches_default_method(self, example):
        with _session(example) as s:
            exact = s.query(example.q2())
            result = s.query(example.q2(), method="anytime")
            assert dict(result.answers.items()) == dict(exact.answers.items())
            assert result.exhausted and result.converged

    def test_policy_level_anytime_budget(self, example):
        policy = ExecutionPolicy(method="anytime", budget={"eunit_limit": 1})
        with Session(
            example.database, example.mappings, links=example.links, policy=policy
        ) as s:
            result = s.query(example.q2())
            assert not result.exhausted
            assert s.policy.describe()["budget"] == {
                "mapping_limit": None,
                "eunit_limit": 1,
                "wall_ms": None,
            }


class TestAnytimeObservability:
    def test_metrics_track_queries_mass_and_exhaustion(self, example):
        with _session(example) as s:
            partial = s.query(example.q2(), budget={"mapping_limit": 0})
            snapshot = s.metrics()
            assert snapshot.value("repro_anytime_queries_total") == 1
            assert snapshot.value("repro_anytime_budget_exhausted_total") == 1
            assert (
                snapshot.value("repro_anytime_unexplored_mass")
                == partial.unexplored_mass
            )
            s.query(example.q2(), method="anytime")  # unbudgeted: not exhausted
            snapshot = s.metrics()
            assert snapshot.value("repro_anytime_queries_total") == 2
            assert snapshot.value("repro_anytime_budget_exhausted_total") == 1
            assert snapshot.value("repro_anytime_unexplored_mass") == 0.0

    def test_resume_feeds_session_totals_and_counters(self, example):
        with _session(example) as s:
            partial = s.query(example.q2(), budget={"eunit_limit": 1})
            before = s.stats.totals.source_operators
            final = partial.resume()
            assert final.exhausted
            after = s.stats.totals.source_operators
            assert after > before
            snapshot = s.metrics()
            assert snapshot.value("repro_anytime_resumes_total") == 1
            assert snapshot.value("repro_anytime_unexplored_mass") == 0.0
            # resumed work equals one exact evaluation in the lifetime totals
            exact = s.query(example.q2())
            assert (
                s.stats.totals.source_operators - after
                == exact.stats.source_operators
            )

    def test_eunit_counters_exposed_in_metrics(self, example):
        with _session(example) as s:
            result = s.query(example.q2())
            snapshot = s.metrics()
            assert (
                snapshot.value("repro_eunits_created_total")
                == result.stats.eunits_created
                == result.details["units_created"]
            )
            assert (
                snapshot.value("repro_eunits_pruned_total")
                == result.stats.eunits_pruned
            )
            assert (
                snapshot.value("repro_mappings_evaluated_total")
                == result.stats.mappings_evaluated
                > 0
            )

    def test_phase_anytime_span_in_traced_query(self, example):
        with _session(example, trace=True) as s:
            s.query(example.q2(), budget={"eunit_limit": 1})
            root = s.tracer.roots[0]
            names = [span.name for span in root.walk()]
            assert "phase:anytime" in names
            assert root.attributes["method"] == "anytime"

    def test_exact_paths_have_no_anytime_phase(self, example):
        with _session(example, trace=True) as s:
            s.query(example.q2())
            root = s.tracer.roots[0]
            names = [span.name for span in root.walk()]
            assert "phase:anytime" not in names
