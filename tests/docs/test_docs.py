"""The documentation is real: links resolve and code snippets run.

Two guard rails over ``README.md`` and ``docs/*.md``:

* **link check** — every relative markdown link points at an existing file
  (external ``http(s)``/``mailto`` links are skipped — the suite runs
  offline), and every explicit ``src/...``/``tests/...``/``benchmarks/...``
  path mentioned in the prose exists in the repository;
* **snippet smoke** — every fenced ```python`` block is executed in a
  fresh namespace (the same golden-output philosophy as
  ``tests/examples/test_examples_smoke.py``: documentation that is not
  executed rots silently).  Snippets are written to be self-contained and
  laptop-fast; an ``assert`` inside a snippet is a real test assertion.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_REPO_PATH = re.compile(r"(?:src|tests|benchmarks|docs|examples)/[A-Za-z0-9_/.-]+")
_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    broken = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure in-page anchor
            continue
        if not (doc.parent / target).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative links: {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_mentioned_repo_paths_exist(doc):
    text = doc.read_text(encoding="utf-8")
    missing = []
    for match in _REPO_PATH.finditer(text):
        path = match.group(0).rstrip(".")
        # Only treat it as a path claim when it names a file or directory
        # shape we can check (skip glob-ish mentions like ``docs/*.md``).
        if "*" in path:
            continue
        if not (REPO_ROOT / path).exists():
            missing.append(path)
    assert not missing, f"{doc.name}: mentions nonexistent paths: {missing}"


def _snippets():
    cases = []
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        for i, match in enumerate(_PYTHON_BLOCK.finditer(text), start=1):
            cases.append(
                pytest.param(match.group(1), id=f"{_doc_id(doc)}#{i}")
            )
    return cases


@pytest.mark.parametrize("snippet", _snippets())
def test_documentation_snippets_run(snippet):
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    namespace: dict = {"__name__": "__doc_snippet__"}
    exec(compile(snippet, "<doc snippet>", "exec"), namespace)
