"""Golden-output smoke tests for the ``examples/`` entry points.

The README advertises ``python examples/quickstart.py`` and
``python examples/paper_walkthrough.py`` as the first things to run; nothing
else in the test suite executed them, so a refactor could silently break the
documented entry points.  These tests run the scripts exactly as a user
would (a subprocess with ``PYTHONPATH=src``) and pin the output lines whose
values the paper fixes — the walk-through's hand-computed probabilities are
real golden output, the quickstart assertions pin its structure and its
internal e-basic/o-sharing equivalence check.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"


def run_example(name: str) -> str:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{name} exited with {proc.returncode}\nstdout:\n{proc.stdout}\n"
        f"stderr:\n{proc.stderr}"
    )
    return proc.stdout


@pytest.fixture(scope="module")
def walkthrough_output() -> str:
    return run_example("paper_walkthrough.py")


@pytest.fixture(scope="module")
def quickstart_output() -> str:
    return run_example("quickstart.py")


class TestPaperWalkthrough:
    """The walk-through reproduces hand-computed numbers from the paper."""

    GOLDEN_LINES = [
        # q0 = π_addr σ_phone='123' Person (paper: {(aaa, 0.5), (hk, 0.5)})
        "  #1   (aaa)  p=0.5000",
        "  #2   (hk)  p=0.5000",
        # π_phone σ_addr='aaa' Person (paper: {(123,0.5), (456,0.8), (789,0.2)})
        "  #1   (456)  p=0.8000",
        "  #2   (123)  p=0.5000",
        "  #3   (789)  p=0.2000",
        # q-sharing partitions of q1 (paper: P1={m1,m2}, P2={m3,m4}, P3={m5})
        "  P1 = {m1, m2}  probability 0.5",
        "  P2 = {m3, m4}  probability 0.4",
        "  P3 = {m5}  probability 0.1",
        # q2 o-sharing result and the Table II top-1
        "  #1   (hk, 123)  p=0.5000",
        "  (no answer) p=0.5000",
    ]

    def test_golden_lines_present(self, walkthrough_output):
        for line in self.GOLDEN_LINES:
            assert line in walkthrough_output, f"missing golden line: {line!r}"

    def test_osharing_beats_basic_on_operator_count(self, walkthrough_output):
        assert "source operators executed: 14" in walkthrough_output
        # 22 with the cost-based optimizer collapsing basic's selection
        # chains (27 when running with optimize=False).
        assert "(basic executes 22 source operators)" in walkthrough_output

    def test_mapping_table_rendered(self, walkthrough_output):
        assert "m1  Pr=0.3" in walkthrough_output
        assert "o-ratio of the mapping set: 0.58" in walkthrough_output


class TestQuickstart:
    """The quickstart runs end to end and prints every advertised section."""

    SECTIONS = [
        "Scenario",
        "Target query",
        "Probabilistic answers (o-sharing)",
        "Top-3 answers",
    ]

    def test_sections_present(self, quickstart_output):
        for section in self.SECTIONS:
            assert section in quickstart_output, f"missing section: {section!r}"

    def test_equivalence_check_ran(self, quickstart_output):
        # The script asserts e-basic and o-sharing agree and then reports
        # their operator counts; reaching this line means the check passed.
        assert "e-basic computes the same answers with" in quickstart_output

    def test_answers_reported(self, quickstart_output):
        assert "p=" in quickstart_output
        assert "executed" in quickstart_output and "source operators" in quickstart_output
