"""Shared fixtures for the test suite.

The expensive artefacts (matching scenarios, the paper running example) are
session-scoped: they are deterministic, read-only in the tests, and rebuilding
them per test would dominate the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro.datagen.paper_example import PaperExample, build_paper_example
from repro.datagen.scenario import MatchingScenario, build_scenario


@pytest.fixture(scope="session")
def paper_example() -> PaperExample:
    """The running example of Figures 1-3 (Customer/Person, five mappings)."""
    return build_paper_example()


@pytest.fixture(scope="session")
def excel_scenario() -> MatchingScenario:
    """A small Excel scenario used by the integration tests."""
    return build_scenario(target="Excel", h=16, scale=0.01, seed=3)


@pytest.fixture(scope="session")
def noris_scenario() -> MatchingScenario:
    """A small Noris scenario used by the integration tests."""
    return build_scenario(target="Noris", h=16, scale=0.01, seed=3)


@pytest.fixture(scope="session")
def paragon_scenario() -> MatchingScenario:
    """A small Paragon scenario used by the integration tests."""
    return build_scenario(target="Paragon", h=16, scale=0.01, seed=3)


@pytest.fixture(scope="session")
def scenarios(excel_scenario, noris_scenario, paragon_scenario) -> dict[str, MatchingScenario]:
    """All three scenarios keyed by target schema name."""
    return {
        "Excel": excel_scenario,
        "Noris": noris_scenario,
        "Paragon": paragon_scenario,
    }
