"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    DEFAULT_METHODS,
    ExperimentPoint,
    ExperimentSeries,
    mb_to_scale,
    point_from_result,
    run_engines,
    run_method,
    run_methods,
    run_session,
    run_workload,
    sweep_mapping_count,
    sweep_queries,
)
from repro.workloads import paper_query


class TestScaleCalibration:
    def test_linear_in_paper_mb(self):
        assert mb_to_scale(100, calibration=0.04) == pytest.approx(0.04)
        assert mb_to_scale(50, calibration=0.04) == pytest.approx(0.02)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            mb_to_scale(0)


class TestExperimentSeries:
    def build(self):
        series = ExperimentSeries(title="demo", x_label="x")
        series.add(ExperimentPoint("a", 1, 0.5, 10, 2, 3))
        series.add(ExperimentPoint("b", 1, 0.7, 20, 4, 3))
        series.add(ExperimentPoint("a", 2, 1.5, 30, 6, 3))
        return series

    def test_methods_and_x_values(self):
        series = self.build()
        assert series.methods() == ["a", "b"]
        assert series.x_values() == [1, 2]

    def test_value_lookup(self):
        series = self.build()
        assert series.value("a", 2) == 1.5
        assert series.value("a", 1, metric="source_operators") == 10
        with pytest.raises(KeyError):
            series.value("c", 1)

    def test_as_rows_fills_missing_with_none(self):
        rows = self.build().as_rows()
        assert rows == [[1, 0.5, 0.7], [2, 1.5, None]]

    def test_details_metric_lookup(self):
        series = ExperimentSeries(title="demo", x_label="x")
        series.add(ExperimentPoint("a", 1, 0.5, 10, 2, 3, details={"partitions": 4}))
        assert series.value("a", 1, metric="partitions") == 4


class TestRunners:
    def test_run_method_produces_point(self, excel_scenario):
        query = paper_query("Q1", excel_scenario.target_schema)
        point = run_method("q-sharing", query, excel_scenario, x="Q1")
        assert point.method == "q-sharing"
        assert point.x == "Q1"
        assert point.seconds >= 0
        assert point.source_operators > 0

    def test_run_methods_covers_all(self, excel_scenario):
        query = paper_query("Q1", excel_scenario.target_schema)
        points = run_methods(["e-basic", "o-sharing"], query, excel_scenario)
        assert [point.method for point in points] == ["e-basic", "o-sharing"]

    def test_run_engines_adds_engine_dimension(self, excel_scenario):
        query = paper_query("Q1", excel_scenario.target_schema)
        points = run_engines(["e-basic"], ["row", "columnar"], query, excel_scenario, x=1)
        assert [point.method for point in points] == ["e-basic@row", "e-basic@columnar"]
        assert [point.details["engine"] for point in points] == ["row", "columnar"]
        # Same work on both engines; only the wall clock may differ.
        assert points[0].source_operators == points[1].source_operators
        assert points[0].answers == points[1].answers

    def test_run_method_forwards_engine_option(self, excel_scenario):
        query = paper_query("Q1", excel_scenario.target_schema)
        point = run_method("e-basic", query, excel_scenario, engine="row")
        assert point.details["engine"] == "row"

    def test_run_parallel_scaling_adds_worker_dimension(self, excel_scenario):
        from repro.bench.harness import run_parallel_scaling

        query = paper_query("Q1", excel_scenario.target_schema)
        points = run_parallel_scaling(
            ["e-basic"], [1, 2], query, excel_scenario, x=1, min_partition_rows=0
        )
        assert [point.method for point in points] == [
            "e-basic@parallel[1]",
            "e-basic@parallel[2]",
        ]
        assert [point.details["workers"] for point in points] == [1, 2]
        # workers=1 is the serial-columnar baseline; workers=2 must do the
        # same work and return the same answers.
        assert points[0].details["engine"] == "columnar"
        assert points[1].details["engine"] == "parallel"
        assert points[0].source_operators == points[1].source_operators
        assert points[0].answers == points[1].answers

    def test_point_from_result_uses_phase_time_by_default(self, excel_scenario):
        from repro.core import evaluate

        query = paper_query("Q1", excel_scenario.target_schema)
        result = evaluate(
            query,
            excel_scenario.mappings,
            excel_scenario.database,
            method="q-sharing",
            links=excel_scenario.links,
        )
        point = point_from_result(result, x=1)
        assert point.method == "q-sharing"
        assert point.seconds == pytest.approx(result.elapsed_seconds)

    def test_sweep_mapping_count(self, excel_scenario):
        query = paper_query("Q1", excel_scenario.target_schema)
        series = sweep_mapping_count(["q-sharing"], query, excel_scenario, [4, 8])
        assert series.x_values() == [4, 8]
        assert len(series.points) == 2

    def test_sweep_queries(self, scenarios):
        series = sweep_queries(["q-sharing"], ["Q1", "Q6"], scenarios)
        assert series.x_values() == ["Q1", "Q6"]

    def test_sweep_database_size_regenerates_instances(self, excel_scenario):
        from repro.bench.harness import sweep_database_size
        from repro.workloads import paper_query

        series = sweep_database_size(
            ["q-sharing"],
            lambda sized: paper_query("Q1", sized.target_schema),
            excel_scenario,
            [50, 100],
            calibration=0.02,
        )
        assert series.x_values() == [50, 100]
        assert series.x_label == "database size (MB)"
        # The larger instance does at least as much row work.
        assert series.value("q-sharing", 100, "source_operators") >= 1

    def test_points_carry_reformulation_counts(self, excel_scenario):
        from repro.workloads import paper_query

        query = paper_query("Q1", excel_scenario.target_schema)
        point = run_method("e-basic", query, excel_scenario)
        assert point.reformulations == excel_scenario.h

    def test_run_workload_measures_batch_point(self, excel_scenario):
        queries = [
            paper_query(qid, excel_scenario.target_schema) for qid in ("Q1", "Q2", "Q1")
        ]
        point = run_workload(queries, excel_scenario, x="workload")
        assert point.method == "batch"
        assert point.source_queries > 0
        assert point.details["queries"] == 3
        assert point.details["distinct_target_queries"] == 2
        assert "plan_cache" in point.details

    def test_run_session_reports_one_point_per_pass(self, excel_scenario):
        queries = [
            paper_query(qid, excel_scenario.target_schema) for qid in ("Q1", "Q2")
        ] * 3
        points = run_session(queries, excel_scenario, passes=2, x="reuse")
        assert [point.method for point in points] == ["session[1]", "session[2]"]
        warm = points[1]
        # The warm pass runs on the session's persistent plan cache.
        assert warm.details["plan_cache_hits"] > 0
        assert warm.source_operators < points[0].source_operators
        assert warm.details["session"]["workloads"] == 2

    def test_run_session_rejects_nonpositive_passes(self, excel_scenario):
        with pytest.raises(ValueError, match="passes"):
            run_session([], excel_scenario, passes=0)

    def test_default_methods_constant(self):
        assert DEFAULT_METHODS == ("e-basic", "q-sharing", "o-sharing")
