"""Unit tests for benchmark report formatting."""

from repro.bench.harness import ExperimentPoint, ExperimentSeries
from repro.bench.reporting import format_series, format_table, render_experiment


def sample_series():
    series = ExperimentSeries(title="demo", x_label="mappings")
    series.add(ExperimentPoint("e-basic", 100, 1.25, 40, 10, 5))
    series.add(ExperimentPoint("o-sharing", 100, 0.5, 12, 0, 5))
    series.add(ExperimentPoint("e-basic", 200, 2.5, 80, 20, 5))
    series.add(ExperimentPoint("o-sharing", 200, 0.75, 20, 0, 5))
    return series


class TestFormatTable:
    def test_header_and_rule(self):
        text = format_table(["x", "y"], [[1, 2.0], [10, None]])
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert set(lines[1]) <= {"-", " "}
        assert "2.000" in lines[2]
        assert "-" in lines[3]

    def test_column_widths_accommodate_long_values(self):
        text = format_table(["m"], [["a-very-long-cell-value"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("a-very-long-cell-value")


class TestFormatSeries:
    def test_series_table_contains_methods_and_values(self):
        text = format_series(sample_series())
        assert "e-basic [seconds]" in text
        assert "o-sharing [seconds]" in text
        assert "1.250" in text and "0.750" in text

    def test_other_metric(self):
        text = format_series(sample_series(), metric="source_operators")
        assert "40" in text and "20" in text


class TestRenderExperiment:
    def test_render_includes_title_notes_and_tables(self):
        text = render_experiment(
            "Figure 11(c)",
            sample_series(),
            metrics=("seconds", "source_operators"),
            notes="shape check only",
        )
        assert text.startswith("== Figure 11(c) ==")
        assert "shape check only" in text
        assert text.count("mappings") >= 2
