"""Tests for the UNION set operator (the paper's future-work extension).

The paper's conclusion lists set operators as future work; the library
supports UNION end to end — algebra node, executor, query- and operator-level
reformulation, o-sharing candidate selection — and these tests pin the whole
path down, including a hand-computed probabilistic answer on the Figures 1-3
running example.
"""

import pytest

from repro.core import evaluate
from repro.core.eunit import EUnit, candidate_operators
from repro.core.target_query import TargetQuery
from repro.relational.algebra import Materialized, Project, Scan, Select, Union
from repro.relational.database import Database
from repro.relational.executor import execute
from repro.relational.expressions import col
from repro.relational.predicates import Equals
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema
from repro.relational.stats import ExecutionStats


def empty_database() -> Database:
    return Database(DatabaseSchema("S", []))


class TestUnionNode:
    def test_children_roundtrip(self):
        node = Union(Scan("A"), Scan("B"), distinct=False)
        rebuilt = node.with_children([Scan("C"), Scan("D")])
        assert isinstance(rebuilt, Union)
        assert rebuilt.left.relation == "C"
        assert not rebuilt.distinct

    def test_canonical_distinguishes_all(self):
        assert "UnionAll" in Union(Scan("A"), Scan("B"), distinct=False).canonical()
        assert "Union(" in Union(Scan("A"), Scan("B")).canonical()

    def test_no_referenced_columns(self):
        assert Union(Scan("A"), Scan("B")).referenced_columns() == []


class TestUnionExecution:
    def left(self):
        return Materialized(Relation(["t.a", "t.b"], [(1, "x"), (2, "y")]))

    def right(self):
        return Materialized(Relation(["u.a", "u.b"], [(2, "y"), (3, "z")]))

    def test_distinct_union(self):
        result = execute(Union(self.left(), self.right()), empty_database())
        assert result.columns == ("t.a", "t.b")
        assert result.rows == [(1, "x"), (2, "y"), (3, "z")]

    def test_union_all_keeps_duplicates(self):
        result = execute(Union(self.left(), self.right(), distinct=False), empty_database())
        assert len(result) == 4

    def test_union_with_empty_side(self):
        empty = Materialized(Relation(["v.a", "v.b"], []))
        result = execute(Union(self.left(), empty), empty_database())
        assert len(result) == 2

    def test_arity_mismatch_rejected(self):
        bad = Materialized(Relation(["v.a"], [(1,)]))
        with pytest.raises(ValueError, match="equal arity"):
            execute(Union(self.left(), bad), empty_database())

    def test_union_operator_counted(self):
        stats = ExecutionStats()
        execute(Union(self.left(), self.right()), empty_database(), stats)
        assert stats.operators["Union"] == 1


def union_query(paper_example) -> TargetQuery:
    """π addr ((σ phone='123' Person as P1) ∪ (σ phone='456' Person as P2))."""
    plan = Project(
        Union(
            Select(Scan("Person", alias="P1"), Equals(col("P1.phone"), "123")),
            Select(Scan("Person", alias="P2"), Equals(col("P2.phone"), "456")),
        ),
        [col("P1.addr")],
    )
    return TargetQuery(plan, paper_example.target_schema, name="q-union")


class TestUnionQueries:
    def test_candidate_operators_include_union_once_children_materialise(self, paper_example):
        query = union_query(paper_example)
        kinds = [type(c.operator).__name__ for c in candidate_operators(query.plan, query)]
        assert kinds.count("Select") == 2
        assert "Union" not in kinds
        materialised = Materialized(Relation(["P1@Customer.oaddr"], []))
        plan = query.plan
        for select in [n for n in plan.walk() if isinstance(n, Select)]:
            plan = plan.replace(select, materialised if select is not None else select)
        kinds = [type(c.operator).__name__ for c in candidate_operators(plan, query)]
        assert "Union" in kinds

    def test_empty_intermediate_not_pruned_under_union(self, paper_example):
        query = union_query(paper_example)
        empty = Materialized(Relation(["P1@Customer.oaddr"], []))
        first_select = next(n for n in query.plan.walk() if isinstance(n, Select))
        plan = query.plan.replace(first_select, empty)
        unit = EUnit(plan=plan, mappings=list(paper_example.mappings))
        assert not unit.has_empty_intermediate()

    def test_hand_computed_probabilistic_answer(self, paper_example):
        """Union over the Figure 2 instance: aaa 0.8, bbb 0.5, hk 0.5."""
        query = union_query(paper_example)
        result = evaluate(
            query,
            paper_example.mappings,
            paper_example.database,
            method="basic",
            links=paper_example.links,
        )
        assert result.answers.probability(("aaa",)) == pytest.approx(0.8)
        assert result.answers.probability(("bbb",)) == pytest.approx(0.5)
        assert result.answers.probability(("hk",)) == pytest.approx(0.5)
        assert len(result.answers) == 3

    @pytest.mark.parametrize("method", ["e-basic", "e-mqo", "q-sharing", "o-sharing"])
    def test_all_evaluators_agree_on_union_query(self, paper_example, method):
        query = union_query(paper_example)
        reference = evaluate(
            query,
            paper_example.mappings,
            paper_example.database,
            method="basic",
            links=paper_example.links,
        )
        result = evaluate(
            query,
            paper_example.mappings,
            paper_example.database,
            method=method,
            links=paper_example.links,
        )
        assert reference.answers.equals(result.answers), reference.answers.difference(
            result.answers
        )

    def test_union_root_output_attributes_come_from_left_branch(self, excel_scenario):
        from repro.workloads.queries import PERSON, PHONE

        plan = Union(
            Project(
                Select(Scan("PO", alias="A"), Equals(col("A.telephone"), PHONE)),
                [col("A.company")],
            ),
            Project(
                Select(Scan("PO", alias="B"), Equals(col("B.invoiceTo"), PERSON)),
                [col("B.company")],
            ),
        )
        query = TargetQuery(plan, excel_scenario.target_schema, name="union-po")
        assert [a.display for a in query.output_attributes] == ["A.company"]
        assert not query.is_aggregate

    def test_union_on_scenario(self, excel_scenario):
        from repro.workloads.queries import PERSON, PHONE

        # UNION sides must be arity-compatible, so each branch projects the
        # same single attribute before the union.
        plan = Union(
            Project(
                Select(Scan("PO", alias="A"), Equals(col("A.telephone"), PHONE)),
                [col("A.company")],
            ),
            Project(
                Select(Scan("PO", alias="B"), Equals(col("B.invoiceTo"), PERSON)),
                [col("B.company")],
            ),
        )
        query = TargetQuery(plan, excel_scenario.target_schema, name="union-po")
        reference = evaluate(
            query,
            excel_scenario.mappings,
            excel_scenario.database,
            method="basic",
            links=excel_scenario.links,
        )
        result = evaluate(
            query,
            excel_scenario.mappings,
            excel_scenario.database,
            method="o-sharing",
            links=excel_scenario.links,
        )
        assert reference.answers.equals(result.answers)
