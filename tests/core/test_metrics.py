"""Unit tests for the mapping-overlap metrics (Section VIII-B.1)."""

import pytest

from repro.core.metrics import (
    correspondence_frequencies,
    o_ratio,
    o_ratio_pair,
    overlap_series,
    pairwise_o_ratios,
    shared_correspondence_fraction,
)
from repro.matching.mappings import Mapping, MappingSet


def mapping(mapping_id, correspondences):
    return Mapping(mapping_id, correspondences, score=1.0, probability=1.0 / 4)


class TestORatio:
    def test_pairwise_definition(self):
        left = mapping(1, {"T.a": "S.x", "T.b": "S.y"})
        right = mapping(2, {"T.a": "S.x", "T.b": "S.z"})
        assert o_ratio_pair(left, right) == pytest.approx(1 / 3)

    def test_set_average(self, paper_example):
        mappings = paper_example.mappings
        ratios = pairwise_o_ratios(mappings)
        assert o_ratio(mappings) == pytest.approx(sum(ratios) / len(ratios))

    def test_single_mapping_is_one(self):
        assert o_ratio([mapping(1, {"T.a": "S.x"})]) == 1.0

    def test_accepts_plain_sequences(self, paper_example):
        as_list = list(paper_example.mappings)
        assert o_ratio(as_list) == pytest.approx(paper_example.mappings.o_ratio())

    def test_paper_example_overlaps_heavily(self, paper_example):
        assert o_ratio(paper_example.mappings) > 0.5


class TestOtherMetrics:
    def test_pairwise_count(self, paper_example):
        assert len(pairwise_o_ratios(paper_example.mappings)) == 10  # C(5,2)

    def test_shared_correspondence_fraction(self):
        mappings = MappingSet(
            [
                mapping(1, {"T.a": "S.x", "T.b": "S.y"}),
                mapping(2, {"T.a": "S.x", "T.b": "S.z"}),
            ]
        )
        assert shared_correspondence_fraction(mappings) == pytest.approx(0.5)

    def test_correspondence_frequencies(self, paper_example):
        frequencies = correspondence_frequencies(paper_example.mappings)
        assert frequencies[("Person.phone", "Customer.ophone")] == 4
        assert frequencies[("Person.phone", "Customer.hphone")] == 1

    def test_overlap_series_shape(self, excel_scenario):
        series = overlap_series(excel_scenario.mappings, [2, 4, 8, 16])
        assert [point.h for point in series] == [2, 4, 8, 16]
        assert all(0.0 <= point.o_ratio <= 1.0 for point in series)

    def test_overlap_series_clamps_h(self, paper_example):
        series = overlap_series(paper_example.mappings, [3, 50])
        assert series[-1].h == 5

    def test_overlap_series_rejects_non_positive_h(self, paper_example):
        with pytest.raises(ValueError):
            overlap_series(paper_example.mappings, [0])
