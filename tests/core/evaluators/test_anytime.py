"""The anytime axis: budgeted drives, sound intervals, byte-identical limits.

ARCHITECTURE.md invariant 11, pinned here:

* **no budget (or an unreachable one) ⇒ byte-identical to o-sharing exact**
  — answers compared as exact dicts (floats included) and deterministic
  counters compared field for field;
* **any deterministic budget ⇒ sound intervals** — ``lb ≤ exact ≤ ub`` for
  every tuple, monotonically tightening across ``resume()`` steps, on every
  available engine including forced-sharding parallel (hypothesis-driven);
* a ``converged`` report is a *proof*: the ranked prefix must equal the
  exact ranking.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anytime import Budget, IntervalAnswer, ProgressState
from repro.anytime.progress import ranking_converged
from repro.core.answer import PROBABILITY_TOLERANCE
from repro.core.evaluators import EVALUATORS
from repro.core.evaluators.anytime import AnytimeEvaluator
from repro.core.evaluators.osharing import OSharingEvaluator
from repro.relational.executor import available_engines
from repro.relational.parallel import ParallelConfig

TOL = PROBABILITY_TOLERANCE

#: The deterministic counters whose equality "byte-identical" claims cover
#: (memo hits are excluded everywhere: they depend on plan label order, which
#: legitimately differs between depth-first and priority-order exploration).
_COUNTERS = (
    "source_operators",
    "source_queries",
    "reformulations",
    "partitions_created",
    "rows_scanned",
    "rows_output",
    "eunits_created",
    "eunits_pruned",
    "mappings_evaluated",
)


def _counters(stats) -> dict:
    snapshot = {name: getattr(stats, name) for name in _COUNTERS}
    snapshot["operators"] = dict(stats.operators)
    return snapshot


def _exact(example, query, **options):
    return OSharingEvaluator(links=example.links, **options).evaluate(
        query, example.mappings, example.database
    )


def _anytime(example, query, **options):
    return AnytimeEvaluator(links=example.links, **options).evaluate(
        query, example.mappings, example.database
    )


def _queries(example):
    return [example.q0(), example.q1(), example.q2(), example.q_phone_by_addr()]


# --------------------------------------------------------------------------- #
# registration and construction
# --------------------------------------------------------------------------- #
def test_registered_as_first_class_method():
    assert EVALUATORS["anytime"] is AnytimeEvaluator
    assert AnytimeEvaluator.name == "anytime"


def test_budget_validation_is_eager_with_did_you_mean():
    with pytest.raises(ValueError, match="mapping_limit"):
        Budget(mapping_limit=-1)
    with pytest.raises(ValueError, match="wall_ms"):
        Budget(wall_ms=0)
    with pytest.raises(ValueError, match="did you mean 'mapping_limit'"):
        Budget.from_spec({"maping_limit": 5})
    with pytest.raises(ValueError, match="non-negative int"):
        Budget(mapping_limit=True)
    assert Budget.from_spec({"mapping_limit": 5}).mapping_limit == 5
    assert Budget().unbounded
    assert not Budget(eunit_limit=1).unbounded


def test_budget_capped_clamps_down_only():
    assert Budget().capped(10).mapping_limit == 10
    assert Budget(mapping_limit=50).capped(10).mapping_limit == 10
    small = Budget(mapping_limit=3)
    assert small.capped(10) is small


def test_evaluator_rejects_bad_budget_spec():
    with pytest.raises(ValueError, match="budget must be a Budget or a mapping"):
        AnytimeEvaluator(budget=17)


# --------------------------------------------------------------------------- #
# invariant 11, first half: no budget ⇒ byte-identical to o-sharing
# --------------------------------------------------------------------------- #
def test_unbudgeted_is_byte_identical_to_osharing(paper_example):
    for query in _queries(paper_example):
        exact = _exact(paper_example, query)
        result = _anytime(paper_example, query)
        assert dict(result.answers.items()) == dict(exact.answers.items())
        assert result.answers.empty_probability == exact.answers.empty_probability
        assert _counters(result.stats) == _counters(exact.stats)
        assert result.exhausted and result.converged
        assert result.unexplored_mass == 0.0
        assert result.details["units_created"] == exact.details["units_created"]


def test_unreachable_budget_is_byte_identical_to_osharing(paper_example):
    for query in _queries(paper_example):
        exact = _exact(paper_example, query)
        result = _anytime(
            paper_example,
            query,
            budget=Budget(mapping_limit=10_000, eunit_limit=10_000),
        )
        assert dict(result.answers.items()) == dict(exact.answers.items())
        assert _counters(result.stats) == _counters(exact.stats)
        assert result.exhausted and result.converged


def test_unbudgeted_matches_on_scenario_queries(excel_scenario):
    from repro.workloads import paper_query

    scenario = excel_scenario.with_mappings(16)
    for query_id in ("Q1", "Q2", "Q3", "Q4", "Q5"):
        query = paper_query(query_id, excel_scenario.target_schema)
        exact = OSharingEvaluator(links=scenario.links).evaluate(
            query, scenario.mappings, scenario.database
        )
        result = AnytimeEvaluator(links=scenario.links).evaluate(
            query, scenario.mappings, scenario.database
        )
        assert dict(result.answers.items()) == dict(exact.answers.items())
        assert _counters(result.stats) == _counters(exact.stats)


def test_strategy_options_mirror_osharing(paper_example):
    query = paper_example.q2()
    for strategy in ("sef", "snf", "random"):
        exact = _exact(paper_example, query, strategy=strategy, seed=7)
        result = _anytime(paper_example, query, strategy=strategy, seed=7)
        assert dict(result.answers.items()) == dict(exact.answers.items())
        assert _counters(result.stats) == _counters(exact.stats)


# --------------------------------------------------------------------------- #
# budgeted drives: determinism, soundness, progress
# --------------------------------------------------------------------------- #
def test_zero_budget_executes_nothing_and_bounds_everything(paper_example):
    query = paper_example.q2()
    result = _anytime(paper_example, query, budget=Budget(mapping_limit=0))
    assert result.stats.total_operators == 0
    assert not result.exhausted
    assert not result.converged
    assert result.unexplored_mass > 0
    assert dict(result.answers.items()) == {}
    # every as-yet-unseen tuple is bounded by [0, U]
    interval = result.interval_for(("anything", "at all"))
    assert interval.lb == 0.0 and interval.ub == result.unexplored_mass


def test_budgeted_runs_are_deterministic(paper_example):
    query = paper_example.q2()
    first = _anytime(paper_example, query, budget=Budget(eunit_limit=2))
    second = _anytime(paper_example, query, budget=Budget(eunit_limit=2))
    assert dict(first.answers.items()) == dict(second.answers.items())
    assert first.intervals == second.intervals
    assert first.unexplored_mass == second.unexplored_mass
    assert _counters(first.stats) == _counters(second.stats)


def test_budget_meters_stop_before_exceeding(paper_example):
    query = paper_example.q2()
    exact = _exact(paper_example, query)
    for limit in range(0, exact.details["units_created"] + 1):
        result = _anytime(paper_example, query, budget=Budget(eunit_limit=limit))
        # the root is free; each executed task creates exactly one child
        assert result.stats.eunits_created <= limit + 1
        assert result.stats.total_operators <= exact.stats.total_operators


def test_intervals_contain_exact_probabilities(paper_example):
    query = paper_example.q2()
    exact_map = dict(_exact(paper_example, query).answers.items())
    for limit in (0, 1, 2, 3, 5, 8):
        result = _anytime(paper_example, query, budget=Budget(mapping_limit=limit))
        for values, probability in exact_map.items():
            interval = result.interval_for(values)
            assert interval.lb <= probability + TOL
            assert probability <= interval.ub + TOL
        # no fabricated tuples: everything reported exists in the exact answer
        for interval in result.intervals:
            assert interval.values in exact_map
            assert interval.ub == interval.lb + result.unexplored_mass


def test_converged_report_proves_exact_ranking(paper_example):
    for query in _queries(paper_example):
        exact_ranked = [
            r.values for r in _exact(paper_example, query).answers.ranked()
        ]
        for limit in range(0, 12):
            result = _anytime(
                paper_example, query, budget=Budget(mapping_limit=limit)
            )
            if not result.converged:
                continue
            prefix = [interval.values for interval in result.intervals]
            assert prefix == exact_ranked[: len(prefix)]


def test_resume_tightens_monotonically_to_exact(paper_example):
    query = paper_example.q2()
    exact = _exact(paper_example, query)
    exact_map = dict(exact.answers.items())
    result = _anytime(paper_example, query, budget=Budget(eunit_limit=1))
    seen = set(exact_map)
    previous = {values: result.interval_for(values) for values in seen}
    steps = 0
    while not result.exhausted:
        result = result.resume(budget=Budget(eunit_limit=1))
        steps += 1
        assert steps < 100, "resume chain did not terminate"
        for values in seen:
            interval = result.interval_for(values)
            assert interval.lb >= previous[values].lb - TOL
            assert interval.ub <= previous[values].ub + TOL
            previous[values] = interval
    assert steps >= 1
    assert dict(result.answers.items()) == exact_map
    # cumulative stats across the whole chain equal one exact evaluation
    assert _counters(result.stats) == _counters(exact.stats)


def test_resume_without_continuation_raises():
    from repro.anytime import AnytimeResult

    bare = AnytimeResult(
        evaluator="anytime", query=None, answers=None, stats=None, details={}
    )
    with pytest.raises(RuntimeError, match="no continuation"):
        bare.resume()


def test_resume_after_write_is_a_hard_staleness_error(paper_example):
    from repro.datagen.paper_example import build_paper_example

    example = build_paper_example()  # private copy: the test writes to it
    query = example.q2()
    result = AnytimeEvaluator(links=example.links, budget=Budget(eunit_limit=1)).evaluate(
        query, example.mappings, example.database
    )
    assert not result.exhausted
    relation = sorted(example.database.relation_names)[0]
    rows = [tuple(row) for row in example.database.relation(relation).rows[:1]]
    example.database.append_rows(relation, rows)
    with pytest.raises(RuntimeError, match="stale"):
        result.resume()


def test_wall_clock_budget_is_best_effort(paper_example):
    query = paper_example.q2()
    # A generous wall budget completes (and is exact) ...
    done = _anytime(paper_example, query, budget=Budget(wall_ms=60_000))
    assert done.exhausted
    # ... and budget_ms resume shorthand maps onto the same wall budget.
    partial = _anytime(paper_example, query, budget=Budget(eunit_limit=1))
    finished = partial.resume(budget_ms=60_000)
    assert finished.exhausted
    with pytest.raises(ValueError, match="not both"):
        partial = _anytime(paper_example, query, budget=Budget(eunit_limit=1))
        partial.resume(budget=Budget(), budget_ms=5.0)


# --------------------------------------------------------------------------- #
# hypothesis: soundness and tightening across engines (forced sharding incl.)
# --------------------------------------------------------------------------- #
def _engine_options():
    options = []
    for engine in available_engines():
        options.append({"engine": engine})
    # forced sharding: every relation splits even at paper-example sizes
    options.append(
        {"engine": "parallel", "parallel": ParallelConfig(workers=2, min_partition_rows=0)}
    )
    return options


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_intervals_sound_and_tightening_on_every_engine(paper_example, data):
    options = data.draw(st.sampled_from(_engine_options()), label="engine")
    query = data.draw(
        st.sampled_from(["q0", "q1", "q2", "q_phone"]), label="query"
    )
    limit_kind = data.draw(
        st.sampled_from(["mapping_limit", "eunit_limit"]), label="limit"
    )
    limit = data.draw(st.integers(min_value=0, max_value=8), label="value")
    step = data.draw(st.integers(min_value=1, max_value=4), label="step")

    queries = {
        "q0": paper_example.q0(),
        "q1": paper_example.q1(),
        "q2": paper_example.q2(),
        "q_phone": paper_example.q_phone_by_addr(),
    }
    target = queries[query]
    exact_map = dict(_exact(paper_example, target, **options).answers.items())

    result = _anytime(
        paper_example, target, budget=Budget(**{limit_kind: limit}), **options
    )
    seen = set(exact_map)
    previous = {values: result.interval_for(values) for values in seen}
    for values, probability in exact_map.items():
        interval = result.interval_for(values)
        assert interval.lb <= probability + TOL
        assert probability <= interval.ub + TOL

    rounds = 0
    while not result.exhausted:
        result = result.resume(budget=Budget(eunit_limit=step))
        rounds += 1
        assert rounds < 200
        for values, probability in exact_map.items():
            interval = result.interval_for(values)
            assert interval.lb <= probability + TOL
            assert probability <= interval.ub + TOL
            assert interval.lb >= previous[values].lb - TOL
            assert interval.ub <= previous[values].ub + TOL
            previous[values] = interval

    assert dict(result.answers.items()) == exact_map


# --------------------------------------------------------------------------- #
# progress-model unit coverage
# --------------------------------------------------------------------------- #
def test_ranking_converged_logic():
    separated = (
        IntervalAnswer(("a",), 0.6, 0.7),
        IntervalAnswer(("b",), 0.3, 0.4),
    )
    assert ranking_converged(separated, unexplored=0.1, exhausted=False)
    overlapping = (
        IntervalAnswer(("a",), 0.6, 0.9),
        IntervalAnswer(("b",), 0.7, 1.0),
    )
    assert not ranking_converged(overlapping, unexplored=0.3, exhausted=False)
    # a new tuple could still displace the last ranked one
    assert not ranking_converged(separated, unexplored=0.35, exhausted=False)
    assert ranking_converged((), unexplored=0.0, exhausted=False)
    assert not ranking_converged((), unexplored=0.2, exhausted=False)
    assert ranking_converged(overlapping, unexplored=0.3, exhausted=True)


def test_progress_state_pops_in_decreasing_mass_fifo_ties():
    class _M:
        def __init__(self, probability):
            self.probability = probability

    state = ProgressState()
    state.push((), 0, None, None, (_M(0.2),))
    state.push((), 1, None, None, (_M(0.5),))
    state.push((), 2, None, None, (_M(0.2),))
    masses = [state.pop().mass for _ in range(3)]
    assert masses == [0.5, 0.2, 0.2]
    assert state.exhausted

    state = ProgressState()
    state.push((), 0, None, None, (_M(0.25),))
    state.push((), 1, None, None, (_M(0.25),))
    first, second = state.pop(), state.pop()
    assert (first.index, second.index) == (0, 1)  # FIFO on equal mass
