"""Unit tests for the e-MQO evaluator."""

import pytest

from repro.core.evaluators.basic import BasicEvaluator
from repro.core.evaluators.ebasic import EBasicEvaluator
from repro.core.evaluators.emqo import EMQOEvaluator, MemoizingExecutor, build_global_plan
from repro.core.reformulation import reformulate_query
from repro.relational.algebra import Product, Scan, Select
from repro.relational.executor import Executor
from repro.relational.expressions import col
from repro.relational.plancache import PlanCache
from repro.relational.predicates import Equals
from repro.relational.stats import ExecutionStats


@pytest.fixture()
def evaluator(paper_example):
    return EMQOEvaluator(links=paper_example.links)


class TestGlobalPlan:
    def test_shared_subexpressions_found(self, paper_example):
        query = paper_example.q2()
        plans = [
            reformulate_query(query, mapping, paper_example.links)
            for mapping in paper_example.mappings
        ]
        global_plan = build_global_plan(plans)
        assert global_plan.materialisation_points >= 1
        assert global_plan.comparisons > 0
        # Benefits are sorted in decreasing order.
        benefits = [expression.benefit for expression in global_plan.shared]
        assert benefits == sorted(benefits, reverse=True)

    def test_disjoint_queries_share_nothing(self, paper_example):
        plans = [
            Select(Scan("Customer"), Equals(col("Customer.cname"), "Alice")),
            Select(Scan("Nation"), Equals(col("Nation.name"), "China")),
        ]
        global_plan = build_global_plan(plans)
        assert global_plan.materialisation_points == 0

    def test_comparisons_grow_quadratically(self, paper_example):
        query = paper_example.q2()
        plans = [
            reformulate_query(query, mapping, paper_example.links)
            for mapping in paper_example.mappings
        ]
        few = build_global_plan(plans[:2]).comparisons
        many = build_global_plan(plans).comparisons
        assert many > few

    def test_subexpression_repeated_within_one_query_is_shared(self):
        # Regression: occurrence seeding previously only looked at
        # *cross-query* pairs, so a subexpression repeated inside a single
        # source query (self-join branches, union arms) was never detected.
        branch = Select(Scan("Customer"), Equals(col("Customer.cname"), "Alice"))
        plan = Product(branch, branch)
        global_plan = build_global_plan([plan])
        assert global_plan.materialisation_points >= 1
        shared = {expression.canonical for expression in global_plan.shared}
        assert branch.canonical() in shared
        repeated = next(
            e for e in global_plan.shared if e.canonical == branch.canonical()
        )
        assert repeated.occurrences == 2

    def test_fast_mode_finds_same_shared_set(self, paper_example):
        query = paper_example.q2()
        plans = [
            reformulate_query(query, mapping, paper_example.links)
            for mapping in paper_example.mappings
        ]
        exhaustive = build_global_plan(plans, exhaustive=True)
        fast = build_global_plan(plans, exhaustive=False)
        assert exhaustive.selected_canonicals() == fast.selected_canonicals()
        assert fast.comparisons == 0


class TestMemoizingExecutor:
    def test_repeated_subplans_execute_once(self, paper_example):
        stats = ExecutionStats()
        executor = MemoizingExecutor(paper_example.database, stats)
        plan = Select(Scan("Customer"), Equals(col("Customer.oaddr"), "aaa"))
        first = executor.execute_query(plan)
        operators_after_first = stats.source_operators
        second = executor.execute_query(plan)
        assert first.rows == second.rows
        assert stats.source_operators == operators_after_first
        assert executor.cache_size >= 1


class TestEvaluation:
    def test_matches_basic_and_ebasic(self, paper_example, evaluator):
        basic = BasicEvaluator(links=paper_example.links)
        for query in (paper_example.q0(), paper_example.q_phone_by_addr(), paper_example.q2()):
            expected = basic.evaluate(query, paper_example.mappings, paper_example.database)
            actual = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
            assert expected.answers.equals(actual.answers)

    def test_minimal_operator_count(self, paper_example, evaluator):
        ebasic = EBasicEvaluator(links=paper_example.links)
        query = paper_example.q2()
        shared = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
        unshared = ebasic.evaluate(query, paper_example.mappings, paper_example.database)
        assert shared.stats.source_operators <= unshared.stats.source_operators

    def test_planning_phase_recorded(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q0(), paper_example.mappings, paper_example.database
        )
        assert "planning" in result.stats.phase_seconds
        assert "plan_comparisons" in result.details

    def test_global_plan_drives_materialisation(self, paper_example, evaluator):
        # The executor materialises what the global plan selected: every
        # shared-subexpression reuse is a recorded cache hit, and the saved
        # operators account exactly for the gap to e-basic.
        ebasic = EBasicEvaluator(links=paper_example.links)
        query = paper_example.q2()
        shared = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
        unshared = ebasic.evaluate(query, paper_example.mappings, paper_example.database)
        assert shared.stats.plan_cache_hits > 0
        assert shared.details["plan_cache_hits"] == shared.stats.plan_cache_hits
        assert shared.stats.operators_saved == (
            unshared.stats.source_operators - shared.stats.source_operators
        )

    def test_repeated_branch_executes_once_within_one_query(self, paper_example):
        branch = Select(Scan("Customer"), Equals(col("Customer.oaddr"), "aaa"))
        plan = Product(branch, branch)
        global_plan = build_global_plan([plan])
        stats = ExecutionStats()
        executor = Executor(
            paper_example.database,
            stats,
            cache=PlanCache(maxsize=8),
            policy=global_plan.materialization_policy(),
        )
        executor.execute_query(plan)
        # Scan+Select execute once; the second branch is a cache hit.
        assert stats.plan_cache_hits == 1
        assert stats.operators_saved == 2
