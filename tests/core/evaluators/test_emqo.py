"""Unit tests for the e-MQO evaluator."""

import pytest

from repro.core.evaluators.basic import BasicEvaluator
from repro.core.evaluators.ebasic import EBasicEvaluator
from repro.core.evaluators.emqo import EMQOEvaluator, MemoizingExecutor, build_global_plan
from repro.core.reformulation import reformulate_query
from repro.relational.algebra import Scan, Select
from repro.relational.expressions import col
from repro.relational.predicates import Equals
from repro.relational.stats import ExecutionStats


@pytest.fixture()
def evaluator(paper_example):
    return EMQOEvaluator(links=paper_example.links)


class TestGlobalPlan:
    def test_shared_subexpressions_found(self, paper_example):
        query = paper_example.q2()
        plans = [
            reformulate_query(query, mapping, paper_example.links)
            for mapping in paper_example.mappings
        ]
        global_plan = build_global_plan(plans)
        assert global_plan.materialisation_points >= 1
        assert global_plan.comparisons > 0
        # Benefits are sorted in decreasing order.
        benefits = [expression.benefit for expression in global_plan.shared]
        assert benefits == sorted(benefits, reverse=True)

    def test_disjoint_queries_share_nothing(self, paper_example):
        plans = [
            Select(Scan("Customer"), Equals(col("Customer.cname"), "Alice")),
            Select(Scan("Nation"), Equals(col("Nation.name"), "China")),
        ]
        global_plan = build_global_plan(plans)
        assert global_plan.materialisation_points == 0

    def test_comparisons_grow_quadratically(self, paper_example):
        query = paper_example.q2()
        plans = [
            reformulate_query(query, mapping, paper_example.links)
            for mapping in paper_example.mappings
        ]
        few = build_global_plan(plans[:2]).comparisons
        many = build_global_plan(plans).comparisons
        assert many > few


class TestMemoizingExecutor:
    def test_repeated_subplans_execute_once(self, paper_example):
        stats = ExecutionStats()
        executor = MemoizingExecutor(paper_example.database, stats)
        plan = Select(Scan("Customer"), Equals(col("Customer.oaddr"), "aaa"))
        first = executor.execute_query(plan)
        operators_after_first = stats.source_operators
        second = executor.execute_query(plan)
        assert first.rows == second.rows
        assert stats.source_operators == operators_after_first
        assert executor.cache_size >= 1


class TestEvaluation:
    def test_matches_basic_and_ebasic(self, paper_example, evaluator):
        basic = BasicEvaluator(links=paper_example.links)
        for query in (paper_example.q0(), paper_example.q_phone_by_addr(), paper_example.q2()):
            expected = basic.evaluate(query, paper_example.mappings, paper_example.database)
            actual = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
            assert expected.answers.equals(actual.answers)

    def test_minimal_operator_count(self, paper_example, evaluator):
        ebasic = EBasicEvaluator(links=paper_example.links)
        query = paper_example.q2()
        shared = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
        unshared = ebasic.evaluate(query, paper_example.mappings, paper_example.database)
        assert shared.stats.source_operators <= unshared.stats.source_operators

    def test_planning_phase_recorded(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q0(), paper_example.mappings, paper_example.database
        )
        assert "planning" in result.stats.phase_seconds
        assert "plan_comparisons" in result.details
