"""Unit tests for the basic evaluator, anchored on the paper's worked examples."""

import pytest

from repro.core.evaluators.basic import BasicEvaluator


@pytest.fixture()
def evaluator(paper_example):
    return BasicEvaluator(links=paper_example.links)


class TestPaperExamples:
    def test_section_iii_example(self, paper_example, evaluator):
        """π_phone σ_addr='aaa' Person → {(123, 0.5), (456, 0.8), (789, 0.2)}."""
        result = evaluator.evaluate(
            paper_example.q_phone_by_addr(), paper_example.mappings, paper_example.database
        )
        answers = result.answers
        assert answers.probability(("123",)) == pytest.approx(0.5)
        assert answers.probability(("456",)) == pytest.approx(0.8)
        assert answers.probability(("789",)) == pytest.approx(0.2)
        assert len(answers) == 3
        assert answers.empty_probability == pytest.approx(0.0)

    def test_introduction_query_q0(self, paper_example, evaluator):
        """π_addr σ_phone='123' Person → {(aaa, 0.5), (hk, 0.5)}."""
        result = evaluator.evaluate(
            paper_example.q0(), paper_example.mappings, paper_example.database
        )
        assert result.answers.probability(("aaa",)) == pytest.approx(0.5)
        assert result.answers.probability(("hk",)) == pytest.approx(0.5)

    def test_unsatisfiable_selection_yields_null_answer(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q1(), paper_example.mappings, paper_example.database
        )
        # No customer has address 'abc', and m5 cannot answer (pname unmatched):
        # all probability mass becomes the null answer.
        assert len(result.answers) == 0
        assert result.answers.empty_probability == pytest.approx(1.0)

    def test_total_probability_conserved_for_single_tuple_queries(self, paper_example, evaluator):
        # q0 and q1 yield at most one answer tuple per mapping, so the answer
        # probabilities plus the null-answer mass sum to one.
        for query in (paper_example.q0(), paper_example.q1()):
            result = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
            assert result.answers.total_probability == pytest.approx(1.0)

    def test_tuple_probabilities_are_marginals(self, paper_example, evaluator):
        # The Section III-B example: one mapping returns two tuples, so the
        # per-tuple probabilities sum to more than one — each is the marginal
        # probability that the tuple is a correct answer.
        result = evaluator.evaluate(
            paper_example.q_phone_by_addr(), paper_example.mappings, paper_example.database
        )
        assert result.answers.total_probability == pytest.approx(1.5)
        assert all(p <= 1.0 for _, p in result.answers.items())


class TestMechanics:
    def test_one_source_query_per_answerable_mapping(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q0(), paper_example.mappings, paper_example.database
        )
        assert result.stats.source_queries == 5
        assert result.stats.reformulations == 5
        assert result.details["evaluated_source_queries"] == 5

    def test_unmatched_mappings_skip_execution(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q1(), paper_example.mappings, paper_example.database
        )
        # m5 cannot be reformulated, so only four source queries run.
        assert result.stats.source_queries == 4

    def test_phases_are_recorded(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q0(), paper_example.mappings, paper_example.database
        )
        assert {"rewriting", "evaluation", "aggregation"} <= set(result.stats.phase_seconds)

    def test_evaluate_mappings_accepts_plain_lists(self, paper_example, evaluator):
        subset = list(paper_example.mappings)[:2]
        result = evaluator.evaluate_mappings(
            paper_example.q0(), subset, paper_example.database
        )
        assert result.answers.total_probability == pytest.approx(0.5)

    def test_result_summary_fields(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q0(), paper_example.mappings, paper_example.database
        )
        summary = result.summary()
        assert summary["evaluator"] == "basic"
        assert summary["query"] == "q0"
        assert summary["source_queries"] == 5
        assert result.source_operators > 0
