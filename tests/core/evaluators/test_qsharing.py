"""Unit tests for the q-sharing evaluator (Algorithm 1)."""

import pytest

from repro.core.evaluators.basic import BasicEvaluator
from repro.core.evaluators.qsharing import QSharingEvaluator


@pytest.fixture()
def evaluator(paper_example):
    return QSharingEvaluator(links=paper_example.links)


class TestQSharing:
    def test_matches_basic_answers(self, paper_example, evaluator):
        basic = BasicEvaluator(links=paper_example.links)
        for query in (
            paper_example.q0(),
            paper_example.q_phone_by_addr(),
            paper_example.q1(),
            paper_example.q2(),
        ):
            expected = basic.evaluate(query, paper_example.mappings, paper_example.database)
            actual = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
            assert expected.answers.equals(actual.answers), expected.answers.difference(
                actual.answers
            )

    def test_q1_uses_three_representative_mappings(self, paper_example, evaluator):
        """Section IV's example: q1 partitions the five mappings into three groups."""
        result = evaluator.evaluate(
            paper_example.q1(), paper_example.mappings, paper_example.database
        )
        assert result.details["partitions"] == 3
        assert result.details["representative_mappings"] == 3

    def test_fewer_reformulations_than_basic(self, paper_example, evaluator):
        basic = BasicEvaluator(links=paper_example.links)
        query = paper_example.q0()
        shared = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
        unshared = basic.evaluate(query, paper_example.mappings, paper_example.database)
        # q-sharing rewrites one query per representative mapping only.
        assert shared.stats.reformulations < unshared.stats.reformulations
        assert shared.stats.source_queries < unshared.stats.source_queries

    def test_partition_probability_flows_to_answers(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q_phone_by_addr(), paper_example.mappings, paper_example.database
        )
        assert result.answers.probability(("456",)) == pytest.approx(0.8)

    def test_scenario_query_matches_basic(self, excel_scenario):
        from repro.workloads import paper_query

        query = paper_query("Q1", excel_scenario.target_schema)
        basic = BasicEvaluator(links=excel_scenario.links)
        shared = QSharingEvaluator(links=excel_scenario.links)
        expected = basic.evaluate(query, excel_scenario.mappings, excel_scenario.database)
        actual = shared.evaluate(query, excel_scenario.mappings, excel_scenario.database)
        assert expected.answers.equals(actual.answers)

    def test_stats_include_partition_phase(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q0(), paper_example.mappings, paper_example.database
        )
        assert result.stats.partitions_created >= 1
        assert "rewriting" in result.stats.phase_seconds
