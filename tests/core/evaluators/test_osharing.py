"""Unit tests for the o-sharing evaluator (Algorithm 2)."""

import pytest

from repro.core.evaluators.basic import BasicEvaluator
from repro.core.evaluators.osharing import OSharingEvaluator


@pytest.fixture()
def evaluator(paper_example):
    return OSharingEvaluator(links=paper_example.links)


class TestCorrectness:
    def test_matches_basic_on_paper_queries(self, paper_example, evaluator):
        basic = BasicEvaluator(links=paper_example.links)
        for query in (
            paper_example.q0(),
            paper_example.q_phone_by_addr(),
            paper_example.q1(),
            paper_example.q2(),
        ):
            expected = basic.evaluate(query, paper_example.mappings, paper_example.database)
            actual = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
            assert expected.answers.equals(actual.answers), expected.answers.difference(
                actual.answers
            )

    @pytest.mark.parametrize("strategy", ["random", "snf", "sef"])
    def test_all_strategies_give_same_answers(self, paper_example, strategy):
        basic = BasicEvaluator(links=paper_example.links)
        sharing = OSharingEvaluator(links=paper_example.links, strategy=strategy, seed=1)
        query = paper_example.q2()
        expected = basic.evaluate(query, paper_example.mappings, paper_example.database)
        actual = sharing.evaluate(query, paper_example.mappings, paper_example.database)
        assert expected.answers.equals(actual.answers)

    def test_prune_empty_flag_does_not_change_answers(self, paper_example):
        query = paper_example.q2()
        pruned = OSharingEvaluator(links=paper_example.links, prune_empty=True).evaluate(
            query, paper_example.mappings, paper_example.database
        )
        unpruned = OSharingEvaluator(links=paper_example.links, prune_empty=False).evaluate(
            query, paper_example.mappings, paper_example.database
        )
        assert pruned.answers.equals(unpruned.answers)
        assert pruned.stats.source_operators <= unpruned.stats.source_operators

    def test_aggregate_query_counts_zero_rows(self, paper_example):
        """COUNT over an empty selection must return 0, not the null answer."""
        from repro.core.target_query import TargetQuery
        from repro.relational.algebra import Aggregate, Scan, Select
        from repro.relational.expressions import col
        from repro.relational.predicates import Equals

        plan = Aggregate(
            Select(Scan("Person"), Equals(col("addr"), "no-such-address")), "COUNT"
        )
        query = TargetQuery(plan, paper_example.target_schema, name="count-q")
        basic = BasicEvaluator(links=paper_example.links)
        sharing = OSharingEvaluator(links=paper_example.links)
        expected = basic.evaluate(query, paper_example.mappings, paper_example.database)
        actual = sharing.evaluate(query, paper_example.mappings, paper_example.database)
        assert expected.answers.equals(actual.answers)
        assert expected.answers.probability((0,)) == pytest.approx(1.0)


class TestSharingBehaviour:
    def test_fewer_operators_than_basic(self, paper_example, evaluator):
        basic = BasicEvaluator(links=paper_example.links)
        query = paper_example.q2()
        shared = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
        unshared = basic.evaluate(query, paper_example.mappings, paper_example.database)
        assert shared.stats.source_operators < unshared.stats.source_operators

    def test_utrace_counters_reported(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q2(), paper_example.mappings, paper_example.database
        )
        assert result.details["units_created"] >= 2
        assert result.details["max_depth"] >= 1
        assert result.details["strategy"] == "sef"
        assert result.details["representative_mappings"] >= 1

    def test_empty_intermediate_prunes_subtree(self, paper_example, evaluator):
        # q2's σ addr='hk' over oaddr (m1, m2) yields an empty relation, so the
        # corresponding branch of the u-trace is pruned (Figure 6(a)).
        result = evaluator.evaluate(
            paper_example.q2(), paper_example.mappings, paper_example.database
        )
        assert result.details["units_pruned_empty"] >= 1
        assert result.answers.empty_probability == pytest.approx(0.5)

    def test_unmatched_operator_attribute_becomes_null_answer(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q1(), paper_example.mappings, paper_example.database
        )
        assert result.answers.empty_probability == pytest.approx(1.0)

    def test_partially_matched_mappings_do_not_null_out_matched_ones(self, paper_example):
        """Regression: a mapping that cannot answer the query must not drag
        fully-matched mappings of the same source-relation cover into the null
        answer when a binary operator over a referenced scan is executed."""
        from repro.core.target_query import TargetQuery
        from repro.matching.mappings import Mapping, MappingSet
        from repro.relational.algebra import Product, Scan, Select
        from repro.relational.expressions import col
        from repro.relational.predicates import Equals

        plan = Select(
            Product(Scan("Person"), Scan("Order")), Equals(col("Person.phone"), "123")
        )
        query = TargetQuery(plan, paper_example.target_schema, name="regression")
        # Both mappings cover Person with Customer, but only the second one
        # matches the referenced phone attribute.  The unmatched mapping comes
        # first so that a cover-based grouping would pick it as representative.
        missing_phone = Mapping(
            mapping_id=91,
            correspondences={"Person.addr": "Customer.haddr", "Order.total": "C_Order.amount"},
            score=1.0,
            probability=0.5,
        )
        matched = Mapping(
            mapping_id=92,
            correspondences={"Person.phone": "Customer.ophone", "Order.total": "C_Order.amount"},
            score=1.0,
            probability=0.5,
        )
        mappings = MappingSet([missing_phone, matched])
        basic = BasicEvaluator(links=paper_example.links)
        sharing = OSharingEvaluator(links=paper_example.links)
        expected = basic.evaluate(query, mappings, paper_example.database)
        actual = sharing.evaluate(query, mappings, paper_example.database)
        assert expected.answers.probability(("123",)) == pytest.approx(0.5)
        assert expected.answers.equals(actual.answers), expected.answers.difference(
            actual.answers
        )

    def test_scenario_query_matches_basic(self, excel_scenario):
        from repro.workloads import paper_query

        query = paper_query("Q5", excel_scenario.target_schema)
        basic = BasicEvaluator(links=excel_scenario.links)
        sharing = OSharingEvaluator(links=excel_scenario.links)
        expected = basic.evaluate(query, excel_scenario.mappings, excel_scenario.database)
        actual = sharing.evaluate(query, excel_scenario.mappings, excel_scenario.database)
        assert expected.answers.equals(actual.answers)

    def test_invalid_strategy_rejected(self, paper_example):
        with pytest.raises(KeyError):
            OSharingEvaluator(links=paper_example.links, strategy="optimal")
