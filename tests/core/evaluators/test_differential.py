"""Cross-evaluator × cross-engine × cross-optimizer differential harness.

Randomized scenarios (hypothesis-driven) assert the reproduction's central
invariant from three directions at once:

* **algorithm equivalence** — every registered evaluator (basic, e-basic,
  e-MQO, q-sharing, o-sharing, batch) returns the same answer → probability
  map as the reference ``basic`` evaluator, within the probability tolerance
  (different algorithms may accumulate the same probabilities in different
  orders);
* **engine equivalence** — for each evaluator, the columnar and parallel
  engines return *byte-identical* answers to the row engine (exact float
  equality: the engines execute the same operators over the same tuples in
  the same order, the parallel engine by reassembling morsel results in
  span order); the parallel engine is additionally swept across shard
  counts and sharding thresholds with forced (zero-threshold) sharding;
* **optimizer equivalence** — for each evaluator × engine combination, the
  cost-based optimizer (``optimize=True``, the default) returns byte-identical
  answers to executing the reformulated plans verbatim (``optimize=False``):
  the optimizer changes how many operators run, never what they produce.

The sampled space covers all three target schemas, the Table III paper
queries, generated selection chains and product queries, and varying mapping
counts.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import evaluate
from repro.core.evaluators import EVALUATORS
from repro.datagen.scenario import MatchingScenario, build_scenario
from repro.relational.executor import available_engines

# The engines axis adapts to the install: without NumPy the vector
# engine cannot be constructed, and the remaining engines must still
# agree byte-identically.
ENGINES = available_engines()
from repro.workloads import paper_query, product_query, selection_query
from repro.workloads.queries import queries_for_target

ALL_EVALUATORS = tuple(EVALUATORS)

#: Query ids defined per target schema (Table III).
_QUERY_IDS = {
    target: [spec.query_id for spec in queries_for_target(target)]
    for target in ("Excel", "Noris", "Paragon")
}

_SCENARIOS: dict[str, MatchingScenario] = {}


def _scenario(target: str) -> MatchingScenario:
    """Session-cached scenarios (building one is the expensive part)."""
    if target not in _SCENARIOS:
        _SCENARIOS[target] = build_scenario(target=target, h=16, scale=0.01, seed=3)
    return _SCENARIOS[target]


@st.composite
def differential_cases(draw):
    """One randomized (query, scenario, mapping-count) differential case."""
    kind = draw(st.sampled_from(("paper", "paper", "selection", "product")))
    if kind == "paper":
        target = draw(st.sampled_from(("Excel", "Noris", "Paragon")))
        scenario = _scenario(target)
        query_id = draw(st.sampled_from(_QUERY_IDS[target]))
        query = paper_query(query_id, scenario.target_schema)
        h = draw(st.sampled_from((4, 9, 16)))
        label = f"{target}:{query_id}"
    elif kind == "selection":
        scenario = _scenario("Excel")
        count = draw(st.integers(min_value=1, max_value=5))
        query = selection_query(count, scenario.target_schema)
        h = draw(st.sampled_from((4, 9, 16)))
        label = f"Excel:selections={count}"
    else:
        # Product queries blow up the basic evaluator's work; keep h small.
        scenario = _scenario("Excel")
        products = draw(st.integers(min_value=1, max_value=2))
        query = product_query(products, scenario.target_schema)
        h = draw(st.sampled_from((4, 6)))
        label = f"Excel:products={products}"
    return label, query, scenario.with_mappings(h)


def _answer_map(result):
    return dict(result.answers.items())


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(case=differential_cases())
def test_all_evaluators_engines_and_optimizer_agree(case):
    label, query, scenario = case
    reference = evaluate(
        query,
        scenario.mappings,
        scenario.database,
        method="basic",
        links=scenario.links,
        engine="row",
        optimize=False,
    )
    for method in ALL_EVALUATORS:
        variants = {}
        for engine in ENGINES:
            for optimize in (True, False):
                result = evaluate(
                    query,
                    scenario.mappings,
                    scenario.database,
                    method=method,
                    links=scenario.links,
                    engine=engine,
                    optimize=optimize,
                )
                variants[(engine, optimize)] = result
                problems = reference.answers.difference(result.answers)
                assert reference.answers.equals(result.answers), (
                    f"[{label}] {method}@{engine}(optimize={optimize}) diverges "
                    f"from basic@row(optimize=False): {problems}"
                )
        # Every engine × optimizer combination must agree *exactly* with the
        # plain row engine, not just within tolerance.
        baseline = variants[("row", False)]
        for (engine, optimize), result in variants.items():
            assert _answer_map(result) == _answer_map(baseline), (
                f"[{label}] {method}: {engine}(optimize={optimize}) differs "
                f"from row(optimize=False)"
            )
            assert (
                result.answers.empty_probability == baseline.answers.empty_probability
            ), (
                f"[{label}] {method}: {engine}(optimize={optimize}) disagrees "
                f"on the empty-answer mass"
            )


@pytest.mark.parametrize("method", ALL_EVALUATORS)
def test_engines_report_identical_stats(method, paper_example):
    """Same operators, same row counters, on every engine (deterministic pin)."""
    query = paper_example.q2()
    per_engine = {}
    for engine in ENGINES:
        per_engine[engine] = evaluate(
            query,
            paper_example.mappings,
            paper_example.database,
            method=method,
            links=paper_example.links,
            engine=engine,
        )
    row = per_engine["row"].stats
    for engine in ENGINES[1:]:
        other = per_engine[engine].stats
        assert dict(row.operators) == dict(other.operators), engine
        assert row.source_operators == other.source_operators, engine
        assert row.source_queries == other.source_queries, engine
        assert row.rows_scanned == other.rows_scanned, engine
        assert row.rows_output == other.rows_output, engine
        assert _answer_map(per_engine["row"]) == _answer_map(per_engine[engine])


@pytest.mark.parametrize("method", ALL_EVALUATORS)
@pytest.mark.parametrize("workers", (2, 4))
def test_parallel_engine_byte_identical_across_shard_counts(method, workers):
    """Forced sharding (every operator morsel-parallel) never changes answers.

    ``min_partition_rows=0`` makes every operator shard to the worker count
    regardless of input size, so this exercises the parallel kernels on every
    node of every source plan — the differential pin the parallel engine's
    per-node fallback cannot mask.
    """
    from repro.relational.parallel import ParallelConfig

    scenario = _scenario("Excel")
    query = paper_query(_QUERY_IDS["Excel"][0], scenario.target_schema)
    reference = evaluate(
        query,
        scenario.mappings,
        scenario.database,
        method=method,
        links=scenario.links,
        engine="columnar",
    )
    result = evaluate(
        query,
        scenario.mappings,
        scenario.database,
        method=method,
        links=scenario.links,
        engine="parallel",
        parallel=ParallelConfig(workers=workers, min_partition_rows=0),
    )
    assert _answer_map(result) == _answer_map(reference)
    assert result.answers.empty_probability == reference.answers.empty_probability
    assert dict(result.stats.operators) == dict(reference.stats.operators)
    assert result.stats.rows_scanned == reference.stats.rows_scanned


def test_parallel_batch_workload_matches_serial():
    """Inter-query parallelism: same answers, same workload-total work."""
    from repro.relational.parallel import ParallelConfig

    scenario = _scenario("Excel")
    queries = [
        paper_query(query_id, scenario.target_schema)
        for query_id in (_QUERY_IDS["Excel"] + _QUERY_IDS["Excel"])[:6]
    ]
    from repro.core import evaluate_many

    serial = evaluate_many(
        queries, scenario.mappings, scenario.database, links=scenario.links
    )
    concurrent = evaluate_many(
        queries,
        scenario.mappings,
        scenario.database,
        links=scenario.links,
        engine="parallel",
        parallel=ParallelConfig(workers=4, min_partition_rows=0),
    )
    assert concurrent.details["query_workers"] == 4
    for serial_result, parallel_result in zip(serial.results, concurrent.results):
        assert _answer_map(parallel_result) == _answer_map(serial_result)
        assert (
            parallel_result.answers.empty_probability
            == serial_result.answers.empty_probability
        )
    # Shared materializations are computed exactly once: the workload-total
    # operator count matches the serial batch run (only the per-query
    # attribution of cache hits may vary with scheduling).
    assert concurrent.stats.source_operators == serial.stats.source_operators
    assert concurrent.stats.source_queries == serial.stats.source_queries


@pytest.mark.parametrize("method", ALL_EVALUATORS)
def test_engine_recorded_in_result_details(method, paper_example):
    result = evaluate(
        paper_example.q0(),
        paper_example.mappings,
        paper_example.database,
        method=method,
        links=paper_example.links,
    )
    assert result.details["engine"] == "columnar"


def test_unknown_engine_rejected(paper_example):
    with pytest.raises(ValueError, match="unknown engine"):
        evaluate(
            paper_example.q0(),
            paper_example.mappings,
            paper_example.database,
            method="basic",
            links=paper_example.links,
            engine="vectorised",
        )


@pytest.mark.parametrize("method", ALL_EVALUATORS)
def test_optimize_flag_reported_in_details(method, paper_example):
    on = evaluate(
        paper_example.q0(),
        paper_example.mappings,
        paper_example.database,
        method=method,
        links=paper_example.links,
    )
    off = evaluate(
        paper_example.q0(),
        paper_example.mappings,
        paper_example.database,
        method=method,
        links=paper_example.links,
        optimize=False,
    )
    assert on.details["optimize"] is True
    assert off.details["optimize"] is False
    if method != "batch":  # batch optimizes in its workload-level planning phase
        assert on.stats.plans_optimized > 0
    assert off.stats.plans_optimized == 0


def test_batch_workload_stats_count_optimizations(paper_example):
    from repro.core import evaluate_many

    batch = evaluate_many(
        [paper_example.q0(), paper_example.q2()],
        paper_example.mappings,
        paper_example.database,
        links=paper_example.links,
    )
    assert batch.stats.plans_optimized > 0
    off = evaluate_many(
        [paper_example.q0(), paper_example.q2()],
        paper_example.mappings,
        paper_example.database,
        links=paper_example.links,
        optimize=False,
    )
    assert off.stats.plans_optimized == 0
    assert dict(batch.results[0].answers.items()) == dict(off.results[0].answers.items())
    assert dict(batch.results[1].answers.items()) == dict(off.results[1].answers.items())


# --------------------------------------------------------------------------- #
# session parity: warm Session == cold one-shot, for all evaluators × engines
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("method", ALL_EVALUATORS)
@pytest.mark.parametrize("engine", ENGINES)
def test_warm_session_matches_cold_one_shot(method, engine, paper_example):
    """Byte-identical answers on warm session state, every evaluator × engine.

    The session serves the *second* round of queries from its persistent
    plan cache / optimizer memo — sharing must change how much work runs,
    never what it produces.  Cold rounds go through the deprecated one-shot
    shims, which doubles as their regression pin.
    """
    from repro import ExecutionPolicy, Session
    from repro.core import evaluate_many

    queries = [paper_example.q0(), paper_example.q2()]
    workload = queries * 2
    cold = [
        evaluate(
            query,
            paper_example.mappings,
            paper_example.database,
            method=method,
            links=paper_example.links,
            engine=engine,
        )
        for query in queries
    ]
    cold_batch = evaluate_many(
        workload,
        paper_example.mappings,
        paper_example.database,
        links=paper_example.links,
        engine=engine,
    )
    policy = ExecutionPolicy(method=method, engine=engine)
    with Session(
        paper_example.database,
        paper_example.mappings,
        links=paper_example.links,
        policy=policy,
    ) as session:
        warm_first = [session.query(query) for query in queries]
        warm_second = [session.query(query) for query in queries]
        warm_batch_first = session.query_many(workload)
        warm_batch_second = session.query_many(workload)

    for one, first, second in zip(cold, warm_first, warm_second):
        assert _answer_map(one) == _answer_map(first) == _answer_map(second), (
            f"{method}@{engine}: warm session diverges from cold evaluate"
        )
        assert (
            one.answers.empty_probability
            == first.answers.empty_probability
            == second.answers.empty_probability
        )
    for one, first, second in zip(
        cold_batch.results, warm_batch_first.results, warm_batch_second.results
    ):
        assert _answer_map(one) == _answer_map(first) == _answer_map(second), (
            f"{method}@{engine}: warm query_many diverges from cold evaluate_many"
        )


# --------------------------------------------------------------------------- #
# instrumentation parity: trace on/off × metrics on/off changes nothing
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("method", ALL_EVALUATORS)
@pytest.mark.parametrize("engine", ENGINES)
def test_instrumentation_never_changes_answers_or_operators(
    method, engine, paper_example
):
    """The observability pinned invariant, differentially (ARCHITECTURE.md).

    The same two-query workload runs through four sessions covering the full
    trace on/off × metrics on/off grid; answers (byte-identical floats, not
    tolerance-equal), empty-answer mass, operator counts and row counters
    must all match the uninstrumented session exactly — instrumentation only
    observes, it never changes what executes.
    """
    from repro import ExecutionPolicy, Session

    queries = [paper_example.q0(), paper_example.q2()]
    runs = {}
    for trace in (False, True):
        for metrics in (False, True):
            policy = ExecutionPolicy(
                method=method, engine=engine, trace=trace, metrics=metrics
            )
            with Session(
                paper_example.database,
                paper_example.mappings,
                links=paper_example.links,
                policy=policy,
            ) as session:
                results = [session.query(query) for query in queries]
                batch = session.query_many(queries)
            runs[(trace, metrics)] = (results, batch)

    reference_results, reference_batch = runs[(False, False)]
    for (trace, metrics), (results, batch) in runs.items():
        label = f"{method}@{engine} trace={trace} metrics={metrics}"
        for result, reference in zip(results, reference_results):
            assert _answer_map(result) == _answer_map(reference), label
            assert (
                result.answers.empty_probability
                == reference.answers.empty_probability
            ), label
            assert dict(result.stats.operators) == dict(
                reference.stats.operators
            ), label
            assert result.stats.source_operators == reference.stats.source_operators
            assert result.stats.rows_scanned == reference.stats.rows_scanned
            assert result.stats.rows_output == reference.stats.rows_output
        for result, reference in zip(batch.results, reference_batch.results):
            assert _answer_map(result) == _answer_map(reference), label
        assert dict(batch.stats.operators) == dict(
            reference_batch.stats.operators
        ), label
        assert batch.stats.source_operators == reference_batch.stats.source_operators


@pytest.mark.parametrize("engine", ENGINES)
def test_warm_session_top_k_matches_cold_one_shot(engine, paper_example):
    from repro import Session
    from repro.core import evaluate_top_k

    cold = evaluate_top_k(
        paper_example.q2(),
        paper_example.mappings,
        paper_example.database,
        k=3,
        links=paper_example.links,
        engine=engine,
    )
    with Session(
        paper_example.database, paper_example.mappings, links=paper_example.links
    ) as session:
        warm = session.top_k(paper_example.q2(), k=3, engine=engine)
        again = session.top_k(paper_example.q2(), k=3, engine=engine)
    assert _answer_map(cold) == _answer_map(warm) == _answer_map(again)


@pytest.mark.parametrize("method", ALL_EVALUATORS)
def test_warm_session_matches_cold_on_scenario_queries(method):
    """Session parity on the bigger generated scenario (default engine)."""
    from repro import connect

    scenario = _scenario("Excel")
    queries = [
        paper_query(query_id, scenario.target_schema)
        for query_id in _QUERY_IDS["Excel"][:2]
    ]
    cold = [
        evaluate(
            query,
            scenario.mappings,
            scenario.database,
            method=method,
            links=scenario.links,
        )
        for query in queries
    ]
    with connect(scenario, method=method) as session:
        for round_number in range(2):
            for query, reference in zip(queries, cold):
                result = session.query(query)
                assert _answer_map(result) == _answer_map(reference), (
                    f"{method}: session round {round_number} diverges"
                )


@pytest.mark.parametrize("method", ALL_EVALUATORS)
def test_optimizer_never_executes_more(method):
    """Optimized runs execute no more operators and scan no more rows."""
    scenario = _scenario("Excel")
    query = selection_query(3, scenario.target_schema)
    on = evaluate(
        query, scenario.mappings, scenario.database, method=method, links=scenario.links
    )
    off = evaluate(
        query,
        scenario.mappings,
        scenario.database,
        method=method,
        links=scenario.links,
        optimize=False,
    )
    assert _answer_map(on) == _answer_map(off)
    assert on.stats.source_operators <= off.stats.source_operators
    assert on.stats.rows_scanned <= off.stats.rows_scanned
