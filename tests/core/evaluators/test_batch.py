"""Unit and equivalence tests for the batch (workload) evaluator."""

import pytest

from repro.core import evaluate, evaluate_many, make_evaluator
from repro.core.evaluators.batch import BatchEvaluator
from repro.workloads import paper_query


@pytest.fixture(scope="module")
def workload(excel_scenario):
    """A serving-style workload: the Excel queries, each repeated."""
    ids = ["Q1", "Q2", "Q3", "Q1", "Q4", "Q2", "Q5", "Q1"]
    return [paper_query(qid, excel_scenario.target_schema) for qid in ids]


@pytest.fixture(scope="module")
def batch_result(excel_scenario, workload):
    return evaluate_many(
        workload,
        excel_scenario.mappings,
        excel_scenario.database,
        links=excel_scenario.links,
    )


class TestEquivalence:
    @pytest.mark.parametrize("method", ["basic", "e-basic", "e-mqo"])
    def test_answers_match_per_query_evaluation(
        self, excel_scenario, workload, batch_result, method
    ):
        for query, result in zip(workload, batch_result.results):
            reference = evaluate(
                query,
                excel_scenario.mappings,
                excel_scenario.database,
                method=method,
                links=excel_scenario.links,
            )
            assert reference.answers.equals(result.answers), (
                f"{method} disagrees on {query.name}: "
                f"{reference.answers.difference(result.answers)}"
            )

    def test_single_query_entry_point(self, excel_scenario):
        query = paper_query("Q2", excel_scenario.target_schema)
        evaluator = BatchEvaluator(links=excel_scenario.links)
        result = evaluator.evaluate(
            query, excel_scenario.mappings, excel_scenario.database
        )
        reference = evaluate(
            query,
            excel_scenario.mappings,
            excel_scenario.database,
            method="e-basic",
            links=excel_scenario.links,
        )
        assert reference.answers.equals(result.answers)

    def test_registered_in_evaluator_registry(self, excel_scenario):
        evaluator = make_evaluator("batch", links=excel_scenario.links)
        assert isinstance(evaluator, BatchEvaluator)


class TestSharing:
    def test_fewer_operators_than_independent_emqo(
        self, excel_scenario, workload, batch_result
    ):
        independent = sum(
            evaluate(
                query,
                excel_scenario.mappings,
                excel_scenario.database,
                method="e-mqo",
                links=excel_scenario.links,
            ).stats.source_operators
            for query in workload
        )
        assert batch_result.source_operators < independent

    def test_repeated_queries_are_full_cache_hits(self, batch_result):
        # Q1 appears three times; the repeats execute zero operators.
        q1_results = [r for r in batch_result.results if r.query.name == "Q1"]
        assert len(q1_results) == 3
        assert q1_results[1].stats.source_operators == 0
        assert q1_results[2].stats.source_operators == 0
        assert q1_results[1].stats.plan_cache_hits > 0

    def test_reformulation_amortised_across_repeats(
        self, excel_scenario, workload, batch_result
    ):
        # Eight workload queries but only five distinct: clustering runs five
        # times, so total reformulations are 5*h rather than 8*h.
        assert batch_result.details["distinct_target_queries"] == 5
        assert batch_result.stats.reformulations == 5 * excel_scenario.h

    def test_cache_statistics_reported(self, batch_result):
        assert batch_result.plan_cache["hits"] > 0
        assert batch_result.stats.plan_cache_hits == batch_result.plan_cache["hits"]
        assert batch_result.stats.operators_saved > 0
        summary = batch_result.summary()
        assert summary["queries"] == 8
        assert summary["plan_cache_hits"] == batch_result.plan_cache["hits"]

    def test_exhaustive_planning_selects_same_sharing(self, excel_scenario, workload):
        exhaustive = evaluate_many(
            workload,
            excel_scenario.mappings,
            excel_scenario.database,
            links=excel_scenario.links,
            exhaustive_planning=True,
        )
        fast = evaluate_many(
            workload,
            excel_scenario.mappings,
            excel_scenario.database,
            links=excel_scenario.links,
        )
        assert exhaustive.source_operators == fast.source_operators
        assert (
            exhaustive.details["shared_subexpressions"]
            == fast.details["shared_subexpressions"]
        )
        assert exhaustive.details["plan_comparisons"] > 0
        assert fast.details["plan_comparisons"] == 0


class TestInvalidation:
    def test_cache_detached_after_evaluate_many(self, excel_scenario, workload):
        database = excel_scenario.database
        before = len(database.index_catalog._listeners)
        evaluate_many(
            workload,
            excel_scenario.mappings,
            database,
            links=excel_scenario.links,
        )
        assert len(database.index_catalog._listeners) == before
