"""Writes-axis differential harness: warm sessions must survive writes.

The delta-maintenance machinery (plan-cache patching, index patching,
incremental statistics, shard-cache extension) may change how much work a
warm session does after a write — never what it answers.  For every
registered evaluator × engine, a session is kept warm across an interleaved
schedule of appends, updates, deletes and one wholesale ``set_relation``,
and after every write each probe query's warm answer is compared
*byte-identically* (exact float equality, exact empty-answer mass) against
a cold one-shot evaluation over a fresh database with the same writes
replayed — the full-recompute reference the delta path must match.
"""

from __future__ import annotations

import pytest

from repro import ExecutionPolicy, Session
from repro.core import evaluate
from repro.core.evaluators import EVALUATORS
from repro.datagen.paper_example import build_paper_example
from repro.relational.executor import available_engines

ENGINES = available_engines()  # vector drops out on NumPy-less installs
from repro.relational.relation import Relation

ALL_EVALUATORS = tuple(EVALUATORS)

#: The interleaved write schedule.  Steps touch Customer (the relation every
#: mapping reads), C_Order (read only via Order queries) and Nation (written
#: wholesale, exercising the invalidation path next to the delta path).
#: Customer columns: (cid, cname, ophone, hphone, mobile, oaddr, haddr, nid).
WRITE_SCHEDULE = [
    ("append_rows", "Customer", ([(4, "Dave", "123", "444", "558", "ddd", "hk", 2)],)),
    ("append_rows", "C_Order", ([(12, 3, 42.0), (13, 4, 7.5)],)),
    (
        "update_rows",
        "Customer",
        ([1], [(2, "Bob", "123", "456", "556", "aaa", "bbb", 2)]),
    ),
    ("delete_rows", "Customer", ([0],)),
    ("append_rows", "Customer", ([(5, "Erin", "123", "789", "559", "eee", "aaa", 1)],)),
    ("set_relation", "Nation", ([(1, "China"), (2, "Japan"), (3, "Korea")],)),
]


def _apply(database, step) -> None:
    op, name, args = step
    if op == "set_relation":
        schema = database.schema.relation(name)
        database.set_relation(name, Relation.from_schema(schema, args[0]))
    else:
        getattr(database, op)(name, *args)


def _replayed_example(steps: int):
    """A fresh paper example with the first ``steps`` writes replayed."""
    example = build_paper_example()
    for step in WRITE_SCHEDULE[:steps]:
        _apply(example.database, step)
    return example


def _answer_map(result):
    return dict(result.answers.items())


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("method", ALL_EVALUATORS)
def test_warm_session_survives_interleaved_writes(method, engine):
    """After every write, warm answers == cold full recompute, byte for byte."""
    example = build_paper_example()
    policy = ExecutionPolicy(method=method, engine=engine)
    with Session(
        example.database, example.mappings, links=example.links, policy=policy
    ) as session:
        for steps in range(len(WRITE_SCHEDULE) + 1):
            if steps:
                _apply(session.database, WRITE_SCHEDULE[steps - 1])
            cold_example = _replayed_example(steps)
            for build in (cold_example.q0, cold_example.q2):
                query = build()
                cold = evaluate(
                    query,
                    cold_example.mappings,
                    cold_example.database,
                    method=method,
                    links=cold_example.links,
                    engine=engine,
                )
                warm = session.query(query)
                again = session.query(query)  # serve from whatever stayed warm
                label = f"{method}@{engine} after {steps} writes ({query.name})"
                assert _answer_map(warm) == _answer_map(cold), label
                assert _answer_map(again) == _answer_map(cold), f"{label} (rewarmed)"
                assert (
                    warm.answers.empty_probability
                    == again.answers.empty_probability
                    == cold.answers.empty_probability
                ), label


def test_delta_patched_session_executes_fewer_operators_than_cold():
    """The point of the machinery: appends keep the session warm.

    A warm session absorbing K appends must execute strictly fewer source
    operators than K+1 cold evaluations of the same probe query — the
    monotone entries are patched, not re-executed.  (Deterministic operator
    counts, not wall clock: this must hold on a one-core CI runner.)
    """
    appends = [
        ("append_rows", "Customer", ([(10 + i, f"W{i}", "123", "444", "555",
                                       f"w{i}", "hk", 1)],))
        for i in range(4)
    ]
    example = build_paper_example()
    policy = ExecutionPolicy(method="e-mqo")  # the plan-cache-backed evaluator
    with Session(
        example.database, example.mappings, links=example.links, policy=policy
    ) as session:
        session.query(example.q0())  # warm up
        warmed = session.stats.totals.source_operators
        for step in appends:
            _apply(session.database, step)
            session.query(example.q0())
        warm_cost = session.stats.totals.source_operators - warmed
        assert session.stats.entries_patched > 0

    cold_costs = 0
    replayed = build_paper_example()
    cold = evaluate(
        replayed.q0(), replayed.mappings, replayed.database,
        method="e-mqo", links=replayed.links,
    )
    cold_costs += cold.stats.source_operators
    for step in appends:
        _apply(replayed.database, step)
        cold = evaluate(
            replayed.q0(), replayed.mappings, replayed.database,
            method="e-mqo", links=replayed.links,
        )
        cold_costs += cold.stats.source_operators
    assert warm_cost < cold_costs
