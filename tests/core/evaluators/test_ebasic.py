"""Unit tests for the e-basic evaluator."""

import pytest

from repro.core.evaluators.basic import BasicEvaluator
from repro.core.evaluators.ebasic import EBasicEvaluator, cluster_source_queries
from repro.relational.stats import ExecutionStats


@pytest.fixture()
def evaluator(paper_example):
    return EBasicEvaluator(links=paper_example.links)


class TestClustering:
    def test_identical_source_queries_are_grouped(self, paper_example):
        stats = ExecutionStats()
        distinct, unmatched = cluster_source_queries(
            paper_example.q0(), paper_example.mappings, paper_example.links, stats
        )
        # m1/m2/m3/m5 differ on addr between oaddr/haddr: m1,m2 share one source
        # query; m3,m5 share another; m4 is alone -> 3 distinct queries.
        assert len(distinct) == 3
        assert unmatched == 0.0
        assert stats.reformulations == 5
        probabilities = sorted(round(entry.probability, 6) for entry in distinct)
        assert probabilities == [0.2, 0.3, 0.5]

    def test_unmatched_mappings_reported(self, paper_example):
        stats = ExecutionStats()
        distinct, unmatched = cluster_source_queries(
            paper_example.q1(), paper_example.mappings, paper_example.links, stats
        )
        assert unmatched == pytest.approx(0.1)
        assert len(distinct) == 2

    def test_mapping_counts_tracked(self, paper_example):
        stats = ExecutionStats()
        distinct, _ = cluster_source_queries(
            paper_example.q0(), paper_example.mappings, paper_example.links, stats
        )
        assert sorted(entry.mapping_count for entry in distinct) == [1, 2, 2]


class TestEvaluation:
    def test_matches_basic_answers(self, paper_example, evaluator):
        basic = BasicEvaluator(links=paper_example.links)
        for query in (paper_example.q0(), paper_example.q_phone_by_addr(), paper_example.q2()):
            expected = basic.evaluate(query, paper_example.mappings, paper_example.database)
            actual = evaluator.evaluate(query, paper_example.mappings, paper_example.database)
            assert expected.answers.equals(actual.answers), expected.answers.difference(
                actual.answers
            )

    def test_executes_fewer_source_queries_than_basic(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q0(), paper_example.mappings, paper_example.database
        )
        assert result.stats.source_queries == 3
        assert result.details["distinct_source_queries"] == 3

    def test_rewriting_effort_unchanged(self, paper_example, evaluator):
        # e-basic still reformulates every mapping (its known weakness).
        result = evaluator.evaluate(
            paper_example.q0(), paper_example.mappings, paper_example.database
        )
        assert result.stats.reformulations == 5

    def test_null_probability_accounted(self, paper_example, evaluator):
        result = evaluator.evaluate(
            paper_example.q1(), paper_example.mappings, paper_example.database
        )
        assert result.answers.empty_probability == pytest.approx(1.0)
