"""Cross-evaluator equivalence: every algorithm must return the same answers.

This is the central correctness property of the paper — q-sharing, o-sharing
and the MQO variants are pure optimisations of *basic*.  The tests run all
evaluators on the paper's running example and on small versions of the
Table III workload and compare the probabilistic answers exactly.
"""

import pytest

from repro.core import evaluate
from repro.core.evaluators import EVALUATORS
from repro.workloads import paper_query, product_query, selection_query

ALL_METHODS = list(EVALUATORS)
SHARING_METHODS = ["e-basic", "q-sharing", "o-sharing"]


def assert_all_equal(query, mappings, database, links, methods=ALL_METHODS):
    reference = evaluate(query, mappings, database, method="basic", links=links)
    # Tuple probabilities are marginals (a mapping may produce several answer
    # tuples), so they need not sum to one — but each must be a probability,
    # and the null-answer mass cannot exceed one.
    assert all(0.0 <= p <= 1.0 + 1e-9 for _, p in reference.answers.items())
    assert 0.0 <= reference.answers.empty_probability <= 1.0 + 1e-9
    for method in methods:
        if method == "basic":
            continue
        result = evaluate(query, mappings, database, method=method, links=links)
        problems = reference.answers.difference(result.answers)
        assert reference.answers.equals(result.answers), f"{method}: {problems}"


class TestPaperExampleEquivalence:
    @pytest.mark.parametrize("query_name", ["q0", "q_phone_by_addr", "q1", "q2"])
    def test_all_evaluators_agree(self, paper_example, query_name):
        query = getattr(paper_example, query_name)()
        assert_all_equal(
            query, paper_example.mappings, paper_example.database, paper_example.links
        )

    def test_subsets_of_mappings_agree(self, paper_example):
        for h in (1, 2, 3):
            subset = paper_example.mappings.subset(h)
            assert_all_equal(
                paper_example.q_phone_by_addr(),
                subset,
                paper_example.database,
                paper_example.links,
            )


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("query_id", ["Q1", "Q2", "Q3", "Q4", "Q5"])
    def test_excel_queries(self, excel_scenario, query_id):
        query = paper_query(query_id, excel_scenario.target_schema)
        assert_all_equal(
            query,
            excel_scenario.mappings,
            excel_scenario.database,
            excel_scenario.links,
        )

    @pytest.mark.parametrize("query_id", ["Q6", "Q7"])
    def test_noris_queries(self, noris_scenario, query_id):
        query = paper_query(query_id, noris_scenario.target_schema)
        assert_all_equal(
            query,
            noris_scenario.mappings,
            noris_scenario.database,
            noris_scenario.links,
        )

    @pytest.mark.parametrize("query_id", ["Q8", "Q9", "Q10"])
    def test_paragon_queries(self, paragon_scenario, query_id):
        query = paper_query(query_id, paragon_scenario.target_schema)
        assert_all_equal(
            query,
            paragon_scenario.mappings,
            paragon_scenario.database,
            paragon_scenario.links,
        )

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5])
    def test_selection_workload(self, excel_scenario, count):
        query = selection_query(count, excel_scenario.target_schema)
        assert_all_equal(
            query,
            excel_scenario.mappings,
            excel_scenario.database,
            excel_scenario.links,
            methods=SHARING_METHODS,
        )

    @pytest.mark.parametrize("products", [1, 2])
    def test_product_workload(self, excel_scenario, products):
        query = product_query(products, excel_scenario.target_schema)
        assert_all_equal(
            query,
            excel_scenario.mappings.subset(8),
            excel_scenario.database,
            excel_scenario.links,
            methods=SHARING_METHODS,
        )

    @pytest.mark.parametrize("strategy", ["random", "snf", "sef"])
    def test_osharing_strategies_agree_on_workload(self, excel_scenario, strategy):
        query = paper_query("Q5", excel_scenario.target_schema)
        reference = evaluate(
            query,
            excel_scenario.mappings,
            excel_scenario.database,
            method="e-basic",
            links=excel_scenario.links,
        )
        result = evaluate(
            query,
            excel_scenario.mappings,
            excel_scenario.database,
            method="o-sharing",
            links=excel_scenario.links,
            strategy=strategy,
            seed=7,
        )
        assert reference.answers.equals(result.answers)


class TestProbabilityConservation:
    @pytest.mark.parametrize("query_id", ["Q5", "Q10"])
    def test_aggregate_queries_conserve_probability(self, scenarios, query_id):
        # An aggregate query yields exactly one answer tuple per mapping, so
        # the tuple probabilities plus the null-answer mass must sum to one.
        from repro.workloads.queries import PAPER_QUERIES

        spec = PAPER_QUERIES[query_id]
        scenario = scenarios[spec.target]
        query = spec.build(scenario.target_schema)
        for method in ALL_METHODS:
            result = evaluate(
                query,
                scenario.mappings,
                scenario.database,
                method=method,
                links=scenario.links,
            )
            assert result.answers.total_probability == pytest.approx(1.0)

    @pytest.mark.parametrize("query_id", ["Q1", "Q4"])
    def test_probabilities_are_well_formed(self, excel_scenario, query_id):
        query = paper_query(query_id, excel_scenario.target_schema)
        result = evaluate(
            query,
            excel_scenario.mappings,
            excel_scenario.database,
            method="o-sharing",
            links=excel_scenario.links,
        )
        assert all(0.0 < p <= 1.0 + 1e-9 for _, p in result.answers.items())
        assert 0.0 <= result.answers.empty_probability <= 1.0 + 1e-9
