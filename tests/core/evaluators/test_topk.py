"""Unit tests for the probabilistic top-k evaluator (Algorithm 4)."""

import pytest

from repro.core.evaluators.osharing import OSharingEvaluator
from repro.core.evaluators.topk import TopKEvaluator, _TopKState
from repro.workloads import paper_query


def exact_top_k(paper_example, query, k):
    """Reference top-k computed from the exact o-sharing answer."""
    exact = OSharingEvaluator(links=paper_example.links).evaluate(
        query, paper_example.mappings, paper_example.database
    )
    return exact.answers.top_k(k)


class TestTopKState:
    def test_decide_inserts_and_updates_bounds(self):
        state = _TopKState(k=1, ub=1.0)
        done = state.decide(0.5, [])
        assert not done
        assert state.UB == pytest.approx(0.5)
        done = state.decide(0.2, [("a",)])
        assert state.entries[("a",)].lb == pytest.approx(0.2)
        assert state.entries[("a",)].ub == pytest.approx(0.5)
        assert not done
        done = state.decide(0.2, [("a",), ("b",), ("c",)])
        # The paper's Table II walk-through: after the third unit the top-1
        # answer is decided without visiting the last e-unit.
        assert state.entries[("a",)].lb == pytest.approx(0.4)
        assert done

    def test_new_tuples_rejected_once_ub_below_lb(self):
        state = _TopKState(k=1, ub=1.0)
        state.decide(0.8, [("winner",)])
        state.decide(0.1, [("late",)])
        # 'late' cannot beat 'winner' (UB was 0.2 < LB 0.8): not inserted.
        assert ("late",) not in state.entries

    def test_ranked_orders_by_lower_bound(self):
        state = _TopKState(k=2, ub=1.0)
        state.decide(0.3, [("a",)])
        state.decide(0.5, [("b",)])
        assert [entry.values for entry in state.ranked()] == [("b",), ("a",)]
        assert [entry.values for entry in state.top_k()] == [("b",), ("a",)]


class TestTopKEvaluator:
    def test_k_must_be_positive(self, paper_example):
        with pytest.raises(ValueError):
            TopKEvaluator(k=0, links=paper_example.links)

    def test_top1_matches_exact_ranking(self, paper_example):
        query = paper_example.q_phone_by_addr()
        result = TopKEvaluator(k=1, links=paper_example.links).evaluate(
            query, paper_example.mappings, paper_example.database
        )
        expected = exact_top_k(paper_example, query, 1)
        assert result.answers.tuples == [expected[0].values]
        assert result.answers.tuples == [("456",)]

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_topk_set_matches_exact_answers(self, paper_example, k):
        query = paper_example.q_phone_by_addr()
        result = TopKEvaluator(k=k, links=paper_example.links).evaluate(
            query, paper_example.mappings, paper_example.database
        )
        expected = {answer.values for answer in exact_top_k(paper_example, query, k)}
        assert set(result.answers.tuples) == expected

    def test_lower_bounds_never_exceed_exact_probability(self, paper_example):
        query = paper_example.q_phone_by_addr()
        exact = OSharingEvaluator(links=paper_example.links).evaluate(
            query, paper_example.mappings, paper_example.database
        )
        result = TopKEvaluator(k=3, links=paper_example.links).evaluate(
            query, paper_example.mappings, paper_example.database
        )
        for values, lower_bound in result.answers.items():
            assert lower_bound <= exact.answers.probability(values) + 1e-9

    def test_details_reported(self, paper_example):
        query = paper_example.q_phone_by_addr()
        result = TopKEvaluator(k=2, links=paper_example.links).evaluate(
            query, paper_example.mappings, paper_example.database
        )
        assert result.details["k"] == 2
        assert "stopped_early" in result.details
        assert result.details["candidate_tuples"] >= 2

    def test_small_k_explores_no_more_than_exact(self, paper_example):
        query = paper_example.q_phone_by_addr()
        exact = OSharingEvaluator(links=paper_example.links).evaluate(
            query, paper_example.mappings, paper_example.database
        )
        topk = TopKEvaluator(k=1, links=paper_example.links).evaluate(
            query, paper_example.mappings, paper_example.database
        )
        assert topk.stats.source_operators <= exact.stats.source_operators

    def test_scenario_topk_agrees_with_exact(self, excel_scenario):
        query = paper_query("Q4", excel_scenario.target_schema)
        exact = OSharingEvaluator(links=excel_scenario.links).evaluate(
            query, excel_scenario.mappings, excel_scenario.database
        )
        k = 3
        result = TopKEvaluator(k=k, links=excel_scenario.links).evaluate(
            query, excel_scenario.mappings, excel_scenario.database
        )
        expected_probabilities = sorted(
            (answer.probability for answer in exact.answers.top_k(k)), reverse=True
        )
        # The returned set may differ on ties, but the k-th probability and the
        # number of answers must agree with the exact ranking.
        assert len(result.answers) == len(exact.answers.top_k(k))
        exact_by_tuple = {a.values: a.probability for a in exact.answers.ranked()}
        for values, lower_bound in result.answers.items():
            assert values in exact_by_tuple
            assert lower_bound <= exact_by_tuple[values] + 1e-9
        if expected_probabilities:
            threshold = expected_probabilities[-1]
            for values in result.answers.tuples:
                assert exact_by_tuple[values] >= threshold - 1e-9


class TestTopKAgainstFullRanking:
    """Top-k must equal the k best answers of o-sharing's full ranking.

    These run on *generated* workloads (the Excel matching scenario), not the
    hand-sized paper example: the answer sets are larger, the bounds actually
    have to do work, and the prunable cases let us assert that bound pruning
    expands strictly fewer e-units than exact evaluation.
    """

    @pytest.mark.parametrize("query_id", ["Q1", "Q2", "Q3", "Q4"])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_topk_equals_head_of_full_ranking(self, excel_scenario, query_id, k):
        query = paper_query(query_id, excel_scenario.target_schema)
        exact = OSharingEvaluator(links=excel_scenario.links).evaluate(
            query, excel_scenario.mappings, excel_scenario.database
        )
        result = TopKEvaluator(k=k, links=excel_scenario.links).evaluate(
            query, excel_scenario.mappings, excel_scenario.database
        )
        ranked = exact.answers.ranked()
        expected = exact.answers.top_k(k)
        assert len(result.answers) == len(expected)
        probabilities = sorted((answer.probability for answer in ranked), reverse=True)
        if len(probabilities) > k and abs(probabilities[k - 1] - probabilities[k]) < 1e-9:
            # A tie at the boundary makes the top-k *set* ambiguous; every
            # returned tuple must still rank at least as high as the k-th.
            exact_by_tuple = {answer.values: answer.probability for answer in ranked}
            for values in result.answers.tuples:
                assert exact_by_tuple[values] >= probabilities[k - 1] - 1e-9
        else:
            assert set(result.answers.tuples) == {answer.values for answer in expected}

    def test_prunable_scenario_expands_strictly_fewer_eunits(self, excel_scenario):
        # Q3 at k=1: the first partitions already decide the winner, so the
        # bound check must cut the traversal short (strictly fewer e-units
        # than o-sharing's exhaustive expansion), not merely tie it.
        query = paper_query("Q3", excel_scenario.target_schema)
        exact = OSharingEvaluator(links=excel_scenario.links).evaluate(
            query, excel_scenario.mappings, excel_scenario.database
        )
        result = TopKEvaluator(k=1, links=excel_scenario.links).evaluate(
            query, excel_scenario.mappings, excel_scenario.database
        )
        assert result.details["stopped_early"]
        assert result.details["units_created"] < exact.details["units_created"]
        assert result.stats.source_operators < exact.stats.source_operators

    @pytest.mark.parametrize("engine", ["row", "columnar"])
    def test_topk_engine_parity(self, excel_scenario, engine):
        # The top-k evaluator is not in the EVALUATORS registry the
        # differential harness sweeps, so pin its engine parity here.
        query = paper_query("Q3", excel_scenario.target_schema)
        reference = TopKEvaluator(k=2, links=excel_scenario.links, engine="row").evaluate(
            query, excel_scenario.mappings, excel_scenario.database
        )
        result = TopKEvaluator(k=2, links=excel_scenario.links, engine=engine).evaluate(
            query, excel_scenario.mappings, excel_scenario.database
        )
        assert dict(result.answers.items()) == dict(reference.answers.items())
        assert result.stats.rows_scanned == reference.stats.rows_scanned
        assert result.stats.rows_output == reference.stats.rows_output


class TestDeterministicTieBreak:
    def test_equal_probability_ties_break_on_canonical_tuple_order(self):
        # Regression: ranked() used to tie-break on str(values), which orders
        # ("b",) and (2,) by their ambiguous string forms.  The canonical
        # key sorts by (type name, str) per element — mixed-type ties get a
        # stable, replayable order (the anytime ranked prefix relies on it).
        state = _TopKState(k=4, ub=1.0)
        state.decide(0.25, [(2,)])
        state.decide(0.25, [("b",)])
        state.decide(0.25, [("a",)])
        state.decide(0.25, [(10,)])
        ranked = [entry.values for entry in state.ranked()]
        # ints (type name "int") before strs (type name "str"); 10 < 2 as text
        assert ranked == [(10,), (2,), ("a",), ("b",)]

    def test_tie_break_is_insertion_order_independent(self):
        orders = [
            [(2,), ("b",), ("a",), (10,)],
            [("a",), (10,), (2,), ("b",)],
            [(10,), ("b",), (2,), ("a",)],
        ]
        rankings = []
        for order in orders:
            state = _TopKState(k=4, ub=1.0)
            for values in order:
                state.decide(0.25, [values])
            rankings.append([entry.values for entry in state.ranked()])
        assert rankings[0] == rankings[1] == rankings[2]

    def test_tie_break_matches_probabilistic_answer_ranking(self):
        from repro.core.answer import ProbabilisticAnswer

        answers = ProbabilisticAnswer()
        state = _TopKState(k=4, ub=1.0)
        for values in [("b", 1), ("a", 2), ("a", 1), ("b", 0)]:
            answers.add(values, 0.25)
            state.decide(0.25, [values])
        assert [entry.values for entry in state.ranked()] == [
            ranked.values for ranked in answers.ranked()
        ]
