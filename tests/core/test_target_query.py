"""Unit tests for TargetQuery."""

import pytest

from repro.core.partition_tree import CoverKey
from repro.core.target_query import TargetQuery, TargetQueryError, target_attribute_names
from repro.relational.algebra import Aggregate, Product, Project, Scan, Select
from repro.relational.expressions import col
from repro.relational.predicates import ColumnEquals, Equals


@pytest.fixture()
def schema(paper_example):
    return paper_example.target_schema


class TestConstruction:
    def test_unknown_relation_rejected(self, schema):
        with pytest.raises(TargetQueryError, match="unknown target relation"):
            TargetQuery(Scan("Nowhere"), schema)

    def test_duplicate_alias_rejected(self, schema):
        plan = Product(Scan("Person"), Scan("Person"))
        with pytest.raises(TargetQueryError, match="duplicate scan alias"):
            TargetQuery(plan, schema)

    def test_self_join_with_aliases_allowed(self, schema):
        plan = Product(Scan("Person", alias="P1"), Scan("Person", alias="P2"))
        query = TargetQuery(plan, schema)
        assert query.aliases == {"P1": "Person", "P2": "Person"}

    def test_requires_at_least_one_scan(self, schema):
        from repro.relational.algebra import Materialized
        from repro.relational.relation import Relation

        with pytest.raises(TargetQueryError, match="at least one"):
            TargetQuery(Materialized(Relation(["x"], [])), schema)

    def test_unqualified_references_resolved(self, schema):
        plan = Select(Scan("Person"), Equals(col("phone"), "123"))
        query = TargetQuery(plan, schema)
        assert query.referenced_attributes[0].qualified == "Person.phone"
        assert query.referenced_attributes[0].alias == "Person"

    def test_unknown_attribute_rejected(self, schema):
        plan = Select(Scan("Person"), Equals(col("salary"), 1))
        with pytest.raises(TargetQueryError, match="does not match any"):
            TargetQuery(plan, schema)

    def test_unknown_alias_qualifier_rejected(self, schema):
        plan = Select(Scan("Person"), Equals(col("X.phone"), "1"))
        with pytest.raises(TargetQueryError, match="unknown alias"):
            TargetQuery(plan, schema)

    def test_ambiguous_unqualified_reference_rejected(self, schema):
        plan = Select(
            Product(Scan("Person", alias="P1"), Scan("Person", alias="P2")),
            Equals(col("phone"), "1"),
        )
        with pytest.raises(TargetQueryError, match="ambiguous"):
            TargetQuery(plan, schema)

    def test_default_name(self, schema):
        assert TargetQuery(Scan("Person"), schema).name == "target-query"


class TestIntrospection:
    def test_referenced_attributes_in_first_use_order(self, paper_example):
        query = paper_example.q2()
        assert target_attribute_names(query.referenced_attributes) == [
            "Person.addr",
            "Person.phone",
        ]

    def test_attributes_for_alias(self, paper_example):
        query = paper_example.q2()
        assert len(query.attributes_for_alias("Person")) == 2
        assert query.attributes_for_alias("Order") == []

    def test_needed_attributes_for_bare_alias_is_whole_relation(self, paper_example):
        query = paper_example.q2()
        needed = query.needed_attributes("Order")
        assert len(needed) == 5  # all Order attributes

    def test_partition_attributes_exclude_bare_alias(self, paper_example):
        query = paper_example.q2()
        assert query.partition_attributes == ["Person.addr", "Person.phone"]

    def test_partition_keys_add_cover_key_for_bare_alias(self, paper_example):
        query = paper_example.q2()
        keys = query.partition_keys
        assert keys[:2] == ["Person.addr", "Person.phone"]
        assert isinstance(keys[2], CoverKey)
        assert keys[2].alias == "Order"

    def test_alias_relation_lookup(self, paper_example):
        query = paper_example.q2()
        assert query.alias_relation("Order") == "Order"
        with pytest.raises(KeyError):
            query.alias_relation("Nope")

    def test_operator_and_attribute_counts(self, paper_example):
        query = paper_example.q0()
        assert query.operator_count == 2
        assert query.attribute_count == 2

    def test_operator_attributes(self, paper_example):
        query = paper_example.q0()
        select = query.plan.child
        assert target_attribute_names(query.operator_attributes(select)) == ["Person.phone"]

    def test_describe_mentions_name(self, paper_example):
        assert "q0" in paper_example.q0().describe()


class TestOutputSemantics:
    def test_projection_output(self, paper_example):
        query = paper_example.q0()
        assert target_attribute_names(query.output_attributes) == ["Person.addr"]
        assert not query.is_aggregate

    def test_aggregate_output_is_empty(self, schema):
        plan = Aggregate(Select(Scan("Person"), Equals(col("phone"), "1")), "COUNT")
        query = TargetQuery(plan, schema)
        assert query.is_aggregate
        assert query.output_attributes == []

    def test_no_projection_outputs_all_referenced(self, paper_example):
        query = paper_example.q2()
        assert target_attribute_names(query.output_attributes) == [
            "Person.addr",
            "Person.phone",
        ]

    def test_projection_order_preserved(self, schema):
        plan = Project(Scan("Person"), [col("addr"), col("pname")])
        query = TargetQuery(plan, schema)
        assert target_attribute_names(query.output_attributes) == ["Person.addr", "Person.pname"]

    def test_join_predicate_attributes_are_referenced(self, schema):
        plan = Select(
            Product(Scan("Person", alias="P1"), Scan("Person", alias="P2")),
            ColumnEquals(col("P1.pname"), col("P2.pname")),
        )
        query = TargetQuery(plan, schema)
        qualified = target_attribute_names(query.referenced_attributes)
        # pname is referenced through both aliases: one TargetAttribute per alias.
        assert qualified == ["Person.pname", "Person.pname"]
        assert query.attributes_for_alias("P1") and query.attributes_for_alias("P2")
