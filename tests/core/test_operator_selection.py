"""Unit tests for the Random / SNF / SEF operator-selection strategies."""

import math

import pytest

from repro.core.eunit import EUnit, candidate_operators
from repro.core.partition_tree import CoverKey
from repro.relational.algebra import Materialized
from repro.relational.relation import Relation
from repro.core.operator_selection import (
    STRATEGIES,
    OperatorChoice,
    RandomStrategy,
    SEFStrategy,
    SNFStrategy,
    entropy,
    make_strategy,
    partition_attributes,
    partition_for,
)
from repro.matching.mappings import Mapping


def synthetic_choice(sizes):
    """An OperatorChoice whose partitions have the given sizes (content irrelevant)."""
    partitions = []
    counter = 1
    for size in sizes:
        group = tuple(
            Mapping(counter + index, {"T.a": f"S.x{counter + index}"}, 1.0, 0.1)
            for index in range(size)
        )
        counter += size
        partitions.append(group)
    from repro.core.eunit import CandidateOperator
    from repro.relational.algebra import Scan

    return OperatorChoice(
        candidate=CandidateOperator(operator=Scan("T")),
        attributes=("T.a",),
        partitions=tuple(partitions),
    )


class TestEntropy:
    def test_single_partition_has_zero_entropy(self):
        assert entropy(synthetic_choice([10])) == 0.0

    def test_uniform_partitions_have_log_entropy(self):
        assert entropy(synthetic_choice([5, 5])) == pytest.approx(1.0)
        assert entropy(synthetic_choice([3, 3, 3])) == pytest.approx(math.log2(3))

    def test_paper_figure_7_values(self):
        """Figure 7: o1 splits 40/30/30 (E=1.57), o2 splits 10/70/10/10 (E=1.36)."""
        o1 = entropy(synthetic_choice([4, 3, 3]))
        o2 = entropy(synthetic_choice([1, 7, 1, 1]))
        assert o1 == pytest.approx(1.571, abs=0.01)
        assert o2 == pytest.approx(1.357, abs=0.01)
        assert o2 < o1

    def test_empty_choice(self):
        assert entropy(synthetic_choice([])) == 0.0


class TestPartitionAttributes:
    def test_selection_uses_only_its_attributes(self, paper_example):
        query = paper_example.q2()
        candidates = candidate_operators(query.plan, query)
        inner = next(c for c in candidates if c.operator is query.plan.left.child)
        assert partition_attributes(query, inner) == ["Person.phone"]

    def test_product_includes_cover_key_of_scan_children(self, paper_example):
        query = paper_example.q2()
        plan = query.plan.replace(
            query.plan.left,
            Materialized(Relation(["Person@Customer.ophone"], [])),
        )
        candidates = candidate_operators(plan, query)
        product = next(c for c in candidates if type(c.operator).__name__ == "Product")
        keys = partition_attributes(query, product)
        assert any(isinstance(key, CoverKey) and key.alias == "Order" for key in keys)

    def test_partition_for_groups_mappings(self, paper_example):
        query = paper_example.q2()
        candidates = candidate_operators(query.plan, query)
        inner = next(c for c in candidates if c.operator is query.plan.left.child)
        choice = partition_for(query, inner, list(paper_example.mappings))
        # phone maps to ophone for m1,m2,m3,m5 and hphone for m4.
        assert choice.partition_count == 2
        sizes = sorted(len(group) for group in choice.partitions)
        assert sizes == [1, 4]


class TestStrategies:
    @pytest.fixture()
    def unit_and_candidates(self, paper_example):
        query = paper_example.q2()
        unit = EUnit(plan=query.plan, mappings=list(paper_example.mappings))
        return query, unit, candidate_operators(query.plan, query)

    def test_snf_picks_fewest_partitions(self, unit_and_candidates):
        query, unit, candidates = unit_and_candidates
        choice = SNFStrategy().choose(unit, candidates, query)
        minimal = min(
            partition_for(query, candidate, unit.mappings).partition_count
            for candidate in candidates
        )
        assert choice.partition_count == minimal

    def test_sef_picks_lowest_entropy(self, unit_and_candidates):
        query, unit, candidates = unit_and_candidates
        choice = SEFStrategy().choose(unit, candidates, query)
        lowest = min(
            entropy(partition_for(query, candidate, unit.mappings)) for candidate in candidates
        )
        assert entropy(choice) == pytest.approx(lowest)

    def test_sef_prefers_concentrated_partitions_over_fewer(self, paper_example):
        """The Figure 7 situation: SNF and SEF can disagree."""
        few_but_even = synthetic_choice([4, 3, 3])
        many_but_concentrated = synthetic_choice([1, 7, 1, 1])
        assert few_but_even.partition_count < many_but_concentrated.partition_count
        assert entropy(many_but_concentrated) < entropy(few_but_even)

    def test_random_is_seeded_and_valid(self, unit_and_candidates):
        query, unit, candidates = unit_and_candidates
        first = RandomStrategy(seed=5).choose(unit, candidates, query)
        second = RandomStrategy(seed=5).choose(unit, candidates, query)
        assert first.candidate.operator.canonical() == second.candidate.operator.canonical()
        assert first.partition_count >= 1

    def test_make_strategy_factory(self):
        assert isinstance(make_strategy("SEF"), SEFStrategy)
        assert isinstance(make_strategy("snf"), SNFStrategy)
        assert isinstance(make_strategy("random", seed=3), RandomStrategy)
        with pytest.raises(KeyError):
            make_strategy("greedy")

    def test_registry_names(self):
        assert set(STRATEGIES) == {"random", "snf", "sef"}
