"""Unit tests for e-units, the u-trace and candidate-operator enumeration."""

import pytest

from repro.core.eunit import (
    CandidateOperator,
    EUnit,
    UTrace,
    apply_execution,
    candidate_operators,
    is_leaf,
    iter_materialized,
    splice_out,
)
from repro.core.target_query import TargetQuery
from repro.relational.algebra import Aggregate, Materialized, Product, Project, Scan, Select
from repro.relational.expressions import col
from repro.relational.predicates import Equals
from repro.relational.relation import Relation


def materialized(rows=((1,),), columns=("Person@Customer.ophone",)):
    return Materialized(Relation(list(columns), list(rows)))


class TestEUnit:
    def test_probability_sums_mapping_probabilities(self, paper_example):
        unit = EUnit(plan=paper_example.q0().plan, mappings=list(paper_example.mappings)[:3])
        assert unit.probability == pytest.approx(0.7)

    def test_fully_evaluated_flag(self, paper_example):
        query = paper_example.q0()
        assert not EUnit(plan=query.plan, mappings=[]).is_fully_evaluated
        unit = EUnit(plan=materialized(), mappings=[])
        assert unit.is_fully_evaluated
        assert unit.result.relation.rows == [(1,)]

    def test_result_requires_materialized_plan(self, paper_example):
        unit = EUnit(plan=paper_example.q0().plan, mappings=[])
        with pytest.raises(ValueError):
            unit.result

    def test_empty_intermediate_detection(self, paper_example):
        empty = materialized(rows=())
        plan = Select(empty, Equals(col("ophone"), "1"))
        unit = EUnit(plan=plan, mappings=[])
        assert unit.has_empty_intermediate()

    def test_empty_intermediate_ignored_when_aggregate_remains(self, paper_example):
        # COUNT over an empty relation still produces a row, so the shortcut
        # must not fire (it would change the answer from 0 to "no answer").
        empty = materialized(rows=())
        plan = Aggregate(empty, "COUNT")
        unit = EUnit(plan=plan, mappings=[])
        assert not unit.has_empty_intermediate()

    def test_spawn_increments_depth(self, paper_example):
        unit = EUnit(plan=paper_example.q0().plan, mappings=list(paper_example.mappings))
        child = unit.spawn(materialized(), list(paper_example.mappings)[:1])
        assert child.depth == unit.depth + 1
        assert child.unit_id != unit.unit_id

    def test_unit_ids_unique(self):
        first = EUnit(plan=materialized(), mappings=[])
        second = EUnit(plan=materialized(), mappings=[])
        assert first.unit_id != second.unit_id


class TestUTrace:
    def test_counters(self, paper_example):
        root = EUnit(plan=paper_example.q0().plan, mappings=list(paper_example.mappings))
        trace = UTrace(root)
        child = root.spawn(materialized(), [])
        trace.created(child)
        trace.answered(child)
        trace.pruned(child)
        snapshot = trace.snapshot()
        assert snapshot["units_created"] == 2
        assert snapshot["units_answered"] == 1
        assert snapshot["units_pruned_empty"] == 1
        assert snapshot["max_depth"] == 1


class TestCandidateOperators:
    def test_is_leaf(self):
        assert is_leaf(Scan("Person"))
        assert is_leaf(materialized())
        assert not is_leaf(Select(Scan("Person"), Equals(col("x"), 1)))

    def test_selection_chain_all_candidates(self, paper_example):
        query = paper_example.q2()
        candidates = candidate_operators(query.plan, query)
        kinds = [type(c.operator).__name__ for c in candidates]
        # Both selections are valid (the outer one via push-down); the product
        # is not valid because its left child is not a leaf.
        assert kinds.count("Select") == 2
        assert "Product" not in kinds

    def test_pushdown_leaf_identified(self, paper_example):
        query = paper_example.q2()
        candidates = candidate_operators(query.plan, query)
        outer = next(c for c in candidates if c.operator is query.plan.left)
        inner = next(c for c in candidates if c.operator is query.plan.left.child)
        assert outer.pushdown_leaf is query.plan.left.child.child
        assert inner.pushdown_leaf is None
        assert outer.effective_leaf is query.plan.left.child.child
        assert inner.effective_leaf is query.plan.left.child.child

    def test_product_candidate_when_children_are_leaves(self, paper_example):
        query = paper_example.q2()
        plan = query.plan.replace(query.plan.left, materialized())
        candidates = candidate_operators(plan, query)
        assert any(isinstance(c.operator, Product) for c in candidates)

    def test_projection_valid_only_at_leaf_and_root_safe(self, paper_example):
        query = paper_example.q0()
        # Initially the projection's child is a selection -> not a candidate.
        kinds = [type(c.operator).__name__ for c in candidate_operators(query.plan, query)]
        assert "Project" not in kinds
        # Once the selection is materialised, the projection becomes valid.
        plan = query.plan.replace(query.plan.child, materialized())
        kinds = [type(c.operator).__name__ for c in candidate_operators(plan, query)]
        assert "Project" in kinds

    def test_projection_that_drops_needed_columns_is_invalid(self, paper_example):
        schema = paper_example.target_schema
        plan = Select(
            Project(Scan("Person"), [col("pname")]),
            Equals(col("addr"), "aaa"),
        )
        query = TargetQuery(plan, schema)
        candidates = candidate_operators(query.plan, query)
        assert all(not isinstance(c.operator, Project) for c in candidates)

    def test_aggregate_candidate_over_leaf(self, paper_example):
        schema = paper_example.target_schema
        query = TargetQuery(Aggregate(Scan("Person"), "COUNT"), schema)
        candidates = candidate_operators(query.plan, query)
        assert len(candidates) == 1
        assert isinstance(candidates[0].operator, Aggregate)


class TestPlanSurgery:
    def test_splice_out_unary(self, paper_example):
        query = paper_example.q2()
        outer = query.plan.left
        spliced = splice_out(query.plan, outer)
        remaining_selects = [n for n in spliced.walk() if isinstance(n, Select)]
        assert len(remaining_selects) == 1

    def test_splice_out_rejects_binary(self, paper_example):
        query = paper_example.q2()
        with pytest.raises(ValueError):
            splice_out(query.plan, query.plan)

    def test_apply_execution_replaces_operator_subtree(self, paper_example):
        query = paper_example.q2()
        inner = query.plan.left.child
        result = materialized()
        candidate = CandidateOperator(operator=inner)
        new_plan = apply_execution(query.plan, candidate, result)
        assert any(node is result for node in new_plan.walk())
        assert all(node is not inner for node in new_plan.walk())

    def test_apply_execution_with_pushdown(self, paper_example):
        query = paper_example.q2()
        outer = query.plan.left
        leaf = outer.child.child
        result = materialized()
        candidate = CandidateOperator(operator=outer, pushdown_leaf=leaf)
        new_plan = apply_execution(query.plan, candidate, result)
        # The pushed-down selection is gone, the inner one survives and now
        # reads from the materialised result.
        selects = [n for n in new_plan.walk() if isinstance(n, Select)]
        assert len(selects) == 1
        assert selects[0].child is result

    def test_iter_materialized(self, paper_example):
        query = paper_example.q2()
        plan = query.plan.replace(query.plan.left.child.child, materialized())
        assert len(list(iter_materialized(plan))) == 1
