"""Unit tests for schema links and the cover-combination rules."""

import pytest

from repro.core.links import RelationLink, SchemaLinks, attach_with_links, combine_cover, scan_alias
from repro.relational.algebra import Join, Materialized, Product, Scan
from repro.relational.relation import Relation


@pytest.fixture()
def links():
    return SchemaLinks.from_pairs(
        [
            ("orders", "o_custkey", "customer", "c_custkey"),
            ("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ]
    )


class TestSchemaLinks:
    def test_links_are_bidirectional(self, links):
        assert links.between("orders", "customer")
        assert links.between("customer", "orders")
        assert links.between("customer", "lineitem") == []

    def test_linked_to_any(self, links):
        assert links.linked_to_any("lineitem", ["customer", "orders"])
        assert not links.linked_to_any("lineitem", ["customer"])

    def test_len_counts_undirected_links(self, links):
        assert len(links) == 2

    def test_iteration_yields_each_link_once(self, links):
        assert len(list(links)) == 2

    def test_reversed_link(self):
        link = RelationLink("a", "x", "b", "y")
        assert link.reversed == RelationLink("b", "y", "a", "x")

    def test_empty_catalogue(self):
        assert len(SchemaLinks.empty()) == 0


class TestScanAlias:
    def test_format(self):
        assert scan_alias("PO1", "orders") == "PO1@orders"


class TestCombineCover:
    def test_single_relation(self, links):
        plan = combine_cover("PO", ["orders"], links)
        assert isinstance(plan, Scan)
        assert plan.label == "PO@orders"

    def test_empty_cover_rejected(self, links):
        with pytest.raises(ValueError):
            combine_cover("PO", [], links)

    def test_linked_relations_become_join(self, links):
        plan = combine_cover("PO", ["orders", "customer"], links)
        assert isinstance(plan, Join)
        canonical = plan.canonical()
        assert "PO@orders.o_custkey" in canonical
        assert "PO@customer.c_custkey" in canonical

    def test_unlinked_relations_become_product(self, links):
        plan = combine_cover("PO", ["customer", "lineitem"], links)
        assert isinstance(plan, Product)

    def test_link_aware_ordering_joins_when_possible(self, links):
        # customer and lineitem are not directly linked, but both link through
        # orders; the combiner reorders so that at most one product is needed.
        plan = combine_cover("PO", ["customer", "lineitem", "orders"], links)
        kinds = [type(node).__name__ for node in plan.walk() if node.children()]
        assert kinds.count("Product") == 0
        assert kinds.count("Join") == 2

    def test_duplicate_relations_collapse(self, links):
        plan = combine_cover("PO", ["orders", "orders"], links)
        assert isinstance(plan, Scan)

    def test_no_links_catalogue(self):
        plan = combine_cover("PO", ["orders", "customer"], None)
        assert isinstance(plan, Product)


class TestAttachWithLinks:
    def test_attach_with_available_column(self, links):
        base = Materialized(Relation(["PO@orders.o_orderkey", "PO@orders.o_custkey"], []))
        plan = attach_with_links(
            base,
            ["orders"],
            "PO",
            "customer",
            Scan("customer", alias="PO@customer"),
            links,
            available_columns=base.relation.columns,
        )
        assert isinstance(plan, Join)

    def test_attach_falls_back_to_product_when_column_missing(self, links):
        # The intermediate no longer carries o_custkey, so the join link is unusable.
        base = Materialized(Relation(["PO@orders.o_orderkey"], []))
        plan = attach_with_links(
            base,
            ["orders"],
            "PO",
            "customer",
            Scan("customer", alias="PO@customer"),
            links,
            available_columns=base.relation.columns,
        )
        assert isinstance(plan, Product)

    def test_attach_without_column_filter_uses_link(self, links):
        base = Materialized(Relation(["PO@orders.o_orderkey", "PO@orders.o_custkey"], []))
        plan = attach_with_links(
            base, ["orders"], "PO", "customer", Scan("customer", alias="PO@customer"), links
        )
        assert isinstance(plan, Join)
