"""Unit tests for probabilistic answers."""

import pytest

from repro.core.answer import ProbabilisticAnswer


class TestConstruction:
    def test_add_and_probability(self):
        answer = ProbabilisticAnswer()
        answer.add(("x",), 0.3)
        answer.add(("x",), 0.2)
        answer.add(("y",), 0.1)
        assert answer.probability(("x",)) == pytest.approx(0.5)
        assert answer.probability(("y",)) == pytest.approx(0.1)
        assert answer.probability(("z",)) == 0.0

    def test_from_pairs(self):
        answer = ProbabilisticAnswer.from_pairs([(("a",), 0.4), (("a",), 0.1), (("b",), 0.5)])
        assert answer.probability(("a",)) == pytest.approx(0.5)
        assert len(answer) == 2

    def test_add_tuples_shares_probability(self):
        answer = ProbabilisticAnswer()
        answer.add_tuples([("a",), ("b",)], 0.3)
        assert answer.probability(("a",)) == 0.3
        assert answer.probability(("b",)) == 0.3

    def test_negative_probability_rejected(self):
        answer = ProbabilisticAnswer()
        with pytest.raises(ValueError):
            answer.add(("a",), -0.1)
        with pytest.raises(ValueError):
            answer.add_empty(-0.1)

    def test_empty_probability_accumulates(self):
        answer = ProbabilisticAnswer()
        answer.add_empty(0.2)
        answer.add_empty(0.3)
        assert answer.empty_probability == pytest.approx(0.5)

    def test_total_probability_includes_empty(self):
        answer = ProbabilisticAnswer()
        answer.add(("a",), 0.6)
        answer.add_empty(0.4)
        assert answer.total_probability == pytest.approx(1.0)

    def test_merge(self):
        left = ProbabilisticAnswer.from_pairs([(("a",), 0.3)])
        left.add_empty(0.1)
        right = ProbabilisticAnswer.from_pairs([(("a",), 0.2), (("b",), 0.4)])
        left.merge(right)
        assert left.probability(("a",)) == pytest.approx(0.5)
        assert left.probability(("b",)) == pytest.approx(0.4)
        assert left.empty_probability == pytest.approx(0.1)


class TestRankingAndTopK:
    def build(self):
        return ProbabilisticAnswer.from_pairs(
            [(("low",), 0.1), (("high",), 0.8), (("mid",), 0.4), (("zero",), 0.0)]
        )

    def test_ranked_order(self):
        ranked = self.build().ranked()
        assert [answer.values for answer in ranked[:3]] == [("high",), ("mid",), ("low",)]
        assert [answer.rank for answer in ranked] == [1, 2, 3, 4]

    def test_rank_ties_are_deterministic(self):
        answer = ProbabilisticAnswer.from_pairs([(("b",), 0.5), (("a",), 0.5)])
        assert [a.values for a in answer.ranked()] == [("a",), ("b",)]

    def test_top_k_excludes_zero_probability(self):
        top = self.build().top_k(10)
        assert all(answer.probability > 0 for answer in top)
        assert len(top) == 3

    def test_top_k_limits(self):
        top = self.build().top_k(2)
        assert [answer.values for answer in top] == [("high",), ("mid",)]

    def test_top_k_invalid_k(self):
        with pytest.raises(ValueError):
            self.build().top_k(0)

    def test_above_threshold(self):
        answers = self.build().above_threshold(0.4)
        assert [answer.values for answer in answers] == [("high",), ("mid",)]

    def test_above_threshold_includes_exact_matches(self):
        answers = self.build().above_threshold(0.8)
        assert [answer.values for answer in answers] == [("high",)]

    def test_above_threshold_invalid(self):
        with pytest.raises(ValueError):
            self.build().above_threshold(0.0)
        with pytest.raises(ValueError):
            self.build().above_threshold(1.5)


class TestComparison:
    def test_equals_within_tolerance(self):
        left = ProbabilisticAnswer.from_pairs([(("a",), 0.1 + 0.2)])
        right = ProbabilisticAnswer.from_pairs([(("a",), 0.3)])
        assert left.equals(right)

    def test_not_equal_different_tuples(self):
        left = ProbabilisticAnswer.from_pairs([(("a",), 0.3)])
        right = ProbabilisticAnswer.from_pairs([(("b",), 0.3)])
        assert not left.equals(right)
        assert left.difference(right)

    def test_not_equal_different_probability(self):
        left = ProbabilisticAnswer.from_pairs([(("a",), 0.3)])
        right = ProbabilisticAnswer.from_pairs([(("a",), 0.4)])
        assert not left.equals(right)
        assert any("0.3" in problem for problem in left.difference(right))

    def test_not_equal_different_empty_probability(self):
        left = ProbabilisticAnswer.from_pairs([(("a",), 0.3)])
        right = ProbabilisticAnswer.from_pairs([(("a",), 0.3)])
        right.add_empty(0.2)
        assert not left.equals(right)

    def test_difference_empty_when_equal(self):
        left = ProbabilisticAnswer.from_pairs([(("a",), 0.3)])
        right = ProbabilisticAnswer.from_pairs([(("a",), 0.3)])
        assert left.difference(right) == []


class TestDunder:
    def test_contains_and_iter(self):
        answer = ProbabilisticAnswer.from_pairs([(("a", 1), 0.5)])
        assert ("a", 1) in answer
        assert "not-a-tuple" not in answer
        assert list(answer) == [("a", 1)]

    def test_tuples_property(self):
        answer = ProbabilisticAnswer.from_pairs([(("a",), 0.5), (("b",), 0.2)])
        assert answer.tuples == [("a",), ("b",)]

    def test_pretty_renders_ranked_answers(self):
        answer = ProbabilisticAnswer.from_pairs([(("a",), 0.5)])
        answer.add_empty(0.5)
        text = answer.pretty()
        assert "p=0.5000" in text
        assert "(no answer)" in text

    def test_pretty_empty_answer(self):
        assert "no answers" in ProbabilisticAnswer().pretty()

    def test_ranked_handles_mixed_value_types(self):
        answer = ProbabilisticAnswer.from_pairs([((1,), 0.5), (("a",), 0.5), ((None,), 0.5)])
        assert len(answer.ranked()) == 3
