"""Unit tests for query and operator reformulation (Section VI-B)."""

import pytest

from repro.core.reformulation import (
    UnmatchedAttributeError,
    build_scan_plan,
    cover_relations,
    extract_answers,
    reformulate_operator,
    reformulate_query,
    source_attribute,
    source_label,
    source_reference,
)
from repro.core.target_query import TargetQuery
from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    Product,
    Project,
    Scan,
    Select,
    plan_scans,
)
from repro.relational.executor import execute
from repro.relational.expressions import col
from repro.relational.predicates import Equals
from repro.relational.relation import Relation


@pytest.fixture()
def example(paper_example):
    return paper_example


def m(example, mapping_id):
    return example.mappings.mapping(mapping_id)


class TestAttributeTranslation:
    def test_source_attribute(self, example):
        query = example.q0()
        attribute = next(a for a in query.referenced_attributes if a.name == "phone")
        assert source_attribute(m(example, 1), attribute) == ("Customer", "ophone")

    def test_source_reference_label(self, example):
        query = example.q0()
        attribute = next(a for a in query.referenced_attributes if a.name == "phone")
        reference = source_reference(m(example, 1), attribute)
        assert reference.qualifier == "Person@Customer"
        assert reference.name == "ophone"
        assert source_label(m(example, 1), attribute) == "Person@Customer.ophone"

    def test_unmatched_attribute_raises(self, example):
        query = example.q1()  # references pname, unmatched by m5
        attribute = next(a for a in query.referenced_attributes if a.name == "pname")
        with pytest.raises(UnmatchedAttributeError) as info:
            source_attribute(m(example, 5), attribute)
        assert "m5" in str(info.value)
        assert info.value.attribute is attribute


class TestCoverRelations:
    def test_referenced_alias_single_relation(self, example):
        query = example.q0()
        assert cover_relations(query, m(example, 1), "Person") == ["Customer"]

    def test_bare_alias_uses_matched_attributes(self, example):
        query = example.q2()
        assert cover_relations(query, m(example, 1), "Order") == ["C_Order"]
        assert sorted(cover_relations(query, m(example, 5), "Order")) == ["C_Order", "Nation"]

    def test_referenced_alias_unmatched_attribute_raises(self, example):
        query = example.q1()
        with pytest.raises(UnmatchedAttributeError):
            cover_relations(query, m(example, 5), "Person")

    def test_explicit_attribute_list(self, example):
        query = example.q2()
        attributes = [a for a in query.referenced_attributes if a.name == "phone"]
        assert cover_relations(query, m(example, 4), "Person", attributes) == ["Customer"]

    def test_build_scan_plan_single_scan(self, example):
        query = example.q0()
        plan = build_scan_plan(query, m(example, 1), "Person", example.links)
        assert isinstance(plan, Scan)
        assert plan.label == "Person@Customer"

    def test_build_scan_plan_multi_relation_cover_is_product(self, example):
        query = example.q2()
        plan = build_scan_plan(query, m(example, 5), "Order", example.links)
        # C_Order and Nation have no link, so the cover is a Cartesian product
        # (the paper's Figure 8(d)).
        assert isinstance(plan, Product)


class TestQueryReformulation:
    def test_q0_through_m1(self, example):
        query = example.q0()
        plan = reformulate_query(query, m(example, 1), example.links)
        scans = plan_scans(plan)
        assert [scan.relation for scan in scans] == ["Customer"]
        canonical = plan.canonical()
        assert "ophone" in canonical and "oaddr" in canonical

    def test_q0_through_m4_uses_home_attributes(self, example):
        query = example.q0()
        canonical = reformulate_query(query, m(example, 4), example.links).canonical()
        assert "hphone" in canonical and "haddr" in canonical

    def test_identical_reformulations_share_canonical_form(self, example):
        query = example.q0()
        first = reformulate_query(query, m(example, 1), example.links).canonical()
        second = reformulate_query(query, m(example, 2), example.links).canonical()
        assert first == second

    def test_executing_reformulated_query_gives_paper_answer(self, example):
        query = example.q_phone_by_addr()
        plan = reformulate_query(query, m(example, 1), example.links)
        result = execute(plan, example.database)
        assert sorted(row[0] for row in result) == ["123", "456"]

    def test_unmatched_projection_attribute_raises(self, example):
        query = example.q1()
        with pytest.raises(UnmatchedAttributeError):
            reformulate_query(query, m(example, 5), example.links)

    def test_self_join_aliases_stay_disjoint(self, example):
        schema = example.target_schema
        plan = Select(
            Product(Scan("Person", alias="P1"), Scan("Person", alias="P2")),
            Equals(col("P1.phone"), "123"),
        )
        query = TargetQuery(plan, schema)
        source_plan = reformulate_query(query, m(example, 1), example.links)
        labels = {scan.label for scan in plan_scans(source_plan)}
        # P1 is constrained (phone), so it covers Customer only; P2 is a bare
        # alias, so it covers every source relation its attributes map to.
        assert "P1@Customer" in labels and "P2@Customer" in labels
        assert all(label.startswith(("P1@", "P2@")) for label in labels)


class TestOperatorReformulation:
    def test_unary_over_target_scan(self, example):
        query = example.q2()
        select = query.plan.left.child  # σ phone='123' over Person scan
        source_plan = reformulate_operator(query, m(example, 1), select, example.links)
        assert isinstance(source_plan, Select)
        assert isinstance(source_plan.child, Scan)
        assert source_plan.child.relation == "Customer"

    def test_unary_over_materialized_case1(self, example):
        query = example.q2()
        select = query.plan.left  # σ addr='hk'
        intermediate = Relation(
            ["Person@Customer.oaddr", "Person@Customer.haddr"], [("aaa", "hk")]
        )
        rewritten_leaf = Materialized(intermediate)
        patched = query.plan.replace(select.child, rewritten_leaf)
        patched_select = patched.left
        source_plan = reformulate_operator(query, m(example, 3), patched_select, example.links)
        assert isinstance(source_plan, Select)
        assert source_plan.child is rewritten_leaf
        result = execute(source_plan, example.database)
        assert len(result) == 1

    def test_unary_case2_joins_in_missing_relation(self, example):
        # The intermediate holds only C_Order columns but the selection needs
        # a Customer attribute, so the input becomes an extended plan.
        schema = example.target_schema
        plan = Select(Scan("Person"), Equals(col("phone"), "123"))
        query = TargetQuery(Select(plan, Equals(col("nation"), "China")), schema)
        intermediate = Materialized(Relation(["Person@Customer.ophone"], [("123",)]))
        outer = query.plan
        patched_query_plan = outer.replace(outer.child, intermediate)
        source_plan = reformulate_operator(
            query, m(example, 1), patched_query_plan, example.links
        )
        # nation maps to Nation.name, which is not in the intermediate.
        assert isinstance(source_plan, Select)
        assert isinstance(source_plan.child, Product)

    def test_binary_product_with_scan_side(self, example):
        query = example.q2()
        product = query.plan
        intermediate = Materialized(
            Relation(["Person@Customer.ophone", "Person@Customer.haddr"], [("123", "hk")])
        )
        patched = product.replace(product.left, intermediate)
        source_plan = reformulate_operator(query, m(example, 3), patched, example.links)
        assert isinstance(source_plan, Product)
        result = execute(source_plan, example.database)
        assert len(result) == 2  # 1 row x 2 C_Order rows

    def test_binary_with_multi_relation_cover(self, example):
        query = example.q2()
        product = query.plan
        intermediate = Materialized(Relation(["Person@Customer.ophone"], [("123",)]))
        patched = product.replace(product.left, intermediate)
        source_plan = reformulate_operator(query, m(example, 5), patched, example.links)
        result = execute(source_plan, example.database)
        # 1 row x 2 C_Order rows x 2 Nation rows (Figure 8(d)).
        assert len(result) == 4

    def test_aggregate_reformulation(self, example):
        schema = example.target_schema
        query = TargetQuery(
            Aggregate(Select(Scan("Person"), Equals(col("addr"), "aaa")), "COUNT"),
            schema,
        )
        aggregate = query.plan
        intermediate = Materialized(Relation(["Person@Customer.oaddr"], [("aaa",), ("aaa",)]))
        patched = aggregate.replace(aggregate.child, intermediate)
        source_plan = reformulate_operator(query, m(example, 1), patched, example.links)
        result = execute(source_plan, example.database)
        assert result.rows == [(2,)]

    def test_unmatched_operator_attribute_raises(self, example):
        query = example.q1()
        project = query.plan  # π pname
        intermediate = Materialized(Relation(["Person@Customer.haddr"], [("abc",)]))
        patched = project.replace(project.child, intermediate)
        with pytest.raises(UnmatchedAttributeError):
            reformulate_operator(query, m(example, 5), patched, example.links)

    def test_non_operator_rejected(self, example):
        query = example.q0()
        with pytest.raises(TypeError):
            reformulate_operator(query, m(example, 1), Scan("Person"), example.links)

    def test_pushdown_leaf_only_for_unary(self, example):
        query = example.q2()
        with pytest.raises(ValueError):
            reformulate_operator(
                query,
                m(example, 1),
                query.plan,
                example.links,
                pushdown_leaf=Scan("Order"),
            )


class TestExtractAnswers:
    def test_projection_output(self, example):
        query = example.q0()
        plan = reformulate_query(query, m(example, 1), example.links)
        result = execute(plan, example.database)
        assert extract_answers(query, m(example, 1), result) == [("aaa",)]

    def test_duplicates_removed(self, example):
        query = example.q_phone_by_addr()
        relation = Relation(["Person@Customer.ophone"], [("123",), ("123",), ("456",)])
        assert extract_answers(query, m(example, 1), relation) == [("123",), ("456",)]

    def test_empty_relation_gives_no_answers(self, example):
        query = example.q0()
        relation = Relation(["Person@Customer.oaddr"], [])
        assert extract_answers(query, m(example, 1), relation) == []

    def test_aggregate_rows_returned_directly(self, example):
        schema = example.target_schema
        query = TargetQuery(Aggregate(Scan("Person"), "COUNT"), schema)
        relation = Relation(["COUNT(*)"], [(3,)])
        assert extract_answers(query, m(example, 1), relation) == [(3,)]

    def test_multi_attribute_output_order(self, example):
        query = example.q2()
        relation = Relation(
            ["Person@Customer.haddr", "Person@Customer.ophone", "Order@C_Order.amount"],
            [("hk", "123", 120.0)],
        )
        assert extract_answers(query, m(example, 3), relation) == [("hk", "123")]
