"""Property-based tests for the core algorithms (hypothesis).

The central property is the paper's own correctness claim: q-sharing and
o-sharing are *optimisations* of the basic evaluator, so on any instance —
random mappings, random data, random point queries — all evaluators must
return exactly the same probabilistic answer, and the top-k evaluator must
return a subset of the exact ranking.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import evaluate
from repro.core.answer import ProbabilisticAnswer
from repro.core.evaluators.topk import TopKEvaluator
from repro.core.links import SchemaLinks
from repro.core.partition_tree import partition, partition_naive, represent
from repro.core.target_query import TargetQuery
from repro.matching.mappings import Mapping, MappingSet
from repro.relational.algebra import Product, Project, Scan, Select
from repro.relational.database import Database
from repro.relational.expressions import col
from repro.relational.predicates import Equals
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType

# --------------------------------------------------------------------------- #
# a small random universe: 2 source relations, 1-2 target relations
# --------------------------------------------------------------------------- #
_S = DataType.STRING

SOURCE_SCHEMA = DatabaseSchema(
    "RandSrc",
    [
        RelationSchema.build("src_a", [("x1", _S), ("x2", _S), ("x3", _S)]),
        RelationSchema.build("src_b", [("y1", _S), ("y2", _S)]),
    ],
)
TARGET_SCHEMA = DatabaseSchema(
    "RandTgt",
    [
        RelationSchema.build("T", [("p", _S), ("q", _S), ("r", _S)]),
        RelationSchema.build("U", [("s", _S), ("t", _S)]),
    ],
)
SOURCE_ATTRIBUTES = [attribute.qualified for attribute in SOURCE_SCHEMA.attributes]
TARGET_ATTRIBUTES = [attribute.qualified for attribute in TARGET_SCHEMA.attributes]

values = st.sampled_from(["a", "b", "c"])


@st.composite
def databases(draw):
    database = Database(SOURCE_SCHEMA)
    rows_a = draw(st.lists(st.tuples(values, values, values), min_size=0, max_size=8))
    rows_b = draw(st.lists(st.tuples(values, values), min_size=0, max_size=5))
    database.set_relation("src_a", Relation.from_schema(SOURCE_SCHEMA.relation("src_a"), rows_a))
    database.set_relation("src_b", Relation.from_schema(SOURCE_SCHEMA.relation("src_b"), rows_b))
    return database


@st.composite
def mapping_sets(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    mappings = []
    for mapping_id in range(1, count + 1):
        correspondences = {}
        for target in TARGET_ATTRIBUTES:
            source = draw(st.sampled_from(SOURCE_ATTRIBUTES + [None, None]))
            if source is not None:
                correspondences[target] = source
        mappings.append(
            Mapping(
                mapping_id=mapping_id,
                correspondences=correspondences,
                score=draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False)),
                probability=0.0,
            )
        )
    return MappingSet(mappings, normalize=True)


@st.composite
def queries(draw):
    kind = draw(st.sampled_from(["select-project", "select", "product"]))
    constant = draw(values)
    if kind == "select-project":
        plan = Project(
            Select(Scan("T"), Equals(col("q"), constant)),
            [col("p")],
        )
    elif kind == "select":
        plan = Select(
            Select(Scan("T"), Equals(col("q"), constant)),
            Equals(col("r"), draw(values)),
        )
    else:
        plan = Select(Product(Scan("T"), Scan("U")), Equals(col("T.q"), constant))
    return TargetQuery(plan, TARGET_SCHEMA, name=f"random-{kind}")


LINKS = SchemaLinks.empty()


@settings(max_examples=40, deadline=None)
@given(database=databases(), mappings=mapping_sets(), query=queries())
def test_all_evaluators_agree_on_random_instances(database, mappings, query):
    reference = evaluate(query, mappings, database, method="basic", links=LINKS)
    for method in ("e-basic", "e-mqo", "q-sharing", "o-sharing"):
        result = evaluate(query, mappings, database, method=method, links=LINKS)
        assert reference.answers.equals(result.answers), (
            method,
            reference.answers.difference(result.answers),
        )


@settings(max_examples=30, deadline=None)
@given(database=databases(), mappings=mapping_sets(), query=queries(), k=st.integers(1, 4))
def test_topk_is_a_prefix_of_the_exact_ranking(database, mappings, query, k):
    exact = evaluate(query, mappings, database, method="o-sharing", links=LINKS)
    topk = TopKEvaluator(k=k, links=LINKS).evaluate(query, mappings, database)
    exact_ranking = exact.answers.top_k(k)
    exact_by_tuple = {answer.values: answer.probability for answer in exact.answers.ranked()}
    assert len(topk.answers) == len(exact_ranking)
    if exact_ranking:
        threshold = exact_ranking[-1].probability
        for values_tuple, lower_bound in topk.answers.items():
            assert values_tuple in exact_by_tuple
            assert lower_bound <= exact_by_tuple[values_tuple] + 1e-9
            # Every returned tuple is at least as probable as the k-th exact answer.
            assert exact_by_tuple[values_tuple] >= threshold - 1e-9


@settings(max_examples=50, deadline=None)
@given(mappings=mapping_sets(), data=st.data())
def test_partition_tree_agrees_with_naive_partitioning(mappings, data):
    attributes = data.draw(
        st.lists(st.sampled_from(TARGET_ATTRIBUTES), min_size=1, max_size=4, unique=True)
    )
    tree_groups = partition(attributes, mappings)
    naive_groups = partition_naive(attributes, mappings)
    as_ids = lambda groups: sorted(sorted(m.mapping_id for m in group) for group in groups)
    assert as_ids(tree_groups) == as_ids(naive_groups)
    # Partitions form a disjoint cover of the mapping set.
    seen = [m.mapping_id for group in tree_groups for m in group]
    assert sorted(seen) == sorted(m.mapping_id for m in mappings)
    # Representatives preserve the total probability mass.
    representatives = represent(tree_groups)
    assert sum(r.probability for r in representatives) == pytest.approx(
        sum(m.probability for m in mappings)
    )


@settings(max_examples=50, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.sampled_from(["t1", "t2", "t3", "t4"]), st.floats(0, 0.5, allow_nan=False)),
        max_size=12,
    )
)
def test_probabilistic_answer_aggregation_matches_python_sum(pairs):
    answer = ProbabilisticAnswer.from_pairs([((name,), probability) for name, probability in pairs])
    for name in {name for name, _ in pairs}:
        expected = sum(probability for candidate, probability in pairs if candidate == name)
        assert answer.probability((name,)) == pytest.approx(expected)
    ranked = answer.ranked()
    probabilities = [entry.probability for entry in ranked]
    assert probabilities == sorted(probabilities, reverse=True)
