"""Unit tests for mapping partitioning (Algorithm 3)."""

import pytest

from repro.core.partition_tree import (
    UNMATCHED,
    AttributeKey,
    CoverKey,
    PartitionTree,
    partition,
    partition_and_represent,
    partition_naive,
    represent,
)
from repro.matching.mappings import Mapping


def ids(partitions):
    return sorted(sorted(m.mapping_id for m in bucket) for bucket in partitions)


class TestPartitionKeys:
    def test_attribute_key_label(self, paper_example):
        key = AttributeKey("Person.addr")
        assert key.label(paper_example.mappings[0]) == "Customer.oaddr"

    def test_attribute_key_unmatched(self):
        mapping = Mapping(1, {}, score=1.0, probability=1.0)
        assert AttributeKey("T.x").label(mapping) == UNMATCHED

    def test_cover_key_label_sorted_relations(self, paper_example):
        key = CoverKey("Order", ("Order.total", "Order.item"))
        assert key.label(paper_example.mappings[4]) == "C_Order,Nation"
        assert key.label(paper_example.mappings[0]) == "C_Order"

    def test_cover_key_unmatched(self):
        mapping = Mapping(1, {}, score=1.0, probability=1.0)
        assert CoverKey("Order", ("Order.total",)).label(mapping) == UNMATCHED


class TestPaperPartitioning:
    def test_q1_partitions_match_section_iv(self, paper_example):
        """π_pname σ_addr='abc' Person partitions into {m1,m2}, {m3,m4}, {m5}."""
        partitions = partition(["Person.pname", "Person.addr"], paper_example.mappings)
        assert ids(partitions) == [[1, 2], [3, 4], [5]]

    def test_phone_attribute_partitions(self, paper_example):
        partitions = partition(["Person.phone"], paper_example.mappings)
        assert ids(partitions) == [[1, 2, 3, 5], [4]]

    def test_representatives_carry_partition_probability(self, paper_example):
        partitions = partition(["Person.pname", "Person.addr"], paper_example.mappings)
        representatives = represent(partitions)
        probabilities = sorted(round(m.probability, 6) for m in representatives)
        assert probabilities == [0.1, 0.4, 0.5]
        assert sum(m.probability for m in representatives) == pytest.approx(1.0)

    def test_partition_and_represent_composition(self, paper_example):
        representatives = partition_and_represent(
            ["Person.pname", "Person.addr"], paper_example.mappings
        )
        assert len(representatives) == 3


class TestPartitionTree:
    def test_requires_attributes(self):
        with pytest.raises(ValueError):
            PartitionTree([])

    def test_node_count_grows_with_distinct_branches(self, paper_example):
        tree = PartitionTree(["Person.pname", "Person.addr"])
        tree.extend(paper_example.mappings)
        # root + 2 pname branches + 3 addr branches/buckets
        assert tree.node_count >= 5
        assert tree.depth == 3

    def test_buckets_in_insertion_order(self, paper_example):
        tree = PartitionTree(["Person.addr"])
        tree.extend(paper_example.mappings)
        buckets = tree.buckets()
        assert [m.mapping_id for m in buckets[0]] == [1, 2]
        assert [m.mapping_id for m in buckets[1]] == [3, 4, 5]

    def test_iteration_yields_buckets(self, paper_example):
        tree = PartitionTree(["Person.addr"])
        tree.extend(paper_example.mappings)
        assert len(list(tree)) == 2

    def test_unmatched_attribute_forms_its_own_bucket(self, paper_example):
        # m5 does not match pname, so it must not be grouped with m1-m4.
        partitions = partition(["Person.pname"], paper_example.mappings)
        assert ids(partitions) == [[1, 2, 3, 4], [5]]


class TestPartitionHelpers:
    def test_empty_attribute_list_is_single_partition(self, paper_example):
        partitions = partition([], paper_example.mappings)
        assert len(partitions) == 1
        assert len(partitions[0]) == 5

    def test_empty_mapping_list(self):
        assert partition(["T.a"], []) == []
        assert partition([], []) == []

    def test_naive_partition_agrees_with_tree(self, paper_example):
        for attributes in (
            ["Person.pname"],
            ["Person.addr", "Person.phone"],
            ["Person.pname", "Person.addr", "Person.phone", "Person.nation"],
        ):
            assert ids(partition(attributes, paper_example.mappings)) == ids(
                partition_naive(attributes, paper_example.mappings)
            )

    def test_naive_partition_supports_cover_keys(self, paper_example):
        keys = [CoverKey("Order", ("Order.total", "Order.item"))]
        assert ids(partition(keys, paper_example.mappings)) == ids(
            partition_naive(keys, paper_example.mappings)
        )

    def test_represent_skips_empty_groups(self):
        assert represent([[]]) == []

    def test_represent_preserves_correspondences(self, paper_example):
        partitions = partition(["Person.addr"], paper_example.mappings)
        representatives = represent(partitions)
        assert representatives[0].correspondences == paper_example.mappings[0].correspondences


class TestScenarioPartitioning:
    def test_partitions_cover_all_mappings_exactly_once(self, excel_scenario):
        attributes = ["PO.telephone", "PO.company", "Item.quantity"]
        partitions = partition(attributes, excel_scenario.mappings)
        seen = [m.mapping_id for bucket in partitions for m in bucket]
        assert sorted(seen) == sorted(m.mapping_id for m in excel_scenario.mappings)

    def test_partition_count_bounded_by_mappings(self, excel_scenario):
        attributes = [a.qualified for a in excel_scenario.target_schema.attributes][:10]
        partitions = partition(attributes, excel_scenario.mappings)
        assert 1 <= len(partitions) <= excel_scenario.h

    def test_same_partition_means_same_signature(self, excel_scenario):
        attributes = ["PO.telephone", "PO.invoiceTo"]
        for bucket in partition(attributes, excel_scenario.mappings):
            signatures = {m.signature(attributes) for m in bucket}
            assert len(signatures) == 1
