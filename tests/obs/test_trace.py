"""Unit tests for the zero-dependency tracer (span trees, exporters, ambient)."""

from __future__ import annotations

import json
import threading

from repro.obs import Span, Tracer, activate, current_tracer


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", engine="columnar") as root:
            with tracer.span("child-a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b", rows=3):
                pass
        assert len(tracer) == 1
        assert tracer.roots[0] is root
        assert [child.name for child in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.attributes == {"engine": "columnar"}
        assert root.children[1].attributes == {"rows": 3}

    def test_walk_is_depth_first_parents_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [span.name for span in tracer.roots[0].walk()]
        assert names == ["a", "b", "c", "d"]

    def test_find_returns_first_match_or_none(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("op:select"):
                pass
        root = tracer.roots[0]
        assert root.find("op:select").name == "op:select"
        assert root.find("op:join") is None

    def test_durations_are_measured_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        assert outer.duration > 0
        assert outer.children[0].duration <= outer.duration

    def test_span_attributes_refinable_while_open(self):
        tracer = Tracer()
        with tracer.span("op:select", rows_in=10) as span:
            span.attributes["rows_out"] = 4
        assert tracer.roots[0].attributes == {"rows_in": 10, "rows_out": 4}

    def test_sibling_roots_accumulate(self):
        tracer = Tracer()
        for index in range(3):
            with tracer.span(f"query-{index}"):
                pass
        assert [root.name for root in tracer.roots] == [
            "query-0",
            "query-1",
            "query-2",
        ]

    def test_roots_are_bounded(self):
        tracer = Tracer(max_roots=4)
        for index in range(10):
            with tracer.span(f"q{index}"):
                pass
        assert len(tracer) == 4
        assert [root.name for root in tracer.roots] == ["q6", "q7", "q8", "q9"]

    def test_clear_drops_finished_roots(self):
        tracer = Tracer()
        with tracer.span("done"):
            pass
        tracer.clear()
        assert len(tracer) == 0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("root"):
                with tracer.span("fails"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.current() is None
        assert len(tracer) == 1
        assert tracer.roots[0].children[0].name == "fails"


class TestEvents:
    def test_event_lands_on_innermost_span(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("inner"):
                tracer.event("cache", outcome="hit")
        inner = tracer.roots[0].children[0]
        assert len(inner.events) == 1
        assert inner.events[0]["name"] == "cache"
        assert inner.events[0]["outcome"] == "hit"
        assert inner.events[0]["at"] >= 0
        assert tracer.roots[0].events == []

    def test_event_outside_any_span_is_a_noop(self):
        tracer = Tracer()
        tracer.event("orphan", x=1)  # must not raise
        assert len(tracer) == 0


class TestThreadPropagation:
    def test_worker_thread_adopts_parent_via_attach(self):
        tracer = Tracer()
        with tracer.span("op:join") as parent:

            def work():
                with activate(tracer), tracer.attach(parent):
                    with tracer.span("morsel", shard=0):
                        current_tracer().event("kernel", engaged=True)

            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
        root = tracer.roots[0]
        assert [child.name for child in root.children] == ["morsel"]
        assert root.children[0].events[0]["name"] == "kernel"

    def test_attach_none_is_a_noop(self):
        tracer = Tracer()
        with tracer.attach(None):
            assert tracer.current() is None

    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def work(name):
            with tracer.span(name):
                seen[name] = tracer.current().name

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)]
        with tracer.span("main"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert tracer.current().name == "main"
        assert seen == {f"t{i}": f"t{i}" for i in range(4)}
        # Each thread's span became its own root — no cross-thread nesting.
        assert sorted(root.name for root in tracer.roots) == [
            "main",
            "t0",
            "t1",
            "t2",
            "t3",
        ]


class TestAmbientTracer:
    def test_disabled_default_is_none(self):
        assert current_tracer() is None

    def test_activate_sets_and_restores(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            inner = Tracer()
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_activate_is_thread_local(self):
        tracer = Tracer()
        observed = []

        def work():
            observed.append(current_tracer())

        with activate(tracer):
            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
        assert observed == [None]


class TestExporters:
    def _sample_tracer(self):
        tracer = Tracer()
        with tracer.span("session.query", query="Q1"):
            with tracer.span("op:select", rows_in=10, rows_out=4):
                tracer.event("cache", outcome="miss")
        return tracer

    def test_jsonl_round_trips_with_parent_links(self):
        tracer = self._sample_tracer()
        lines = [json.loads(line) for line in tracer.export_jsonl().splitlines()]
        assert [record["name"] for record in lines] == ["session.query", "op:select"]
        root, child = lines
        assert root["parent"] is None
        assert child["parent"] == root["id"]
        assert child["attributes"] == {"rows_in": 10, "rows_out": 4}
        assert child["events"][0]["outcome"] == "miss"
        assert child["dur_us"] >= 0

    def test_jsonl_ids_dense_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        lines = [json.loads(line) for line in tracer.export_jsonl().splitlines()]
        assert [(r["id"], r["name"]) for r in lines] == [
            (0, "a"),
            (1, "b"),
            (2, "c"),
            (3, "d"),
        ]
        assert [r["parent"] for r in lines] == [None, 0, 1, 0]

    def test_jsonl_empty_tracer_is_empty_string(self):
        assert Tracer().export_jsonl() == ""

    def test_chrome_trace_round_trips_through_json_loads(self):
        tracer = self._sample_tracer()
        document = json.loads(tracer.chrome_trace())
        events = document["traceEvents"]
        assert [event["name"] for event in events] == ["session.query", "op:select"]
        assert {event["ph"] for event in events} == {"X"}
        assert all(event["pid"] == 1 for event in events)
        assert events[1]["args"] == {"rows_in": 10, "rows_out": 4}
        assert document["displayTimeUnit"] == "ms"

    def test_chrome_trace_one_tid_per_root(self):
        tracer = Tracer()
        for _ in range(2):
            with tracer.span("q"):
                pass
        events = json.loads(tracer.chrome_trace())["traceEvents"]
        assert [event["tid"] for event in events] == [1, 2]

    def test_non_json_attributes_stringified(self):
        tracer = Tracer()
        with tracer.span("root", shape=(1, 2)):
            pass
        record = json.loads(tracer.export_jsonl().splitlines()[0])
        assert record["attributes"]["shape"] == "(1, 2)"
        assert json.loads(tracer.chrome_trace())  # must stay serializable

    def test_to_dict_nests(self):
        tracer = self._sample_tracer()
        rendered = tracer.roots[0].to_dict()
        assert rendered["name"] == "session.query"
        assert rendered["children"][0]["name"] == "op:select"
        assert rendered["children"][0]["events"][0]["name"] == "cache"
        assert rendered["duration_ms"] >= 0


def test_span_is_slotted():
    span = Span("x")
    try:
        span.arbitrary = 1
    except AttributeError:
        return
    raise AssertionError("Span should use __slots__ (per-operator memory)")
