"""Unit tests for the metrics registry: instruments, snapshots, renderers."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("hits", help="plan-cache hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("hits")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_set_total_mirrors_legacy_absolute(self):
        counter = MetricsRegistry().counter("ops")
        counter.inc(5)
        counter.set_total(42)
        assert counter.value == 42

    def test_thread_safe_increments(self):
        counter = MetricsRegistry().counter("races")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 12

    def test_callback_makes_gauge_read_through(self):
        # The callback is evaluated at *collection* time: every read — and
        # therefore every registry.snapshot(), however it is triggered —
        # observes the live value, not whatever set() last stored.
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        live = {"value": 0}
        gauge.set(99)  # stale explicit value; the callback must win
        gauge.set_callback(lambda: live["value"])
        assert gauge.value == 0
        live["value"] = 7
        assert gauge.value == 7
        assert registry.snapshot().value("depth") == 7
        live["value"] = 3
        assert registry.snapshot().value("depth") == 3

    def test_callback_failure_falls_back_to_stored_value(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)

        def dying():
            raise RuntimeError("pool is gone")

        gauge.set_callback(dying)
        assert gauge.value == 5  # a dying source must not kill the scrape

    def test_disabled_registry_noop_accepts_callback(self):
        registry = MetricsRegistry(enabled=False)
        registry.gauge("depth").set_callback(lambda: 1)  # must not raise
        assert "depth" not in registry.snapshot()


class TestHistogram:
    def test_buckets_are_cumulative_le(self):
        histogram = MetricsRegistry().histogram(
            "lat", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        series = histogram.series()
        assert series["buckets"] == {"0.01": 1, "0.1": 3, "1.0": 4, "+Inf": 5}
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(5.605)

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus ``le`` is inclusive: observe(bound) counts in that bucket.
        histogram = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(0.1)
        assert histogram.series()["buckets"]["0.1"] == 1

    def test_default_buckets_span_sub_ms_to_multi_second(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.0005
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            MetricsRegistry().histogram("lat", buckets=())

    def test_memory_is_bounded(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(1.0,))
        for _ in range(10_000):
            histogram.observe(0.5)
        # Fixed storage: one count per bound plus +Inf, sum and count.
        assert histogram.count == 10_000
        assert len(histogram.series()["buckets"]) == 2


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")
        assert registry.counter("hits", labels={"k": "a"}) is not registry.counter(
            "hits", labels={"k": "b"}
        )
        assert len(registry) == 3

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        first = registry.counter("c", labels={"a": "1", "b": "2"})
        second = registry.counter("c", labels={"b": "2", "a": "1"})
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("dual")

    def test_disabled_registry_hands_out_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("hits")
        counter.inc()
        counter.set_total(9)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.5)
        assert len(registry) == 0
        snapshot = registry.snapshot()
        assert snapshot.enabled is False
        assert snapshot.data == {}

    def test_disabled_noop_is_shared(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is registry.histogram("b")


class TestSnapshot:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", help="cache hits").inc(3)
        registry.counter(
            "repro_lookups_total", labels={"outcome": "hit"}
        ).inc(3)
        registry.counter(
            "repro_lookups_total", labels={"outcome": "miss"}
        ).inc(1)
        registry.gauge("repro_entries", help="live entries").set(7)
        registry.histogram(
            "repro_seconds", help="latency", buckets=(0.1, 1.0)
        ).observe(0.05)
        return registry

    def test_snapshot_is_immutable_copy(self):
        registry = self._populated()
        snapshot = registry.snapshot()
        registry.counter("repro_hits_total").inc(100)
        assert snapshot.value("repro_hits_total") == 3

    def test_value_lookup_by_labels(self):
        snapshot = self._populated().snapshot()
        assert snapshot.value("repro_lookups_total", {"outcome": "hit"}) == 3
        assert snapshot.value("repro_lookups_total", {"outcome": "miss"}) == 1
        assert "repro_entries" in snapshot
        assert "missing" not in snapshot
        with pytest.raises(KeyError, match="no metric named"):
            snapshot.value("missing")
        with pytest.raises(KeyError, match="no series"):
            snapshot.value("repro_lookups_total", {"outcome": "other"})

    def test_histogram_value_returns_series_dict(self):
        snapshot = self._populated().snapshot()
        series = snapshot.value("repro_seconds")
        assert series["count"] == 1
        assert series["buckets"]["0.1"] == 1

    def test_to_json_round_trips(self):
        snapshot = self._populated().snapshot()
        document = json.loads(snapshot.to_json())
        assert document["enabled"] is True
        assert document["metrics"]["repro_hits_total"]["type"] == "counter"
        assert document["metrics"]["repro_seconds"]["type"] == "histogram"

    def test_to_prometheus_format(self):
        text = self._populated().snapshot().to_prometheus()
        lines = text.strip().splitlines()
        assert "# HELP repro_hits_total cache hits" in lines
        assert "# TYPE repro_hits_total counter" in lines
        assert "repro_hits_total 3" in lines
        assert 'repro_lookups_total{outcome="hit"} 3' in lines
        assert 'repro_lookups_total{outcome="miss"} 1' in lines
        assert "# TYPE repro_entries gauge" in lines
        assert "repro_entries 7" in lines
        assert "# TYPE repro_seconds histogram" in lines
        assert 'repro_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_seconds_sum 0.05" in lines
        assert "repro_seconds_count 1" in lines
        # Integral floats render without the trailing .0 (diff-friendly).
        assert "repro_hits_total 3.0" not in lines

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"q": 'a"b\nc'}).inc()
        text = registry.snapshot().to_prometheus()
        assert r'c{q="a\"b\nc"} 1' in text

    def test_series_sorted_for_stable_output(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"k": "z"}).inc()
        registry.counter("c", labels={"k": "a"}).inc()
        series = registry.snapshot().data["c"]["series"]
        assert [entry["labels"]["k"] for entry in series] == ["a", "z"]
