"""Unit tests for the shared BENCH_*.json perf-artifact serializer."""

from __future__ import annotations

import json

from repro.bench.harness import (
    ExperimentPoint,
    ExperimentSeries,
    write_series_artifact,
)
from repro.obs import (
    REPO_ROOT,
    SCHEMA_VERSION,
    MetricsRegistry,
    series_payload,
    snapshot_payload,
    write_bench_artifact,
)


def _sample_series():
    series = ExperimentSeries(title="sweep", x_label="selections")
    series.add(
        ExperimentPoint(
            method="e-basic",
            x=1,
            seconds=0.25,
            source_operators=10,
            source_queries=4,
            answers=3,
            details={"rows_scanned": 100},
        )
    )
    series.add(
        ExperimentPoint(
            method="e-basic",
            x=2,
            seconds=0.5,
            source_operators=20,
            source_queries=8,
            answers=3,
        )
    )
    return series


class TestWriteBenchArtifact:
    def test_envelope_and_file_shape(self, tmp_path):
        path = write_bench_artifact(
            "smoke", {"series": [{"x": 1}], "gates": {"ok": True}}, root=tmp_path
        )
        assert path == tmp_path / "BENCH_smoke.json"
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        document = json.loads(text)
        assert document["benchmark"] == "smoke"
        assert document["schema"] == SCHEMA_VERSION
        assert document["series"] == [{"x": 1}]
        assert document["gates"] == {"ok": True}

    def test_payload_cannot_shadow_envelope(self, tmp_path):
        path = write_bench_artifact(
            "smoke", {"benchmark": "spoof", "schema": 99, "x": 1}, root=tmp_path
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["benchmark"] == "smoke"
        assert document["schema"] == SCHEMA_VERSION
        assert document["x"] == 1

    def test_non_json_values_coerced(self, tmp_path):
        path = write_bench_artifact(
            "smoke",
            {"workload": {"counts": (1, 2, 3), "tags": {"a"}, "path": REPO_ROOT}},
            root=tmp_path,
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["workload"]["counts"] == [1, 2, 3]
        assert document["workload"]["tags"] == [str(t) for t in {"a"}]
        assert document["workload"]["path"] == str(REPO_ROOT)

    def test_no_timestamps_in_envelope(self, tmp_path):
        # Two writes of the same payload must produce identical bytes — the
        # artifacts are meant to diff cleanly across runs.
        first = write_bench_artifact("a", {"x": 1}, root=tmp_path).read_bytes()
        second = write_bench_artifact("a", {"x": 1}, root=tmp_path).read_bytes()
        assert first == second

    def test_default_root_is_repo_root(self):
        assert (REPO_ROOT / "src" / "repro" / "obs" / "artifacts.py").exists()


class TestSeriesPayload:
    def test_series_payload_shape(self):
        payload = series_payload(_sample_series())
        assert payload["title"] == "sweep"
        assert payload["x_label"] == "selections"
        assert payload["methods"] == ["e-basic"]
        assert payload["x_values"] == [1, 2]
        assert [point["x"] for point in payload["points"]] == [1, 2]
        assert payload["points"][0]["details"] == {"rows_scanned": 100}

    def test_write_series_artifact_single(self, tmp_path):
        path = write_series_artifact(
            "sweep",
            _sample_series(),
            gates={"ok": True},
            root=tmp_path,
            workload={"h": 60},
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["benchmark"] == "sweep"
        assert document["series"]["title"] == "sweep"
        assert document["gates"] == {"ok": True}
        assert document["workload"] == {"h": 60}

    def test_write_series_artifact_sequence(self, tmp_path):
        path = write_series_artifact(
            "multi", [_sample_series(), _sample_series()], root=tmp_path
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(document["series"], list)
        assert len(document["series"]) == 2


class TestSnapshotPayload:
    def test_snapshot_embeds(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total").inc(3)
        payload = snapshot_payload(registry.snapshot())
        assert payload["enabled"] is True
        assert payload["metrics"]["repro_hits_total"]["series"][0]["value"] == 3
