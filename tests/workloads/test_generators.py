"""Unit tests for the parameterised workload generators."""

import pytest

from repro.datagen.target_schemas import target_schema
from repro.relational.algebra import Product, Select
from repro.workloads.generators import (
    SELECTION_CONDITIONS,
    product_query,
    selection_attributes,
    selection_query,
)


class TestSelectionQueries:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5])
    def test_operator_count_matches_parameter(self, count):
        query = selection_query(count, target_schema("Excel"))
        selects = [n for n in query.plan.operators() if isinstance(n, Select)]
        assert len(selects) == count
        assert query.attribute_count == count
        assert query.name == f"sel-{count}"

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            selection_query(0, target_schema("Excel"))
        with pytest.raises(ValueError):
            selection_query(len(SELECTION_CONDITIONS) + 1, target_schema("Excel"))

    def test_selection_attributes_helper(self):
        assert selection_attributes(2) == ["telephone", "invoiceTo"]
        with pytest.raises(ValueError):
            selection_attributes(0)

    def test_attributes_exist_in_target_schema(self):
        schema = target_schema("Excel")
        for attribute, _ in SELECTION_CONDITIONS:
            assert schema.relation("PO").has_attribute(attribute)

    def test_smaller_queries_are_prefixes(self):
        small = selection_query(2, target_schema("Excel"))
        large = selection_query(4, target_schema("Excel"))
        small_attrs = {a.qualified for a in small.referenced_attributes}
        large_attrs = {a.qualified for a in large.referenced_attributes}
        assert small_attrs <= large_attrs


class TestProductQueries:
    @pytest.mark.parametrize("products", [1, 2, 3])
    def test_product_count_matches_parameter(self, products):
        query = product_query(products, target_schema("Excel"))
        product_nodes = [n for n in query.plan.operators() if isinstance(n, Product)]
        assert len(product_nodes) == products
        assert len(query.aliases) == products + 1
        assert query.name == f"prod-{products}"

    def test_invalid_product_count_rejected(self):
        with pytest.raises(ValueError):
            product_query(0, target_schema("Excel"))

    def test_aliases_are_distinct_scans_of_po(self):
        query = product_query(2, target_schema("Excel"))
        assert set(query.aliases.values()) == {"PO"}
        assert set(query.aliases) == {"PO1", "PO2", "PO3"}

    def test_join_conditions_link_consecutive_scans(self):
        query = product_query(2, target_schema("Excel"))
        canonical = query.plan.canonical()
        assert "PO1.orderNum" in canonical
        assert "PO2.orderNum" in canonical and "PO3.orderNum" in canonical
