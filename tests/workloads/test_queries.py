"""Unit tests for the Table III query workload."""

import pytest

from repro.datagen.target_schemas import target_schema
from repro.relational.algebra import Aggregate, Product, Project, Select
from repro.workloads.queries import PAPER_QUERIES, paper_queries, paper_query, queries_for_target


class TestQueryCatalogue:
    def test_ten_queries(self):
        assert len(PAPER_QUERIES) == 10
        assert [spec.query_id for spec in paper_queries()] == [f"Q{i}" for i in range(1, 11)]

    def test_queries_per_target(self):
        assert [spec.query_id for spec in queries_for_target("Excel")] == ["Q1", "Q2", "Q3", "Q4", "Q5"]
        assert [spec.query_id for spec in queries_for_target("Noris")] == ["Q6", "Q7"]
        assert [spec.query_id for spec in queries_for_target("Paragon")] == ["Q8", "Q9", "Q10"]

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            paper_query("Q99", target_schema("Excel"))

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="defined for"):
            paper_query("Q1", target_schema("Noris"))

    def test_lookup_is_case_insensitive(self):
        assert paper_query("q1", target_schema("Excel")).name == "Q1"

    @pytest.mark.parametrize("spec", paper_queries(), ids=lambda spec: spec.query_id)
    def test_every_query_builds_against_its_schema(self, spec):
        query = spec.build(target_schema(spec.target))
        assert query.name == spec.query_id
        assert query.operator_count >= 1
        assert query.attribute_count >= 1


class TestQueryShapes:
    def test_q1_is_three_stacked_selections(self):
        query = paper_query("Q1", target_schema("Excel"))
        kinds = [type(node).__name__ for node in query.plan.operators()]
        assert kinds == ["Select", "Select", "Select"]
        assert query.attribute_count == 3

    def test_q2_has_product_and_two_selections(self):
        query = paper_query("Q2", target_schema("Excel"))
        kinds = [type(node).__name__ for node in query.plan.operators()]
        assert kinds.count("Select") == 2
        assert kinds.count("Product") == 1

    def test_q4_contains_self_joins(self):
        query = paper_query("Q4", target_schema("Excel"))
        assert set(query.aliases) == {"PO1", "PO2", "Item1", "Item2"}
        kinds = [type(node).__name__ for node in query.plan.operators()]
        assert kinds.count("Product") == 3

    def test_q5_and_q10_are_counts(self):
        for query_id, target in (("Q5", "Excel"), ("Q10", "Paragon")):
            query = paper_query(query_id, target_schema(target))
            assert isinstance(query.plan, Aggregate)
            assert query.plan.function == "COUNT"
            assert query.is_aggregate

    def test_q7_projects_two_attributes(self):
        query = paper_query("Q7", target_schema("Noris"))
        assert isinstance(query.plan, Project)
        assert [a.qualified for a in query.output_attributes] == [
            "Item.itemNum",
            "Item.unitPrice",
        ]

    def test_q9_is_sum_over_projection(self):
        query = paper_query("Q9", target_schema("Paragon"))
        assert isinstance(query.plan, Aggregate)
        assert query.plan.function == "SUM"
        assert isinstance(query.plan.child, Project)

    def test_selection_counts_match_table_iii(self):
        select_counts = {
            "Q1": 3,
            "Q5": 4,
            "Q6": 3,
            "Q8": 3,
        }
        for query_id, expected in select_counts.items():
            spec = PAPER_QUERIES[query_id]
            query = spec.build(target_schema(spec.target))
            selects = [n for n in query.plan.operators() if isinstance(n, Select)]
            assert len(selects) == expected, query_id
