"""Unit tests for the deterministic data generator."""

import pytest

from repro.datagen.generator import GeneratorConfig, approximate_size_mb, generate_source_instance
from repro.datagen.names import PERSON_NAMES, PHONE_NUMBERS
from repro.datagen.source_schema import source_schema


class TestGeneratorConfig:
    def test_cardinalities_scale_linearly(self):
        config = GeneratorConfig()
        small = config.cardinalities(0.1)
        large = config.cardinalities(0.2)
        assert large["orders"] == pytest.approx(2 * small["orders"], rel=0.1)
        assert large["lineitem"] == large["orders"] * config.lineitems_per_order

    def test_minimum_cardinalities(self):
        cards = GeneratorConfig().cardinalities(0.0001)
        assert cards["orders"] >= 10
        assert cards["customer"] >= 5

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig().cardinalities(0)


class TestGenerateSourceInstance:
    def test_all_relations_populated(self):
        database = generate_source_instance(scale=0.02)
        assert set(database.relation_names) == set(source_schema().relation_names)
        for _, relation in database:
            assert len(relation) > 0

    def test_deterministic_for_same_seed(self):
        first = generate_source_instance(scale=0.02, config=GeneratorConfig(seed=11))
        second = generate_source_instance(scale=0.02, config=GeneratorConfig(seed=11))
        assert first.relation("orders").rows == second.relation("orders").rows

    def test_different_seeds_differ(self):
        first = generate_source_instance(scale=0.02, config=GeneratorConfig(seed=1))
        second = generate_source_instance(scale=0.02, config=GeneratorConfig(seed=2))
        assert first.relation("orders").rows != second.relation("orders").rows

    def test_row_counts_match_config(self):
        config = GeneratorConfig()
        database = generate_source_instance(scale=0.05, config=config)
        cards = config.cardinalities(0.05)
        assert len(database.relation("orders")) == cards["orders"]
        assert len(database.relation("lineitem")) == cards["lineitem"]

    def test_foreign_keys_reference_existing_rows(self):
        database = generate_source_instance(scale=0.02)
        customer_keys = {row[0] for row in database.relation("customer")}
        for row in database.relation("orders"):
            assert row[1] in customer_keys
        order_keys = {row[0] for row in database.relation("orders")}
        for row in database.relation("lineitem"):
            assert row[0] in order_keys

    def test_query_constants_occur_in_the_data(self):
        # The Table III constants must be satisfiable, otherwise the paper's
        # queries degenerate to empty answers for every mapping.
        database = generate_source_instance(scale=0.05)
        invoice_names = {row[6] for row in database.relation("orders")}
        assert PERSON_NAMES[0] in invoice_names
        phones = {row[3] for row in database.relation("customer")}
        assert PHONE_NUMBERS[0] in phones
        item_numbers = {row[1] for row in database.relation("lineitem")}
        assert "00001" in item_numbers

    def test_scaling_grows_the_instance(self):
        small = generate_source_instance(scale=0.02)
        large = generate_source_instance(scale=0.08)
        assert large.total_rows > small.total_rows

    def test_approximate_size_is_monotonic(self):
        small = generate_source_instance(scale=0.02)
        large = generate_source_instance(scale=0.08)
        assert approximate_size_mb(large) > approximate_size_mb(small)
