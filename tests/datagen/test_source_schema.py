"""Unit tests for the purchase-order source schema."""

from repro.datagen.source_schema import (
    SOURCE_LINK_PAIRS,
    source_attribute_count,
    source_links,
    source_schema,
)


class TestSourceSchema:
    def test_has_eight_relations(self):
        assert len(source_schema()) == 8

    def test_attribute_count_matches_paper(self):
        # The paper's TPC-H source schema has 46 attributes.
        assert source_attribute_count() == 46

    def test_expected_relations_present(self):
        names = set(source_schema().relation_names)
        assert names == {
            "region",
            "nation",
            "customer",
            "supplier",
            "part",
            "partsupp",
            "orders",
            "lineitem",
        }

    def test_ambiguous_phone_attributes_exist(self):
        # The ambiguity the paper's Figure 1 illustrates (several phone-like
        # attributes) must be present for possible mappings to differ.
        schema = source_schema()
        phones = [a.qualified for a in schema.attributes if "phone" in a.name]
        assert len(phones) >= 2

    def test_schema_is_cached(self):
        assert source_schema() is source_schema()


class TestSourceLinks:
    def test_every_link_references_existing_attributes(self):
        schema = source_schema()
        for left_rel, left_attr, right_rel, right_attr in SOURCE_LINK_PAIRS:
            assert schema.relation(left_rel).has_attribute(left_attr)
            assert schema.relation(right_rel).has_attribute(right_attr)

    def test_links_are_bidirectional(self):
        links = source_links()
        assert links.between("orders", "customer")
        assert links.between("customer", "orders")

    def test_unrelated_relations_have_no_link(self):
        links = source_links()
        assert links.between("region", "lineitem") == []

    def test_link_count(self):
        assert len(source_links()) == len(SOURCE_LINK_PAIRS)
