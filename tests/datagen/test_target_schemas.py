"""Unit tests for the Excel/Noris/Paragon target schemas."""

import pytest

from repro.datagen.target_schemas import TARGET_SCHEMA_NAMES, target_schema


class TestTargetSchemas:
    @pytest.mark.parametrize("name", TARGET_SCHEMA_NAMES)
    def test_each_schema_has_po_and_item(self, name):
        schema = target_schema(name)
        assert schema.has_relation("PO")
        assert schema.has_relation("Item")

    def test_case_insensitive_lookup(self):
        assert target_schema("excel").name == "Excel"

    def test_unknown_schema_rejected(self):
        with pytest.raises(KeyError):
            target_schema("Oracle")

    def test_schemas_are_cached(self):
        assert target_schema("Excel") is target_schema("Excel")

    @pytest.mark.parametrize(
        "name,attributes",
        [
            ("Excel", ["PO.telephone", "PO.priority", "PO.invoiceTo", "Item.quantity", "Item.itemNum", "PO.orderNum", "Item.orderNum", "PO.company", "PO.deliverToStreet"]),
            ("Noris", ["PO.telephone", "PO.invoiceTo", "PO.deliverToStreet", "PO.deliverTo", "PO.orderNum", "Item.itemNum", "Item.unitPrice"]),
            ("Paragon", ["PO.billTo", "PO.shipToAddress", "PO.shipToPhone", "PO.telephone", "PO.billToAddress", "Item.itemNum", "Item.price", "PO.invoiceTo"]),
        ],
    )
    def test_table_iii_query_attributes_exist(self, name, attributes):
        schema = target_schema(name)
        for qualified in attributes:
            assert schema.has_attribute(qualified), qualified

    def test_schema_sizes_roughly_match_paper(self):
        # The paper's Excel/Noris/Paragon schemas have 48/66/69 attributes;
        # the look-alikes are smaller but keep the same ordering of sizes.
        sizes = {name: target_schema(name).attribute_count for name in TARGET_SCHEMA_NAMES}
        assert sizes["Excel"] >= 40
        assert sizes["Noris"] >= 40
        assert sizes["Paragon"] >= 40
