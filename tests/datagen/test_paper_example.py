"""Unit tests for the Figures 1-3 running example."""

import pytest

from repro.datagen.paper_example import build_paper_example


class TestPaperExample:
    def test_source_schema_relations(self, paper_example):
        assert set(paper_example.source_schema.relation_names) == {"Customer", "C_Order", "Nation"}

    def test_target_schema_relations(self, paper_example):
        assert set(paper_example.target_schema.relation_names) == {"Person", "Order"}

    def test_customer_rows_match_figure_2(self, paper_example):
        customer = paper_example.database.relation("Customer")
        assert len(customer) == 3
        names = [row[1] for row in customer]
        assert names == ["Alice", "Bob", "Cindy"]

    def test_five_mappings_with_figure_3_probabilities(self, paper_example):
        probabilities = [m.probability for m in paper_example.mappings]
        assert probabilities == [0.3, 0.2, 0.2, 0.2, 0.1]
        assert paper_example.mappings.total_probability == pytest.approx(1.0)

    def test_shared_correspondences_as_in_figure_3(self, paper_example):
        # (cname, pname) and (ophone, phone) are shared by four of the five
        # mappings — the observation that motivates the sharing algorithms.
        from repro.core.metrics import correspondence_frequencies

        frequencies = correspondence_frequencies(paper_example.mappings)
        assert frequencies[("Person.pname", "Customer.cname")] == 4
        assert frequencies[("Person.phone", "Customer.ophone")] == 4

    def test_links_join_customer_and_nation(self, paper_example):
        assert paper_example.links.between("Customer", "Nation")

    def test_example_queries_build(self, paper_example):
        assert paper_example.q0().operator_count == 2
        assert paper_example.q1().name == "q1"
        assert paper_example.q2().operator_count == 3
        assert paper_example.q_phone_by_addr().output_attributes[0].qualified == "Person.phone"

    def test_build_is_reproducible(self):
        first = build_paper_example()
        second = build_paper_example()
        assert first.mappings[0].correspondences == second.mappings[0].correspondences
        assert first.database.relation("Customer").rows == second.database.relation("Customer").rows
