"""Unit tests for the one-call scenario builder."""

import pytest

from repro.datagen.scenario import build_scenario


class TestBuildScenario:
    def test_scenario_components(self, excel_scenario):
        assert excel_scenario.source_schema.name == "SourcePO"
        assert excel_scenario.target_schema.name == "Excel"
        assert excel_scenario.database.total_rows > 0
        assert excel_scenario.h == 16
        assert excel_scenario.links is not None

    def test_mapping_probabilities_sum_to_one(self, excel_scenario):
        assert excel_scenario.mappings.total_probability == pytest.approx(1.0)

    def test_with_mappings_restricts_and_renormalises(self, excel_scenario):
        restricted = excel_scenario.with_mappings(5)
        assert restricted.h == 5
        assert restricted.mappings.total_probability == pytest.approx(1.0)
        # The original scenario is unchanged (the matching is shared).
        assert excel_scenario.h == 16

    def test_with_database_swaps_instance(self, excel_scenario):
        from repro.datagen.generator import generate_source_instance

        database = generate_source_instance(scale=0.02)
        resized = excel_scenario.with_database(database, 0.02)
        assert resized.database is database
        assert resized.scale == 0.02
        assert resized.mappings is excel_scenario.mappings

    def test_matching_is_cached_across_builds(self):
        first = build_scenario(target="Excel", h=8, scale=0.01, seed=1)
        second = build_scenario(target="Excel", h=8, scale=0.02, seed=1)
        assert first.match_result is second.match_result
        assert first.mappings is second.mappings

    def test_describe_mentions_key_facts(self, excel_scenario):
        text = excel_scenario.describe()
        assert "Excel" in text
        assert "h=16" in text

    def test_target_choice(self, noris_scenario, paragon_scenario):
        assert noris_scenario.target_schema.name == "Noris"
        assert paragon_scenario.target_schema.name == "Paragon"

    def test_mappings_overlap_heavily(self, excel_scenario):
        # Figure 9: the o-ratio of real matchings sits around 70-80%.
        assert excel_scenario.mappings.o_ratio() > 0.5
