"""Unit tests for the predicate AST."""

import pytest

from repro.relational.expressions import ColumnRef, col, lit
from repro.relational.predicates import (
    And,
    Between,
    ColumnEquals,
    Comparison,
    Equals,
    GreaterEqual,
    GreaterThan,
    In,
    LessEqual,
    LessThan,
    Not,
    NotEquals,
    Or,
    TruePredicate,
    conjunction,
)
from repro.relational.relation import Relation


@pytest.fixture()
def relation():
    return Relation(["R.a", "R.b", "R.c"], [(1, "x", 10.0), (5, "y", None)])


def row(relation, index=0):
    return relation.rows[index]


class TestComparisons:
    def test_equals_true(self, relation):
        assert Equals(col("R.a"), 1).evaluate(relation, row(relation))

    def test_equals_false(self, relation):
        assert not Equals(col("R.a"), 2).evaluate(relation, row(relation))

    def test_equals_with_numeric_string_constant(self, relation):
        assert Equals(col("R.a"), "1").evaluate(relation, row(relation))

    def test_not_equals(self, relation):
        assert NotEquals(col("R.b"), "y").evaluate(relation, row(relation))

    def test_less_than(self, relation):
        assert LessThan(col("R.a"), 2).evaluate(relation, row(relation))
        assert not LessThan(col("R.a"), 1).evaluate(relation, row(relation))

    def test_less_equal(self, relation):
        assert LessEqual(col("R.a"), 1).evaluate(relation, row(relation))

    def test_greater_than(self, relation):
        assert GreaterThan(col("R.c"), 5).evaluate(relation, row(relation))

    def test_greater_equal(self, relation):
        assert GreaterEqual(col("R.c"), 10.0).evaluate(relation, row(relation))

    def test_null_operand_is_false(self, relation):
        assert not Equals(col("R.c"), 10.0).evaluate(relation, row(relation, 1))
        assert not LessThan(col("R.c"), 99).evaluate(relation, row(relation, 1))

    def test_incomparable_types_are_false(self, relation):
        predicate = Comparison(col("R.b"), "<", lit(("tuple",)))
        assert not predicate.evaluate(relation, row(relation))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(col("a"), "~", lit(1))

    def test_is_column_constant(self):
        assert Equals(col("R.a"), 1).is_column_constant
        assert not ColumnEquals(col("R.a"), col("R.b")).is_column_constant

    def test_is_equi_column(self):
        assert ColumnEquals(col("R.a"), col("S.a")).is_equi_column
        assert not Equals(col("R.a"), 1).is_equi_column
        assert not Comparison(col("R.a"), "<", col("S.a")).is_equi_column

    def test_constant_with_dot_is_literal_not_column(self, relation):
        # Strings containing a dot (addresses, versions) must stay literals.
        predicate = Equals(col("R.b"), "1.5.2")
        assert not predicate.evaluate(relation, row(relation))

    def test_referenced_columns(self):
        predicate = ColumnEquals(col("R.a"), col("S.b"))
        names = [ref.display for ref in predicate.referenced_columns()]
        assert names == ["R.a", "S.b"]

    def test_rename(self, relation):
        predicate = Equals(col("X.a"), 1)
        renamed = predicate.rename(lambda ref: ColumnRef(name=ref.name, qualifier="R"))
        assert renamed.evaluate(relation, row(relation))

    def test_canonical_contains_operator(self):
        assert "=" in Equals(col("R.a"), 1).canonical()


class TestInAndBetween:
    def test_in_true(self, relation):
        assert In(col("R.b"), ("x", "z")).evaluate(relation, row(relation))

    def test_in_false(self, relation):
        assert not In(col("R.b"), ("q",)).evaluate(relation, row(relation))

    def test_in_rename_and_refs(self):
        predicate = In(col("X.a"), (1, 2))
        assert [ref.display for ref in predicate.referenced_columns()] == ["X.a"]
        renamed = predicate.rename(lambda ref: ColumnRef(ref.name, "R"))
        assert renamed.referenced_columns()[0].qualifier == "R"

    def test_between_inclusive(self, relation):
        assert Between(col("R.a"), 1, 5).evaluate(relation, row(relation))
        assert Between(col("R.a"), 0, 1).evaluate(relation, row(relation))

    def test_between_outside(self, relation):
        assert not Between(col("R.a"), 2, 5).evaluate(relation, row(relation))

    def test_between_null_is_false(self, relation):
        assert not Between(col("R.c"), 0, 100).evaluate(relation, row(relation, 1))

    def test_between_canonical(self):
        assert "BETWEEN" in Between(col("R.a"), 1, 2).canonical()


class TestConnectives:
    def test_and(self, relation):
        predicate = And(Equals(col("R.a"), 1), Equals(col("R.b"), "x"))
        assert predicate.evaluate(relation, row(relation))
        assert not predicate.evaluate(relation, row(relation, 1))

    def test_or(self, relation):
        predicate = Or(Equals(col("R.a"), 99), Equals(col("R.b"), "x"))
        assert predicate.evaluate(relation, row(relation))

    def test_not(self, relation):
        assert Not(Equals(col("R.a"), 99)).evaluate(relation, row(relation))

    def test_operators_via_dunder(self, relation):
        predicate = Equals(col("R.a"), 1) & Equals(col("R.b"), "x")
        assert isinstance(predicate, And)
        predicate = Equals(col("R.a"), 1) | Equals(col("R.a"), 2)
        assert isinstance(predicate, Or)
        assert isinstance(~Equals(col("R.a"), 1), Not)

    def test_connective_requires_two_operands(self):
        with pytest.raises(ValueError):
            And(TruePredicate())

    def test_conjuncts_flatten(self):
        predicate = And(And(Equals(col("a"), 1), Equals(col("b"), 2)), Equals(col("c"), 3))
        assert len(predicate.conjuncts()) == 3

    def test_non_and_conjuncts_is_self(self):
        predicate = Equals(col("a"), 1)
        assert predicate.conjuncts() == [predicate]

    def test_canonical_order_independent(self):
        left = And(Equals(col("a"), 1), Equals(col("b"), 2))
        right = And(Equals(col("b"), 2), Equals(col("a"), 1))
        assert left.canonical() == right.canonical()

    def test_equality_and_hash(self):
        left = And(Equals(col("a"), 1), Equals(col("b"), 2))
        same = And(Equals(col("a"), 1), Equals(col("b"), 2))
        assert left == same
        assert hash(left) == hash(same)

    def test_referenced_columns_aggregated(self):
        predicate = Or(Equals(col("R.a"), 1), Equals(col("S.b"), 2))
        assert len(predicate.referenced_columns()) == 2

    def test_rename_propagates(self, relation):
        predicate = And(Equals(col("X.a"), 1), Equals(col("X.b"), "x"))
        renamed = predicate.rename(lambda ref: ColumnRef(ref.name, "R"))
        assert renamed.evaluate(relation, row(relation))


class TestTrueAndConjunction:
    def test_true_predicate(self, relation):
        assert TruePredicate().evaluate(relation, row(relation))
        assert TruePredicate().referenced_columns() == []
        assert TruePredicate().canonical() == "TRUE"
        assert TruePredicate().rename(lambda ref: ref) == TruePredicate()

    def test_conjunction_empty(self):
        assert isinstance(conjunction([]), TruePredicate)

    def test_conjunction_single(self):
        predicate = Equals(col("a"), 1)
        assert conjunction([predicate]) is predicate

    def test_conjunction_many(self):
        predicate = conjunction([Equals(col("a"), 1), Equals(col("b"), 2)])
        assert isinstance(predicate, And)
