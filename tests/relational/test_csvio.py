"""Unit tests for CSV persistence."""

import pytest

from repro.relational.csvio import read_database, read_relation, read_typed_relation, write_database, write_relation
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType


def schema():
    return DatabaseSchema(
        "S",
        [RelationSchema.build("r", [("a", DataType.INTEGER), ("b", DataType.STRING)])],
    )


class TestRelationRoundTrip:
    def test_write_and_read(self, tmp_path):
        relation = Relation(["r.a", "r.b"], [(1, "x"), (2, "y")], name="r")
        path = tmp_path / "r.csv"
        write_relation(relation, path)
        loaded = read_relation(path)
        assert loaded.columns == ("r.a", "r.b")
        assert loaded.rows == [("1", "x"), ("2", "y")]
        assert loaded.name == "r"

    def test_read_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_relation(path)

    def test_typed_read_restores_numbers(self, tmp_path):
        relation = Relation(["r.a", "r.b"], [(1, "x"), (None, "y")], name="r")
        path = tmp_path / "r.csv"
        write_relation(relation, path)
        loaded = read_typed_relation(path, [DataType.INTEGER, DataType.STRING])
        assert loaded.rows == [(1, "x"), (None, "y")]

    def test_typed_read_validates_arity(self, tmp_path):
        path = tmp_path / "r.csv"
        write_relation(Relation(["a"], [(1,)]), path)
        with pytest.raises(ValueError, match="column types"):
            read_typed_relation(path, [DataType.INTEGER, DataType.INTEGER])


class TestDatabaseRoundTrip:
    def test_write_and_read_database(self, tmp_path):
        db_schema = schema()
        database = Database(db_schema)
        database.set_relation(
            "r", Relation.from_schema(db_schema.relation("r"), [(1, "one"), (2, "two")])
        )
        written = write_database(database, tmp_path)
        assert len(written) == 1
        loaded = read_database(db_schema, tmp_path)
        assert loaded.relation("r").rows == [(1, "one"), (2, "two")]

    def test_read_database_skips_missing_files(self, tmp_path):
        loaded = read_database(schema(), tmp_path)
        assert not loaded.has_relation("r")
