"""Unit tests for the version-keyed statistics catalog."""

import pytest

from repro.relational.database import Database
from repro.relational.optimizer.statistics import (
    FAMILY_EMPTY,
    FAMILY_MIXED,
    FAMILY_NUMERIC,
    FAMILY_STRING,
    StatsCatalog,
    column_family,
    hash_compatible,
)
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType

_I = DataType.INTEGER
_S = DataType.STRING


@pytest.fixture()
def database() -> Database:
    schema = DatabaseSchema(
        "S",
        [
            RelationSchema.build("emp", [("id", _I), ("name", _S), ("dept", _I)]),
            RelationSchema.build("void", [("x", _I)]),
        ],
    )
    db = Database(schema)
    db.set_relation(
        "emp",
        Relation.from_schema(
            schema.relation("emp"),
            [(1, "ann", 10), (2, "bob", 10), (3, "cat", 20), (4, None, 30)],
        ),
    )
    db.set_relation("void", Relation.from_schema(schema.relation("void"), []))
    return db


class TestColumnFamily:
    def test_families(self):
        assert column_family([1, 2.5, True]) == FAMILY_NUMERIC
        assert column_family(["a", "b"]) == FAMILY_STRING
        assert column_family([1, "a"]) == FAMILY_MIXED
        assert column_family([None, None]) == FAMILY_EMPTY
        assert column_family([]) == FAMILY_EMPTY

    def test_none_values_ignored(self):
        assert column_family([None, 3, None]) == FAMILY_NUMERIC

    def test_hash_compatibility(self):
        assert hash_compatible(FAMILY_NUMERIC, FAMILY_NUMERIC)
        assert hash_compatible(FAMILY_STRING, FAMILY_STRING)
        assert hash_compatible(FAMILY_EMPTY, FAMILY_NUMERIC)
        assert not hash_compatible(FAMILY_NUMERIC, FAMILY_STRING)
        assert not hash_compatible(FAMILY_MIXED, FAMILY_MIXED)


class TestStatsCatalog:
    def test_row_count(self, database):
        catalog = StatsCatalog(database)
        assert catalog.row_count("emp") == 4
        assert catalog.row_count("void") == 0
        assert catalog.row_count("missing") is None

    def test_column_profile(self, database):
        catalog = StatsCatalog(database)
        stats = catalog.column("emp", "dept")
        assert stats.count == 4
        assert stats.nulls == 0
        assert stats.ndv == 3
        assert stats.family == FAMILY_NUMERIC
        assert stats.minimum == 10 and stats.maximum == 30
        assert sum(count for _, _, count in stats.histogram) == 4

    def test_null_counting(self, database):
        stats = StatsCatalog(database).column("emp", "name")
        assert stats.nulls == 1
        assert stats.ndv == 3
        assert stats.family == FAMILY_STRING

    def test_lazy_collection_is_cached(self, database):
        catalog = StatsCatalog(database)
        first = catalog.column("emp", "dept")
        second = catalog.column("emp", "dept")
        assert first is second
        assert catalog.collections == 1

    def test_mutation_recollects(self, database):
        catalog = StatsCatalog(database)
        catalog.column("emp", "dept")
        relation = database.relation("emp")
        relation.append((5, "eve", 40))
        stats = catalog.column("emp", "dept")
        assert stats.ndv == 4
        assert catalog.collections == 2

    def test_relabelled_view_hits_cache(self, database):
        catalog = StatsCatalog(database)
        catalog.column("emp", "dept")
        database.scan("emp", alias="e1")  # a view sharing the version token
        catalog.column("emp", "dept")
        assert catalog.collections == 1

    def test_database_property_is_lazy_and_sticky(self, database):
        catalog = database.stats_catalog
        assert catalog is database.stats_catalog
        assert catalog.row_count("emp") == 4


class TestSelectivity:
    def test_equality_uses_ndv(self, database):
        stats = StatsCatalog(database).column("emp", "dept")
        assert stats.selectivity_eq() == pytest.approx(1 / 3)

    def test_equality_outside_histogram_range_is_zero(self, database):
        stats = StatsCatalog(database).column("emp", "dept")
        assert stats.selectivity_eq(99999) == 0.0

    def test_range_uses_histogram(self, database):
        stats = StatsCatalog(database).column("emp", "dept")
        assert stats.selectivity_range("<=", 10) < stats.selectivity_range("<=", 30)
        assert stats.selectivity_range(">", 30) == pytest.approx(0.0, abs=1e-9)

    def test_empty_column(self, database):
        stats = StatsCatalog(database).column("void", "x")
        assert stats.selectivity_eq() == 0.0
        assert stats.family == FAMILY_EMPTY


class TestRebuildCadence:
    """The histogram-staleness counters reset on every full profile.

    Pins the cadence of full profiling passes over a long append schedule:
    accumulated appends trigger a re-profile once they exceed
    ``HISTOGRAM_STALENESS`` (25%) of the row count *at the last profile*,
    and the drift counters restart there — the catalog must not degenerate
    into one full profile per append after the first crossing.
    """

    def test_long_append_schedule_rebuilds_periodically(self):
        schema = DatabaseSchema(
            "S", [RelationSchema.build("big", [("id", _I), ("val", _I)])]
        )
        db = Database(schema)
        db.set_relation(
            "big",
            Relation.from_schema(
                schema.relation("big"), [(i, i % 7) for i in range(100)]
            ),
        )
        catalog = StatsCatalog(db)
        catalog.column("big", "val")
        assert catalog.collections == 1
        next_id = 100
        for _ in range(12):
            rows = [(next_id + j, (next_id + j) % 7) for j in range(10)]
            db.append_rows("big", rows)
            next_id += 10
            assert catalog.column("big", "val") is not None
        # Thresholds: 25 (base 100, crossed on the 3rd append → profile at
        # 130 rows), 32.5 (crossed on the 4th append after → profile at 170),
        # 42.5 (crossed on the 5th append after → profile at 220).  Without
        # the counter reset the catalog would re-profile on *every* append
        # past the first crossing (collections == 10).
        assert catalog.collections == 4
        assert catalog.incremental_refreshes == 9
        # The patched statistics match a cold profile over the final rows.
        fresh = StatsCatalog(db).column("big", "val")
        patched = catalog.column("big", "val")
        assert patched.count == fresh.count
        assert patched.ndv == fresh.ndv
        assert patched.nulls == fresh.nulls
        assert (patched.minimum, patched.maximum) == (fresh.minimum, fresh.maximum)
        assert patched.histogram == fresh.histogram
