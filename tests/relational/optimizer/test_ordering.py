"""Unit tests for cost-based join ordering."""

import pytest

from repro.relational.algebra import Join, Product, Scan, Select, Union
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.expressions import col
from repro.relational.optimizer import RULE_JOIN_REORDER, Optimizer
from repro.relational.predicates import And, ColumnEquals, Equals
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.stats import ExecutionStats
from repro.relational.types import DataType

_I = DataType.INTEGER
_S = DataType.STRING


@pytest.fixture()
def database() -> Database:
    """A star-ish schema where join order matters: big × mid × tiny."""
    schema = DatabaseSchema(
        "S",
        [
            RelationSchema.build("big", [("id", _I), ("mid_id", _I)]),
            RelationSchema.build("mid", [("id", _I), ("tiny_id", _I)]),
            RelationSchema.build("tiny", [("id", _I), ("tag", _S)]),
        ],
    )
    db = Database(schema)
    db.set_relation(
        "big",
        Relation.from_schema(
            schema.relation("big"), [(i, i % 40) for i in range(200)]
        ),
    )
    db.set_relation(
        "mid",
        Relation.from_schema(
            schema.relation("mid"), [(i, i % 4) for i in range(40)]
        ),
    )
    db.set_relation(
        "tiny",
        Relation.from_schema(
            schema.relation("tiny"), [(i, f"t{i}") for i in range(4)]
        ),
    )
    return db


def _chain_plan():
    """big ⋈ mid ⋈ tiny with a highly selective filter on tiny."""
    plan = Join(
        Join(Scan("big"), Scan("mid"), ColumnEquals(col("big.mid_id"), col("mid.id"))),
        Scan("tiny"),
        ColumnEquals(col("mid.tiny_id"), col("tiny.id")),
    )
    return Select(plan, Equals(col("tiny.tag"), "t0"))


class TestJoinReorder:
    def test_reorder_preserves_result_and_columns(self, database):
        plan = _chain_plan()
        baseline = Executor(database, ExecutionStats(), engine="row").execute(plan)
        report = Optimizer(database).optimize_with_report(plan)
        optimized = Executor(database, ExecutionStats(), engine="row").execute(report.plan)
        assert report.join_orders_considered > 0
        assert baseline.columns == optimized.columns
        assert sorted(baseline.rows) == sorted(optimized.rows)

    def test_reorder_fires_and_reduces_intermediate_rows(self, database):
        # Force the bad order: (big × tiny) first (a cross product), then mid.
        plan = Select(
            Join(
                Product(Scan("big"), Scan("tiny")),
                Scan("mid"),
                And(
                    ColumnEquals(col("big.mid_id"), col("mid.id")),
                    ColumnEquals(col("mid.tiny_id"), col("tiny.id")),
                ),
            ),
            Equals(col("tiny.tag"), "t0"),
        )
        before, after = ExecutionStats(), ExecutionStats()
        baseline = Executor(database, before, engine="row").execute(plan)
        report = Optimizer(database).optimize_with_report(plan)
        optimized = Executor(database, after, engine="row").execute(report.plan)
        assert report.rules[RULE_JOIN_REORDER] == 1
        assert sorted(baseline.rows) == sorted(optimized.rows)
        assert baseline.columns == optimized.columns
        assert after.rows_output < before.rows_output

    def test_reorder_disabled(self, database):
        plan = _chain_plan()
        report = Optimizer(database, reorder=False).optimize_with_report(plan)
        assert report.rules[RULE_JOIN_REORDER] == 0
        assert report.join_orders_considered == 0

    def test_two_way_join_untouched(self, database):
        plan = Join(Scan("mid"), Scan("tiny"), ColumnEquals(col("mid.tiny_id"), col("tiny.id")))
        report = Optimizer(database).optimize_with_report(plan)
        assert report.rules[RULE_JOIN_REORDER] == 0

    def test_reorder_inside_union_keeps_arm_alignment(self, database):
        arm = _chain_plan()
        plan = Union(arm, _chain_plan(), distinct=True)
        baseline = Executor(database, ExecutionStats(), engine="row").execute(plan)
        report = Optimizer(database).optimize_with_report(plan)
        optimized = Executor(database, ExecutionStats(), engine="row").execute(report.plan)
        assert baseline.columns == optimized.columns
        assert sorted(baseline.rows) == sorted(optimized.rows)

    def test_both_engines_agree_on_reordered_plan(self, database):
        plan = _chain_plan()
        report = Optimizer(database).optimize_with_report(plan)
        row = Executor(database, ExecutionStats(), engine="row").execute(report.plan)
        columnar = Executor(database, ExecutionStats(), engine="columnar").execute(report.plan)
        assert row.columns == columnar.columns
        assert row.rows == columnar.rows


class TestGreedyFallback:
    def test_large_region_uses_greedy(self, database):
        # Six joined copies of tiny: beyond the DP limit, handled greedily.
        plan = Scan("tiny", alias="t1")
        for i in range(2, 7):
            plan = Join(
                plan,
                Scan("tiny", alias=f"t{i}"),
                ColumnEquals(col("t1.id"), col(f"t{i}.id")),
            )
        baseline = Executor(database, ExecutionStats(), engine="row").execute(plan)
        report = Optimizer(database).optimize_with_report(plan)
        optimized = Executor(database, ExecutionStats(), engine="row").execute(report.plan)
        assert sorted(baseline.rows) == sorted(optimized.rows)
        assert baseline.columns == optimized.columns


class TestReorderHashSafety:
    def test_mixed_family_equi_conjunct_blocks_reordering(self):
        """A coercion-only equality must never be promoted to a hash key.

        a.x holds strings ("2"), c.x holds ints (2): with optimize=False the
        a-c equality sits in a coercing residual and matches; a reordered
        tree could key a join on it (dict semantics, never matches), so the
        region must refuse to reorder and answers must stay identical.
        """
        schema = DatabaseSchema(
            "Z",
            [
                RelationSchema.build("a", [("x", _S), ("y", _I)]),
                RelationSchema.build("b", [("y", _I), ("w", _I)]),
                RelationSchema.build("c", [("x", _I), ("w", _I)]),
            ],
        )
        db = Database(schema)
        db.set_relation("a", Relation.from_schema(schema.relation("a"), [("2", 1)]))
        db.set_relation("b", Relation.from_schema(schema.relation("b"), [(1, 7)]))
        db.set_relation(
            "c", Relation.from_schema(schema.relation("c"), [(2, 7), (3, 7)])
        )
        plan = Join(
            Join(Scan("a"), Scan("b"), ColumnEquals(col("a.y"), col("b.y"))),
            Scan("c"),
            And(
                ColumnEquals(col("b.w"), col("c.w")),
                ColumnEquals(col("a.x"), col("c.x")),
            ),
        )
        baseline = Executor(db, ExecutionStats(), engine="row").execute(plan)
        assert baseline.rows == [("2", 1, 1, 7, 2, 7)]
        report = Optimizer(db).optimize_with_report(plan)
        assert report.rules[RULE_JOIN_REORDER] == 0
        for engine in ("row", "columnar"):
            optimized = Executor(db, ExecutionStats(), engine=engine).execute(report.plan)
            assert optimized.rows == baseline.rows, engine
