"""Unit tests for the Optimizer facade (memoization) and explain()."""

import pytest

from repro.relational.algebra import Product, Scan, Select
from repro.relational.database import Database
from repro.relational.executor import Executor, available_engines

ENGINES = available_engines()  # vector drops out on NumPy-less installs
from repro.relational.expressions import col
from repro.relational.optimizer import Optimizer, explain
from repro.relational.predicates import ColumnEquals, Equals
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.stats import ExecutionStats
from repro.relational.types import DataType

_I = DataType.INTEGER
_S = DataType.STRING


@pytest.fixture()
def database() -> Database:
    schema = DatabaseSchema(
        "S",
        [
            RelationSchema.build("emp", [("id", _I), ("name", _S), ("dept", _I)]),
            RelationSchema.build("dept", [("id", _I), ("dname", _S)]),
        ],
    )
    db = Database(schema)
    db.set_relation(
        "emp",
        Relation.from_schema(
            schema.relation("emp"),
            [(1, "ann", 10), (2, "bob", 10), (3, "cat", 20)],
        ),
    )
    db.set_relation(
        "dept",
        Relation.from_schema(schema.relation("dept"), [(10, "db"), (20, "os")]),
    )
    return db


def _join_plan():
    return Select(
        Product(Scan("emp"), Scan("dept")),
        ColumnEquals(col("emp.dept"), col("dept.id")),
    )


class TestOptimizerMemo:
    def test_memo_hit_on_identical_plan(self, database):
        optimizer = Optimizer(database)
        first = optimizer.optimize_with_report(_join_plan())
        second = optimizer.optimize_with_report(_join_plan())
        assert not first.memo_hit
        assert second.memo_hit
        assert second.plan is first.plan
        assert len(optimizer) == 1

    def test_memo_invalidated_by_mutation(self, database):
        optimizer = Optimizer(database)
        optimizer.optimize_with_report(_join_plan())
        schema = database.schema.relation("emp")
        database.set_relation(
            "emp", Relation.from_schema(schema, [(9, "zed", 20)])
        )
        report = optimizer.optimize_with_report(_join_plan())
        assert not report.memo_hit
        result = Executor(database).execute(report.plan)
        assert result.rows == [(9, "zed", 20, 20, "os")]

    def test_stats_counters_recorded(self, database):
        optimizer = Optimizer(database)
        stats = ExecutionStats()
        optimizer.optimize(_join_plan(), stats)
        optimizer.optimize(_join_plan(), stats)
        assert stats.plans_optimized == 2
        assert stats.optimizer_memo_hits == 1
        assert stats.optimizer_rules["product-to-join"] == 1
        snapshot = stats.snapshot()
        assert snapshot["plans_optimized"] == 2
        assert snapshot["optimizer_rules"]["product-to-join"] == 1

    def test_memo_is_bounded(self, database):
        optimizer = Optimizer(database, memo_size=2)
        for value in (10, 20, 30):
            optimizer.optimize_with_report(
                Select(Scan("emp"), Equals(col("emp.dept"), value))
            )
        assert len(optimizer) == 2

    def test_unknown_relation_survives(self, database):
        # A plan over a missing relation cannot be optimized, but the
        # optimizer must hand it back rather than raise.
        plan = Select(Scan("ghost"), Equals(col("ghost.x"), 1))
        report = Optimizer(database).optimize_with_report(plan)
        assert report.plan.canonical() == plan.canonical()


class TestExplain:
    def test_explain_sections(self, database):
        text = explain(_join_plan(), database)
        assert "== logical plan" in text
        assert "== optimized plan" in text
        assert "product-to-join" in text
        assert "== execution" in text
        assert "est." in text and "actual" in text

    def test_explain_without_running(self, database):
        text = explain(_join_plan(), database, run=False)
        assert "== execution" not in text
        assert "actual" not in text

    @pytest.mark.parametrize("engine", ENGINES)
    def test_explain_engines(self, database, engine):
        text = explain(_join_plan(), database, engine=engine)
        assert f"engine={engine}" in text
        # est. 3 join rows (1/NDV estimate), actual 3 rows out of the join
        assert "rows out: 3" in text

    def test_explain_analyze_adds_per_node_wall_clock(self, database):
        text = explain(_join_plan(), database, analyze=True)
        assert "== execution" in text
        # Every executed-plan annotation carries a measured duration and the
        # summary reports the total.
        executed = [line for line in text.splitlines() if "actual" in line]
        assert executed
        assert all(" ms)" in line for line in executed)
        assert "total time:" in text

    def test_explain_analyze_implies_run(self, database):
        # analyze=True overrides run=False — actual timings need execution.
        text = explain(_join_plan(), database, run=False, analyze=True)
        assert "== execution" in text
        assert "total time:" in text

    def test_explain_without_analyze_has_no_timings(self, database):
        text = explain(_join_plan(), database)
        assert "total time:" not in text
        assert " ms)" not in text
