"""Unit tests for the optimizer's rewrite rules.

Every rewrite is checked two ways: the expected structural change happened
(rule fired, operator counts moved) and the optimized plan still produces the
same relation as the original — including the mixed-type corner where the
Select+Product→Join conversion must *refuse* to fire because hash-join key
matching and coercion-based equality disagree.
"""

import pytest

from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.expressions import col, lit
from repro.relational.optimizer import (
    Optimizer,
    RULE_EMPTY_SHORTCIRCUIT,
    RULE_PRODUCT_TO_JOIN,
    RULE_PROJECT_COLLAPSE,
    RULE_PROJECT_PRUNE,
    RULE_PUSHDOWN,
    RULE_REMOVE_TRIVIAL_SELECT,
    RULE_SELECT_MERGE,
    fold_predicate,
)
from repro.relational.predicates import (
    And,
    ColumnEquals,
    Comparison,
    Equals,
    FalsePredicate,
    GreaterThan,
    Not,
    Or,
    TruePredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.stats import ExecutionStats
from repro.relational.types import DataType

_I = DataType.INTEGER
_S = DataType.STRING
_F = DataType.FLOAT


@pytest.fixture()
def database() -> Database:
    schema = DatabaseSchema(
        "S",
        [
            RelationSchema.build("emp", [("id", _I), ("name", _S), ("dept", _I), ("salary", _F)]),
            RelationSchema.build("dept", [("id", _I), ("dname", _S)]),
            RelationSchema.build("codes", [("code", _S)]),
            RelationSchema.build("void", [("x", _I)]),
        ],
    )
    db = Database(schema)
    db.set_relation(
        "emp",
        Relation.from_schema(
            schema.relation("emp"),
            [
                (1, "ann", 10, 100.0),
                (2, "bob", 10, 200.0),
                (3, "cat", 20, 300.0),
                (4, "dan", 30, 400.0),
            ],
        ),
    )
    db.set_relation(
        "dept",
        Relation.from_schema(schema.relation("dept"), [(10, "db"), (20, "os"), (30, "net")]),
    )
    # String-typed codes that numerically match dept ids: coercion-based
    # equality ("10" = 10) differs from hash-key equality here.
    db.set_relation(
        "codes", Relation.from_schema(schema.relation("codes"), [("10",), ("20",)])
    )
    db.set_relation("void", Relation.from_schema(schema.relation("void"), []))
    return db


def run_both(plan, database):
    """Execute a plan unoptimized and optimized; return both relations + report."""
    baseline = Executor(database, ExecutionStats(), engine="row").execute(plan)
    report = Optimizer(database).optimize_with_report(plan)
    optimized = Executor(database, ExecutionStats(), engine="row").execute(report.plan)
    return baseline, optimized, report


class TestFoldPredicate:
    def test_literal_comparison_folds(self):
        assert isinstance(fold_predicate(Comparison(lit(1), "=", lit(1))), TruePredicate)
        assert isinstance(fold_predicate(Comparison(lit(1), "=", lit(2))), FalsePredicate)

    def test_and_simplification(self):
        pred = And(TruePredicate(), GreaterThan(col("emp.salary"), 150.0))
        folded = fold_predicate(pred)
        assert folded.canonical() == GreaterThan(col("emp.salary"), 150.0).canonical()

    def test_and_with_false_collapses(self):
        pred = And(GreaterThan(col("emp.salary"), 150.0), Comparison(lit(1), "=", lit(2)))
        assert isinstance(fold_predicate(pred), FalsePredicate)

    def test_or_with_true_collapses(self):
        pred = Or(Comparison(lit(1), "=", lit(1)), GreaterThan(col("emp.salary"), 150.0))
        assert isinstance(fold_predicate(pred), TruePredicate)

    def test_not_folds(self):
        assert isinstance(fold_predicate(Not(Comparison(lit(1), "=", lit(2)))), TruePredicate)

    def test_contradictory_equalities(self):
        pred = And(Equals(col("emp.dept"), 10), Equals(col("emp.dept"), 20))
        assert isinstance(fold_predicate(pred), FalsePredicate)

    def test_repeated_equality_is_not_contradictory(self):
        pred = And(Equals(col("emp.dept"), 10), Equals(col("emp.dept"), 10))
        assert not isinstance(fold_predicate(pred), FalsePredicate)

    def test_coercion_equal_literals_are_not_contradictory(self):
        pred = And(Equals(col("emp.dept"), 10), Equals(col("emp.dept"), "10"))
        assert not isinstance(fold_predicate(pred), FalsePredicate)


class TestSelectRules:
    def test_trivial_select_removed(self, database):
        plan = Select(Scan("emp"), TruePredicate())
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_REMOVE_TRIVIAL_SELECT] == 1
        assert isinstance(report.plan, Scan)
        assert optimized == baseline

    def test_select_chain_merges_into_one(self, database):
        plan = Select(
            Select(Scan("emp"), Equals(col("emp.dept"), 10)),
            GreaterThan(col("emp.salary"), 150.0),
        )
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_SELECT_MERGE] == 1
        assert len(report.plan.operators()) == len(plan.operators()) - 1
        assert optimized == baseline
        assert optimized.rows == [(2, "bob", 10, 200.0)]

    def test_merged_select_still_uses_index(self, database):
        plan = Select(
            Select(Scan("emp"), Equals(col("emp.dept"), 10)),
            GreaterThan(col("emp.salary"), 150.0),
        )
        report = Optimizer(database).optimize_with_report(plan)
        stats = ExecutionStats()
        Executor(database, stats).execute(report.plan)
        assert database.index_catalog.builds >= 1
        # The indexed path records the same counters the generic path would.
        assert stats.operators["Scan"] == 1 and stats.operators["Select"] == 1
        assert stats.rows_scanned == 4 + 4


class TestPushdown:
    def test_single_side_conjuncts_move_below_product(self, database):
        plan = Select(
            Product(Scan("emp"), Scan("dept")),
            And(
                Equals(col("emp.dept"), 10),
                ColumnEquals(col("emp.dept"), col("dept.id")),
            ),
        )
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_PUSHDOWN] >= 1
        assert sorted(baseline.rows) == sorted(optimized.rows)
        assert baseline.columns == optimized.columns

    def test_pushdown_preserves_row_order(self, database):
        plan = Select(
            Product(Scan("emp"), Scan("dept")),
            And(
                GreaterThan(col("emp.salary"), 150.0),
                ColumnEquals(col("emp.dept"), col("dept.id")),
            ),
        )
        baseline, optimized, _ = run_both(plan, database)
        assert baseline.rows == optimized.rows

    def test_pushdown_through_union(self, database):
        arm = lambda: Scan("emp")  # noqa: E731 - tiny test helper
        plan = Select(Union(arm(), arm(), distinct=True), Equals(col("emp.dept"), 10))
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_PUSHDOWN] >= 1
        assert isinstance(report.plan, Union)
        assert baseline == optimized

    def test_pushdown_through_project(self, database):
        plan = Select(
            Project(Scan("emp"), [col("emp.name"), col("emp.dept")]),
            Equals(col("emp.dept"), 10),
        )
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_PUSHDOWN] >= 1
        assert isinstance(report.plan, Project)
        assert baseline == optimized


class TestProductToJoin:
    def test_conversion_fires_for_compatible_columns(self, database):
        plan = Select(
            Product(Scan("emp"), Scan("dept")),
            ColumnEquals(col("emp.dept"), col("dept.id")),
        )
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_PRODUCT_TO_JOIN] == 1
        assert isinstance(report.plan, Join)
        assert baseline == optimized
        assert len(optimized) == 4

    def test_conversion_reduces_rows_scanned(self, database):
        plan = Select(
            Product(Scan("emp"), Scan("dept")),
            ColumnEquals(col("emp.dept"), col("dept.id")),
        )
        before, after = ExecutionStats(), ExecutionStats()
        Executor(database, before).execute(plan)
        report = Optimizer(database).optimize_with_report(plan)
        Executor(database, after).execute(report.plan)
        assert after.source_operators < before.source_operators
        assert after.rows_scanned < before.rows_scanned

    def test_conversion_refused_for_mixed_type_keys(self, database):
        # emp.dept holds ints, codes.code holds the strings "10"/"20": the
        # coerced equality matches where a hash join would not, so the
        # rewrite must not fire — and answers must stay byte-identical.
        plan = Select(
            Product(Scan("emp"), Scan("codes")),
            ColumnEquals(col("emp.dept"), col("codes.code")),
        )
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_PRODUCT_TO_JOIN] == 0
        assert len(baseline) == 3  # "10" matches ann and bob, "20" matches cat
        assert baseline == optimized


class TestEmptyShortcircuit:
    def test_scan_of_empty_relation(self, database):
        plan = Select(Scan("void"), Equals(col("void.x"), 1))
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_EMPTY_SHORTCIRCUIT] >= 1
        assert isinstance(report.plan, Materialized)
        assert baseline == optimized
        assert optimized.is_empty and optimized.columns == ("void.x",)

    def test_false_predicate_shortcircuits(self, database):
        plan = Select(Scan("emp"), Comparison(lit(1), "=", lit(2)))
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_EMPTY_SHORTCIRCUIT] >= 1
        assert isinstance(report.plan, Materialized)
        assert baseline == optimized

    def test_product_with_empty_side(self, database):
        plan = Product(Scan("emp"), Scan("void"))
        _, optimized, report = run_both(plan, database)
        assert report.rules[RULE_EMPTY_SHORTCIRCUIT] >= 1
        assert optimized.is_empty
        assert list(optimized.columns) == ["emp.id", "emp.name", "emp.dept", "emp.salary", "void.x"]

    def test_aggregate_over_empty_still_produces_row(self, database):
        plan = Aggregate(Scan("void"), "COUNT")
        baseline, optimized, report = run_both(plan, database)
        assert baseline.rows == [(0,)]
        assert optimized == baseline
        assert isinstance(report.plan, Aggregate)

    def test_union_all_with_empty_arm(self, database):
        plan = Union(Scan("emp"), Select(Scan("emp"), Comparison(lit(1), "=", lit(2))), distinct=False)
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_EMPTY_SHORTCIRCUIT] >= 1
        assert isinstance(report.plan, Scan)
        assert baseline == optimized

    def test_shortcircuit_invalidated_by_data_change(self, database):
        optimizer = Optimizer(database)
        plan = Select(Scan("void"), Equals(col("void.x"), 1))
        assert isinstance(optimizer.optimize_with_report(plan).plan, Materialized)
        schema = database.schema.relation("void")
        database.set_relation("void", Relation.from_schema(schema, [(1,), (2,)]))
        replanned = optimizer.optimize_with_report(plan).plan
        result = Executor(database).execute(replanned)
        assert result.rows == [(1,)]


class TestProjectionPruning:
    def test_identity_project_removed(self, database):
        plan = Project(
            Scan("emp"),
            [col("emp.id"), col("emp.name"), col("emp.dept"), col("emp.salary")],
        )
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_PROJECT_PRUNE] == 1
        assert isinstance(report.plan, Scan)
        assert baseline == optimized

    def test_distinct_identity_project_kept(self, database):
        plan = Project(
            Scan("emp"),
            [col("emp.id"), col("emp.name"), col("emp.dept"), col("emp.salary")],
            distinct=True,
        )
        _, optimized, report = run_both(plan, database)
        assert report.rules[RULE_PROJECT_PRUNE] == 0
        assert isinstance(report.plan, Project)

    def test_stacked_projects_collapse(self, database):
        plan = Project(
            Project(Scan("emp"), [col("emp.name"), col("emp.dept"), col("emp.salary")]),
            [col("emp.name"), col("emp.salary")],
        )
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_PROJECT_COLLAPSE] == 1
        assert len(report.plan.operators()) == 1
        assert baseline == optimized

    def test_collapse_refused_when_inner_repeats_columns(self, database):
        plan = Project(
            Project(Scan("emp"), [col("emp.name"), col("emp.name")]),
            [col("emp.name")],
        )
        baseline, optimized, report = run_both(plan, database)
        assert report.rules[RULE_PROJECT_COLLAPSE] == 0
        assert baseline == optimized
