"""Unit tests for the NumPy-vectorized kernels (``engine="vector"``).

The differential harness (tests/core/evaluators) pins end-to-end byte-identity
across all engines; these tests pin the kernel layer directly — classification
rules, per-node fallback triggers, serial-identical index orders, the
relation-level array cache and its append roll-forward, and the NumPy-less
degradation path (simulated by monkeypatching ``HAVE_NUMPY``).
"""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import vector
from repro.relational.columnar import ColumnBatch, predicate_mask
from repro.relational.expressions import col, lit
from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    Equals,
    FalsePredicate,
    GreaterThan,
    In,
    LessEqual,
    Not,
    Or,
    TruePredicate,
)
from repro.relational.relation import Relation
from repro.relational.vector import (
    _entry_for_list,
    column_entry,
    numpy_available,
    vector_distinct_indices,
    vector_group_indices,
    vector_join_indices,
    vector_predicate_mask,
    vector_product_select_positions,
    vector_select_indices,
    vector_union_distinct_indices,
)


def batch(columns: dict[str, list]) -> ColumnBatch:
    labels = tuple(columns)
    data = [list(values) for values in columns.values()]
    lengths = {len(values) for values in data}
    assert len(lengths) <= 1
    return ColumnBatch(labels, data, length=lengths.pop() if lengths else 0)


# --------------------------------------------------------------------------- #
# column classification
# --------------------------------------------------------------------------- #
class TestClassification:
    def test_int_column(self):
        arr, has_nan = _entry_for_list([3, -1, 7])
        assert arr.dtype == np.int64
        assert arr.tolist() == [3, -1, 7]
        assert has_nan is False

    def test_bool_and_mixed_bool_int(self):
        arr, _ = _entry_for_list([True, False])
        assert arr.dtype == np.bool_
        arr, _ = _entry_for_list([True, 2, False])
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 2, 0]

    def test_float_column_records_nan(self):
        arr, has_nan = _entry_for_list([1.5, float("nan")])
        assert arr.dtype == np.float64
        assert has_nan is True
        _, has_nan = _entry_for_list([1.5, 2.5])
        assert has_nan is False

    def test_string_column(self):
        arr, _ = _entry_for_list(["b", "aa", ""])
        assert arr.dtype.kind == "U"
        assert arr.tolist() == ["b", "aa", ""]

    def test_empty_column(self):
        arr, has_nan = _entry_for_list([])
        assert arr.size == 0 and has_nan is False

    def test_rejections(self):
        assert _entry_for_list([1, None, 3]) is None  # None-bearing
        assert _entry_for_list([1, "x"]) is None  # mixed coercion family
        assert _entry_for_list([1, 2.5]) is None  # int/float mix
        assert _entry_for_list([2**70, 1]) is None  # beyond int64
        assert _entry_for_list([object()]) is None

    def test_rejection_is_monotone_under_appends(self):
        # Appending rows can never un-reject a column: the offending values
        # stay.  (The roll-forward relies on this.)
        column = [1, None]
        assert _entry_for_list(column) is None
        assert _entry_for_list(column + [2, 3]) is None


# --------------------------------------------------------------------------- #
# predicate masks vs the serial reference
# --------------------------------------------------------------------------- #
MIXED = {
    "t.i": [3, -1, 7, 3, 0, 6],
    "t.h": [2**60, 1, -(2**60), 3, 4, 5],  # beyond ±2^53: float-inexact
    "t.f": [1.5, float("nan"), -0.0, 3.0, 2.5, 1e300],
    "t.s": ["b", "aa", "", "b", "c", "aa"],
    "t.n": [1, None, 3, None, 5, 6],
}

PREDICATES = [
    Equals(col("t.i"), 3),
    Comparison(lit(3), "<=", col("t.i")),  # literal-left swap
    GreaterThan(col("t.f"), 1.5),
    Equals(col("t.f"), float("nan")),  # IEEE: all False
    Comparison(col("t.f"), "!=", lit(float("nan"))),  # IEEE: all True
    Equals(col("t.i"), 3.0),  # exact int/float cross
    Equals(col("t.h"), 2**60),  # int const within int64 stays exact
    Equals(col("t.i"), "3"),  # numeric string parses
    Equals(col("t.i"), None),  # None compares false
    Equals(col("t.s"), "b"),
    LessEqual(col("t.s"), "b"),  # code-point order
    Comparison(col("t.i"), "<", col("t.f")),
    In(col("t.i"), (3, True, "x", 2.0)),  # cross-family members dropped
    In(col("t.s"), ("b", "c", 7)),
    In(col("t.i"), ()),
    Between(col("t.i"), 0, 5),
    Between(col("t.s"), "a", "b"),
    And(Equals(col("t.i"), 3), Equals(col("t.n"), 3)),  # serial conjunct mix
    Or(Equals(col("t.n"), 1), GreaterThan(col("t.i"), 2)),
    Not(Equals(col("t.i"), 3)),
    TruePredicate(),
    FalsePredicate(),
]


class TestPredicateMasks:
    @pytest.mark.parametrize("predicate", PREDICATES, ids=lambda p: p.canonical())
    def test_matches_serial_mask(self, predicate):
        b = batch(MIXED)
        vectorized = vector_predicate_mask(predicate, b)
        serial = predicate_mask(predicate, b)
        assert vectorized is not None, "expected the kernel to engage"
        assert vectorized == serial
        assert all(type(value) is bool for value in vectorized)
        indices = vector_select_indices(predicate, b)
        assert indices == [i for i, keep in enumerate(serial) if keep]

    @pytest.mark.parametrize(
        "predicate",
        [
            Equals(col("t.n"), 3),  # None-bearing column
            Equals(col("t.h"), 3.0),  # float const vs float-inexact ints
            Comparison(col("t.h"), "<", col("t.f")),  # inexact col-col cross
            In(col("t.h"), (1, 2.0)),  # float member vs inexact int column
            In(col("t.f"), (float("nan"),)),  # NaN member: identity semantics
            In(col("t.f"), (1.5,)),  # NaN-bearing column rejected for IN
            Between(col("t.i"), None, 5),  # None bound: serial comparable()
            Equals(col("t.s"), 3),  # cross-family comparison
            And(Equals(col("t.n"), 3), Equals(col("t.n"), 5)),  # no part vectorizes
        ],
        ids=lambda p: p.canonical(),
    )
    def test_falls_back(self, predicate):
        assert vector_predicate_mask(predicate, batch(MIXED)) is None

    def test_empty_batch_falls_back(self):
        empty = batch({"t.i": []})
        assert vector_predicate_mask(TruePredicate(), empty) is None

    @given(
        column=st.lists(
            st.one_of(st.integers(-5, 5), st.integers(2**53, 2**60)),
            min_size=1,
            max_size=30,
        ),
        const=st.one_of(st.integers(-5, 5), st.floats(allow_nan=True, width=32)),
        op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_comparison_matches_serial(self, column, const, op):
        b = batch({"t.i": column})
        predicate = Comparison(col("t.i"), op, lit(const))
        vectorized = vector_predicate_mask(predicate, b)
        if vectorized is not None:
            assert vectorized == predicate_mask(predicate, b)


# --------------------------------------------------------------------------- #
# join / distinct / group kernels vs the serial reference
# --------------------------------------------------------------------------- #
def serial_join(left: ColumnBatch, right: ColumnBatch, pairs):
    """The serial hash-join probe order (build right, probe left ascending)."""
    buckets: dict = {}
    for i in range(len(right)):
        key = tuple(right.data[p][i] for _, p in pairs)
        if all(v is not None and v == v for v in key):
            buckets.setdefault(key, []).append(i)
    left_idx, right_idx = [], []
    for i in range(len(left)):
        key = tuple(left.data[p][i] for p, _ in pairs)
        for j in buckets.get(key, []):
            left_idx.append(i)
            right_idx.append(j)
    return left_idx, right_idx


class TestJoinKernel:
    def test_single_key_matches_serial(self):
        left = batch({"l.k": [1, 2, 3, 2, 1], "l.v": [10, 20, 30, 40, 50]})
        right = batch({"r.k": [2, 1, 2, 9, 1]})
        assert vector_join_indices(left, right, [(0, 0)]) == serial_join(
            left, right, [(0, 0)]
        )

    def test_composite_key_matches_serial(self):
        left = batch({"l.a": [1, 1, 2, 2], "l.b": ["x", "y", "x", "y"]})
        right = batch({"r.a": [1, 2, 1, 2], "r.b": ["y", "x", "y", "z"]})
        pairs = [(0, 0), (1, 1)]
        assert vector_join_indices(left, right, pairs) == serial_join(
            left, right, pairs
        )

    def test_int_float_cross_family_key(self):
        left = batch({"l.k": [1, 2, 3]})
        right = batch({"r.k": [2.0, 3.0, 2.5]})
        assert vector_join_indices(left, right, [(0, 0)]) == serial_join(
            left, right, [(0, 0)]
        )

    def test_empty_side_short_circuits(self):
        left = batch({"l.k": []})
        right = batch({"r.k": [1]})
        assert vector_join_indices(left, right, [(0, 0)]) == ([], [])

    def test_fallback_triggers(self):
        nan = batch({"l.k": [1.0, float("nan")]})
        plain = batch({"r.k": [1.0, 2.0]})
        assert vector_join_indices(nan, plain, [(0, 0)]) is None  # NaN key
        nones = batch({"l.k": [1, None]})
        assert vector_join_indices(nones, plain, [(0, 0)]) is None  # rejected
        strings = batch({"l.k": ["1", "2"]})
        ints = batch({"r.k": [1, 2]})
        assert vector_join_indices(strings, ints, [(0, 0)]) is None  # families
        huge = batch({"l.k": [2**60]})
        floats = batch({"r.k": [1.5]})
        assert vector_join_indices(huge, floats, [(0, 0)]) is None  # inexact

    @given(
        left_keys=st.lists(st.integers(0, 4), max_size=20),
        right_keys=st.lists(st.integers(0, 4), max_size=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_matches_serial(self, left_keys, right_keys):
        left = batch({"l.k": left_keys})
        right = batch({"r.k": right_keys})
        assert vector_join_indices(left, right, [(0, 0)]) == serial_join(
            left, right, [(0, 0)]
        )


def serial_distinct(data: list[list], length: int) -> list[int]:
    seen, keep = set(), []
    for i, row in enumerate(zip(*data)) if data else ():
        if row not in seen:
            seen.add(row)
            keep.append(i)
    return keep


class TestDistinctAndGroupKernels:
    def test_distinct_first_occurrence_order(self):
        b = batch({"t.a": [2, 1, 2, 3, 1, 2], "t.b": ["x", "x", "x", "y", "x", "z"]})
        keep = vector_distinct_indices(b, [0, 1])
        assert keep == serial_distinct(b.data, len(b))
        assert keep == [0, 1, 3, 5]

    def test_distinct_collapses_bool_int_like_python(self):
        b = batch({"t.a": [True, 1, 0, False, 2]})
        assert vector_distinct_indices(b, [0]) == serial_distinct(b.data, len(b))

    def test_distinct_fallback(self):
        b = batch({"t.a": [1, None]})
        assert vector_distinct_indices(b, [0]) is None
        nan = batch({"t.a": [1.0, float("nan")]})
        assert vector_distinct_indices(nan, [0]) is None

    def test_union_distinct_matches_stacked_serial(self):
        left = batch({"t.a": [1, 2, 2], "t.b": ["x", "y", "y"]})
        right = batch({"t.a": [2, 3, 1], "t.b": ["y", "z", "x"]})
        stacked = [
            left.data[p] + right.data[p] for p in range(len(left.data))
        ]
        assert vector_union_distinct_indices(left, right) == serial_distinct(
            stacked, len(left) + len(right)
        )

    def test_union_distinct_cross_family_fallback(self):
        left = batch({"t.a": [1, 2]})
        right = batch({"t.a": ["x", "y"]})
        assert vector_union_distinct_indices(left, right) is None

    def test_group_indices_match_serial_dict(self):
        b = batch({"t.k": [2, 1, 2, 3, 1], "t.g": ["b", "a", "b", "b", "a"]})
        key_columns = [b.data[0], b.data[1]]
        groups = vector_group_indices(b, [0, 1], key_columns, len(b))
        serial: dict = {}
        for i, key in enumerate(zip(*key_columns)):
            serial.setdefault(key, []).append(i)
        assert groups == serial
        assert list(groups) == list(serial)  # first-occurrence key order
        # Keys are the original Python objects, not NumPy scalars.
        assert all(type(k[0]) is int and type(k[1]) is str for k in groups)

    def test_group_fallback_on_rejected_key(self):
        b = batch({"t.k": [1, None]})
        assert vector_group_indices(b, [0], [b.data[0]], len(b)) is None


# --------------------------------------------------------------------------- #
# relation-level array cache and append roll-forward
# --------------------------------------------------------------------------- #
class TestRelationCache:
    def test_entries_cached_on_relation(self):
        rel = Relation(["t.a"], [(1,), (2,)], name="t")
        b = ColumnBatch.from_relation(rel)
        first = column_entry(b, 0)
        assert first is not None
        payload = rel._vector_cache[0]
        assert payload is not None and payload[0] == rel.version
        again = column_entry(ColumnBatch.from_relation(rel), 0)
        assert again is first  # same cached entry across fresh batches

    def test_relabelled_view_shares_cache(self):
        rel = Relation(["t.a"], [(1,), (2,)], name="t")
        column_entry(ColumnBatch.from_relation(rel), 0)
        view = rel.prefixed("x")
        assert view._vector_cache is rel._vector_cache

    def test_append_rolls_arrays_forward(self):
        rel = Relation(["t.a", "t.b"], [(1, "x"), (2, "y")], name="t")
        b = ColumnBatch.from_relation(rel)
        column_entry(b, 0)
        column_entry(b, 1)
        rel.append_rows([(3, "z")])
        rolled = column_entry(ColumnBatch.from_relation(rel), 0)
        assert rolled is not None
        assert rolled[0].tolist() == [1, 2, 3]
        assert rel._vector_cache[0][0] == rel.version
        strings = column_entry(ColumnBatch.from_relation(rel), 1)
        assert strings[0].tolist() == ["x", "y", "z"]

    def test_rejected_entry_stays_rejected_across_appends(self):
        rel = Relation(["t.a"], [(1,), (None,)], name="t")
        assert column_entry(ColumnBatch.from_relation(rel), 0) is None
        rel.append_rows([(2,)])
        assert column_entry(ColumnBatch.from_relation(rel), 0) is None

    def test_family_change_drops_only_that_position(self):
        rel = Relation(["t.a", "t.b"], [(1, 10), (2, 20)], name="t")
        b = ColumnBatch.from_relation(rel)
        column_entry(b, 0)
        column_entry(b, 1)
        rel.append_rows([(3, "oops")])  # t.b turns mixed; t.a stays clean
        fresh = ColumnBatch.from_relation(rel)
        assert column_entry(fresh, 0)[0].tolist() == [1, 2, 3]
        assert column_entry(fresh, 1) is None

    def test_nonappend_write_abandons_cache(self):
        rel = Relation(["t.a"], [(1,), (2,), (3,)], name="t")
        column_entry(ColumnBatch.from_relation(rel), 0)
        rel.delete_rows([0])
        assert rel._vector_cache[0] is None
        fresh = column_entry(ColumnBatch.from_relation(rel), 0)
        assert fresh[0].tolist() == [2, 3]

    def test_prewrite_batch_keeps_its_snapshot(self):
        rel = Relation(["t.a"], [(1,), (2,)], name="t")
        stale = ColumnBatch.from_relation(rel)
        column_entry(stale, 0)
        rel.append_rows([(3,)])
        # The stale batch classifies against its own two-row snapshot.
        entry = column_entry(stale, 0)
        assert entry[0].tolist() == [1, 2]
        assert column_entry(ColumnBatch.from_relation(rel), 0)[0].tolist() == [1, 2, 3]

    def test_anonymous_batch_caches_locally(self):
        b = batch({"t.a": [1, 2, 3]})
        first = column_entry(b, 0)
        assert column_entry(b, 0) is first
        assert b._vectors[0] is first


# --------------------------------------------------------------------------- #
# NumPy-less degradation
# --------------------------------------------------------------------------- #
class TestWithoutNumpy:
    @pytest.fixture(autouse=True)
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)

    def test_numpy_available_is_false(self):
        assert numpy_available() is False

    def test_kernels_return_none(self):
        b = batch({"t.a": [1, 2, 3]})
        assert vector_predicate_mask(TruePredicate(), b) is None
        assert vector_select_indices(TruePredicate(), b) is None
        assert vector_join_indices(b, b, [(0, 0)]) is None
        assert vector_distinct_indices(b, [0]) is None
        assert vector_union_distinct_indices(b, b) is None
        assert vector_group_indices(b, [0], [b.data[0]], len(b)) is None
        other = batch({"u.a": [1, 2]})
        labels = list(b.columns) + list(other.columns)
        assert (
            vector_product_select_positions(TruePredicate(), b, other, labels)
            is None
        )

    def test_vector_engine_excluded_from_available(self):
        from repro.relational.executor import available_engines

        assert "vector" not in available_engines()
        assert "columnar" in available_engines()

    def test_executor_raises_actionable_error(self):
        from repro.relational.database import Database
        from repro.relational.executor import Executor
        from repro.relational.schema import DatabaseSchema

        db = Database(DatabaseSchema("S", []))
        with pytest.raises(ValueError, match="requires NumPy"):
            Executor(db, engine="vector")

    def test_policy_rejects_vector(self):
        from repro.policy import ExecutionPolicy

        with pytest.raises(ValueError, match="unknown engine"):
            ExecutionPolicy(engine="vector")


class TestVectorEngineAvailable:
    def test_engine_listed_and_constructible(self):
        from repro.relational.database import Database
        from repro.relational.executor import Executor, available_engines
        from repro.relational.schema import DatabaseSchema

        assert "vector" in available_engines()
        executor = Executor(Database(DatabaseSchema("S", [])), engine="vector")
        assert executor.vector is True

    def test_policy_accepts_vector(self):
        from repro.policy import ExecutionPolicy

        assert ExecutionPolicy(engine="vector").engine == "vector"

    def test_unknown_engine_lists_vector(self):
        from repro.relational.database import Database
        from repro.relational.executor import Executor
        from repro.relational.schema import DatabaseSchema

        with pytest.raises(ValueError, match="vector"):
            Executor(Database(DatabaseSchema("S", [])), engine="vectorised")


def test_nan_identity_note():
    """Documented invariant: Python containers treat NaN by identity."""
    nan = float("nan")
    assert nan in {nan}  # identity short-circuit
    assert math.isnan(nan)


# --------------------------------------------------------------------------- #
# fused selection over a cross product
# --------------------------------------------------------------------------- #
def serial_product_select(predicate, left: ColumnBatch, right: ColumnBatch):
    """Reference: materialise the product, filter serially, return coordinates."""
    labels = list(left.columns) + list(right.columns)
    n_left, n_right = len(left), len(right)
    data = [
        [column[i] for i in range(n_left) for _ in range(n_right)]
        for column in left.data
    ]
    data += [column * n_left for column in right.data]
    product = ColumnBatch(labels, data, length=n_left * n_right)
    mask = predicate_mask(predicate, product)
    kept = [i for i, hit in enumerate(mask) if hit]
    return [i // n_right for i in kept], [i % n_right for i in kept]


def _product_sides():
    left = batch(
        {
            "l.i": [1, 2, 3, 4],
            "l.s": ["a", "b", "a", "c"],
            "l.f": [0.5, 2.5, float("nan"), 1.0],
            "l.n": [1, None, 3, 4],
        }
    )
    right = batch({"r.i": [2, 3, 5], "r.s": ["b", "c", "b"]})
    return left, right


FUSED_PREDICATES = [
    Equals(col("l.i"), 3),  # left side only
    Equals(col("r.s"), "b"),  # right side only
    Comparison(col("l.i"), "<", col("r.i")),  # cross-side numeric
    Equals(col("l.s"), col("r.s")),  # cross-side string
    Comparison(lit(3), "<=", col("r.i")),  # literal-left swap
    Comparison(col("l.f"), "<", col("r.i")),  # NaN rows: IEEE False, like Python
    And(
        Equals(col("l.i"), 2),
        Equals(col("r.s"), "b"),
        Comparison(col("l.i"), "<", col("r.i")),
    ),
    Or(Equals(col("l.i"), 1), Equals(col("r.i"), 5)),
    Not(Equals(col("l.s"), col("r.s"))),
    In(col("r.i"), (2, 5)),
    Between(col("l.i"), 2, 3),
    TruePredicate(),
    FalsePredicate(),
]

FUSED_FALLBACKS = [
    Equals(col("l.n"), 3),  # None-bearing column rejects
    And(Equals(col("l.n"), 3), Equals(col("r.i"), 2)),  # strict: no fill-in
    Equals(col("l.i"), col("l.s")),  # same-side cross-family
    Equals(col("missing"), 1),  # unresolvable reference
]


class TestProductSelectFusion:
    @pytest.mark.parametrize("predicate", FUSED_PREDICATES, ids=repr)
    def test_matches_serial_product_filter(self, predicate):
        left, right = _product_sides()
        labels = list(left.columns) + list(right.columns)
        got = vector_product_select_positions(predicate, left, right, labels)
        assert got is not None, f"{predicate!r} unexpectedly fell back"
        assert got == serial_product_select(predicate, left, right)

    @pytest.mark.parametrize("predicate", FUSED_FALLBACKS, ids=repr)
    def test_fallback_returns_none(self, predicate):
        left, right = _product_sides()
        labels = list(left.columns) + list(right.columns)
        assert vector_product_select_positions(predicate, left, right, labels) is None

    def test_empty_product_falls_back(self):
        left, _ = _product_sides()
        empty = batch({"r.i": [], "r.s": []})
        labels = list(left.columns) + list(empty.columns)
        assert (
            vector_product_select_positions(TruePredicate(), left, empty, labels)
            is None
        )

    @given(
        left_col=st.lists(st.integers(-5, 5), min_size=1, max_size=8),
        right_col=st.lists(st.integers(-5, 5), min_size=1, max_size=8),
        threshold=st.integers(-5, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_cross_comparison_matches_serial(
        self, left_col, right_col, threshold
    ):
        left = batch({"l.a": left_col})
        right = batch({"r.a": right_col})
        labels = ["l.a", "r.a"]
        predicate = And(
            Comparison(col("l.a"), "<=", col("r.a")),
            Comparison(col("l.a"), ">", lit(threshold)),
        )
        got = vector_product_select_positions(predicate, left, right, labels)
        assert got == serial_product_select(predicate, left, right)

    def test_executor_fused_path_matches_columnar(self):
        from repro.relational.algebra import Product, Scan, Select
        from repro.relational.database import Database
        from repro.relational.executor import Executor
        from repro.relational.relation import Relation
        from repro.relational.schema import DatabaseSchema, RelationSchema
        from repro.relational.types import DataType

        schema = DatabaseSchema(
            "S",
            [
                RelationSchema.build(
                    "emp", [("id", DataType.INTEGER), ("dept", DataType.INTEGER)]
                ),
                RelationSchema.build(
                    "dept", [("id", DataType.INTEGER), ("dname", DataType.STRING)]
                ),
            ],
        )
        db = Database(schema)
        db.set_relation(
            "emp",
            Relation.from_schema(
                schema.relation("emp"), [(1, 10), (2, 20), (3, 10), (4, 30)]
            ),
        )
        db.set_relation(
            "dept",
            Relation.from_schema(
                schema.relation("dept"), [(10, "db"), (20, "os"), (40, "pl")]
            ),
        )
        plan = Select(
            Product(Scan("emp"), Scan("dept")),
            Comparison(col("emp.dept"), "=", col("dept.id")),
        )
        results = {}
        stats = {}
        for engine in ("columnar", "vector"):
            executor = Executor(db, engine=engine)
            results[engine] = executor.execute(plan)
            stats[engine] = dict(executor.stats.operators)
        assert results["vector"].columns == results["columnar"].columns
        assert results["vector"].rows == results["columnar"].rows
        assert stats["vector"] == stats["columnar"]

    def test_fused_gather_preserves_object_identity(self):
        # A {bool, int} column classifies as int64 for masking, but the
        # surviving rows are gathered from the original Python lists — the
        # bool must come back as the very same object, not as 1.
        from repro.relational.algebra import Product, Scan, Select
        from repro.relational.database import Database
        from repro.relational.executor import Executor
        from repro.relational.relation import Relation
        from repro.relational.schema import DatabaseSchema, RelationSchema
        from repro.relational.types import DataType

        schema = DatabaseSchema(
            "S",
            [
                RelationSchema.build(
                    "flags", [("id", DataType.INTEGER), ("ok", DataType.INTEGER)]
                ),
                RelationSchema.build("one", [("x", DataType.INTEGER)]),
            ],
        )
        db = Database(schema)
        db.set_relation(
            "flags",
            Relation.from_schema(schema.relation("flags"), [(1, True), (2, 7)]),
        )
        db.set_relation("one", Relation.from_schema(schema.relation("one"), [(9,)]))
        plan = Select(
            Product(Scan("flags"), Scan("one")), Equals(col("flags.ok"), 1)
        )
        result = Executor(db, engine="vector").execute(plan)
        assert result.rows == [(1, True, 9)]
        assert result.rows[0][1] is True
