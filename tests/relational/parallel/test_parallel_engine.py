"""The parallel engine is byte-identical to the serial columnar engine.

Covers the morsel kernels directly (masks, join indices, grouping, dedup),
the executor's per-node fallback, the process-pool pickling fallback, and
the compute-once registry behind the batch evaluator's inter-query
parallelism.  Thresholds are forced to zero so the parallel paths execute
even on small test data.
"""

from __future__ import annotations

import random

import pytest

from repro.relational.algebra import (
    Aggregate,
    Join,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.columnar import ColumnBatch, predicate_mask
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.expressions import col, lit
from repro.relational.parallel import (
    InflightComputations,
    ParallelConfig,
    parallel_distinct_indices,
    parallel_group_indices,
    parallel_join_indices,
    parallel_predicate_mask,
    run_tasks,
)
from repro.relational.predicates import (
    And,
    Between,
    ColumnEquals,
    Comparison,
    Equals,
    GreaterThan,
    In,
    Not,
    Or,
    Predicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.stats import ExecutionStats
from repro.relational.types import DataType

_I = DataType.INTEGER
_S = DataType.STRING

#: every parallel path fires, regardless of input size
FORCED = ParallelConfig(workers=4, min_partition_rows=0)


def make_database(rows: int = 240, seed: int = 11) -> Database:
    rng = random.Random(seed)
    schema = DatabaseSchema(
        "S",
        [
            RelationSchema.build("emp", [("id", _I), ("name", _S), ("dept", _I)]),
            RelationSchema.build("dept", [("id", _I), ("dname", _S)]),
        ],
    )
    database = Database(schema)
    emp_rows = []
    for i in range(rows):
        name = rng.choice(["ann", "bob", "cat", "2", None])
        dept = rng.choice([10, 20, 30, "10", None, float("nan")])
        emp_rows.append((i, name, dept))
    database.set_relation(
        "emp", Relation.from_schema(schema.relation("emp"), emp_rows)
    )
    database.set_relation(
        "dept",
        Relation.from_schema(
            schema.relation("dept"), [(10, "db"), (20, "os"), (30, "net"), ("10", "qa")]
        ),
    )
    return database


PLANS = {
    "select-chain": lambda: Select(
        Select(Scan("emp"), GreaterThan(col("id"), lit(20))),
        Or(Equals(col("name"), lit("ann")), Equals(col("dept"), lit("10"))),
    ),
    "select-mixed-coercion": lambda: Select(
        Scan("emp"),
        And(
            In(col("name"), ("ann", "2", "cat")),
            Not(Between(col("id"), 5, 10)),
        ),
    ),
    "join": lambda: Join(
        Scan("emp"),
        Scan("dept", alias="d"),
        ColumnEquals(col("dept", "emp"), col("id", "d")),
    ),
    "join-residual": lambda: Join(
        Scan("emp"),
        Scan("dept", alias="d"),
        And(
            ColumnEquals(col("dept", "emp"), col("id", "d")),
            GreaterThan(col("id", "emp"), lit(50)),
        ),
    ),
    "product-filter": lambda: Select(
        Product(Scan("emp", alias="a"), Scan("dept", alias="b")),
        Equals(col("dname", "b"), lit("db")),
    ),
    "project-distinct": lambda: Project(
        Scan("emp"), [col("name"), col("dept")], distinct=True
    ),
    "union-distinct": lambda: Union(
        Project(Scan("emp"), [col("name")]),
        Project(Scan("emp"), [col("name")]),
        distinct=True,
    ),
    "aggregate-grouped": lambda: Aggregate(
        Scan("emp"), "COUNT", None, group_by=[col("dept")]
    ),
    "aggregate-sum": lambda: Aggregate(
        Scan("emp"), "SUM", col("id"), group_by=[col("name")]
    ),
}


@pytest.fixture(scope="module")
def database() -> Database:
    return make_database()


class TestEngineParity:
    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_byte_identical_to_columnar(self, database, plan_name, workers):
        plan = PLANS[plan_name]()
        serial_stats, parallel_stats = ExecutionStats(), ExecutionStats()
        serial = Executor(database, serial_stats, engine="columnar").execute(plan)
        parallel = Executor(
            database,
            parallel_stats,
            engine="parallel",
            parallel=ParallelConfig(workers=workers, min_partition_rows=0),
        ).execute(plan)
        assert parallel.columns == serial.columns
        assert parallel.rows == serial.rows  # same rows, same order
        assert dict(parallel_stats.operators) == dict(serial_stats.operators)
        assert parallel_stats.rows_scanned == serial_stats.rows_scanned
        assert parallel_stats.rows_output == serial_stats.rows_output

    def test_large_threshold_falls_back_per_node(self, database):
        executor = Executor(
            database,
            engine="parallel",
            parallel=ParallelConfig(workers=4, min_partition_rows=10**6),
        )
        plan = PLANS["join-residual"]()
        serial = Executor(database, engine="columnar").execute(plan)
        assert executor.execute(plan).rows == serial.rows
        # Nothing is large enough to shard: every node took the serial path.
        assert not executor._use_parallel(
            ColumnBatch.from_relation(database.relation("emp"))
        )

    def test_select_over_scan_uses_the_shard_cache(self, database):
        """Base-relation sweeps shard through the version-keyed shard cache."""
        relation = database.relation("emp")
        relation._shard_cache[0] = None  # forget anything earlier tests cached
        executor = Executor(
            database,
            engine="parallel",
            parallel=ParallelConfig(workers=4, min_partition_rows=0),
        )
        executor.execute(PLANS["select-chain"]())
        cached = relation._shard_cache[0]
        assert cached is not None and cached[0] == relation.version
        chunked = cached[1]["chunk-columns"]
        assert chunked["shards"] == 4
        # Only the select sitting directly on the scan sweeps the base
        # relation, and only its referenced column was sliced (id = 0).
        assert sorted(chunked["columns"]) == [0]
        # A second query over the same relation reuses the cached id slices
        # and adds only the newly referenced column (name = 1).
        entry_before = chunked["columns"][0]
        executor.execute(PLANS["select-mixed-coercion"]())
        chunked = relation._shard_cache[0][1]["chunk-columns"]
        assert chunked["columns"][0] is entry_before
        assert 1 in chunked["columns"]
        # A different shard count replaces the cached slices instead of
        # accumulating a second full copy per column.
        other = Executor(
            database,
            engine="parallel",
            parallel=ParallelConfig(workers=2, min_partition_rows=0),
        )
        other.execute(PLANS["select-chain"]())
        chunked = relation._shard_cache[0][1]["chunk-columns"]
        assert chunked["shards"] == 2 and len(chunked["spans"]) == 2

    def test_process_pool_matches(self, database):
        plan = PLANS["select-chain"]()
        serial = Executor(database, engine="columnar").execute(plan)
        process = Executor(
            database,
            engine="parallel",
            parallel=ParallelConfig(workers=2, kind="process", min_partition_rows=0),
        ).execute(plan)
        assert process.rows == serial.rows


class TestKernels:
    def test_parallel_mask_matches_serial(self, database):
        batch = ColumnBatch.from_relation(database.relation("emp"))
        predicates = [
            Equals(col("name"), lit("ann")),
            Comparison(col("dept"), "<", lit(25)),
            Or(Equals(col("name"), lit("2")), GreaterThan(col("id"), lit(100))),
            And(In(col("dept"), (10, "10")), Not(Equals(col("name"), lit("bob")))),
            Between(col("id"), 10, 200),
        ]
        for predicate in predicates:
            assert parallel_predicate_mask(predicate, batch, FORCED) == predicate_mask(
                predicate, batch
            ), predicate.canonical()

    def test_unpicklable_predicate_falls_back_to_threads(self, database):
        class Always(Predicate):  # local class: cannot pickle
            def evaluate(self, relation, row):
                return True

            def referenced_columns(self):
                return []

            def rename(self, rename_ref):
                return self

            def canonical(self):
                return "ALWAYS"

        batch = ColumnBatch.from_relation(database.relation("emp"))
        config = ParallelConfig(workers=2, kind="process", min_partition_rows=0)
        mask = parallel_predicate_mask(Always(), batch, config)
        assert mask == [True] * len(batch)

    @pytest.mark.parametrize("pure_equi", [True, False])
    def test_join_indices_match_serial(self, database, pure_equi):
        left = ColumnBatch.from_relation(database.relation("emp"))
        right = ColumnBatch.from_relation(database.relation("dept"))
        pairs = [(2, 0)]  # emp.dept = dept.id
        left_idx, right_idx = parallel_join_indices(
            left, right, pairs, pure_equi, FORCED
        )
        # serial reference (the executor's single-pair loop)
        from collections import defaultdict

        buckets = defaultdict(list)
        for i, value in enumerate(right.data[0]):
            if pure_equi and not (value is not None and value == value):
                continue
            buckets[value].append(i)
        expected_left, expected_right = [], []
        for i, value in enumerate(left.data[2]):
            bucket = buckets.get(value)
            if bucket:
                expected_left.extend([i] * len(bucket))
                expected_right.extend(bucket)
        assert (left_idx, right_idx) == (expected_left, expected_right)

    def test_composite_join_indices_match_serial(self):
        left = ColumnBatch(["l.a", "l.b"], [[1, 2, 1, None], ["x", "y", "x", "x"]])
        right = ColumnBatch(["r.a", "r.b"], [[1, 1, 2], ["x", "x", "y"]])
        pairs = [(0, 0), (1, 1)]
        got = parallel_join_indices(left, right, pairs, True, FORCED)
        assert got == ([0, 0, 1, 2, 2], [0, 1, 2, 0, 1])

    def test_group_indices_match_serial_order(self):
        keys = [["a", "b", "a", "c", "b", "a"], [1, 1, 1, 2, 1, 1]]
        groups = parallel_group_indices(keys, 6, FORCED)
        assert list(groups.items()) == [
            (("a", 1), [0, 2, 5]),
            (("b", 1), [1, 4]),
            (("c", 2), [3]),
        ]

    def test_distinct_indices_match_serial_order(self):
        data = [["a", "b", "a", "c", "b", "a", "d"]]
        assert parallel_distinct_indices(data, 7, FORCED) == [0, 1, 3, 6]

    def test_run_tasks_serial_when_one_worker(self):
        config = ParallelConfig(workers=1)
        assert run_tasks(config, lambda x: x * 2, [(1,), (2,), (3,)]) == [2, 4, 6]


class TestInflight:
    def test_single_owner_and_waiters(self):
        registry = InflightComputations()
        future, owner = registry.claim("k")
        assert owner
        future2, owner2 = registry.claim("k")
        assert not owner2 and future2 is future
        registry.resolve("k", future, ("result", 3))
        assert future2.result() == ("result", 3)
        # retired: the next claim starts a fresh computation
        _, owner3 = registry.claim("k")
        assert owner3

    def test_failure_propagates_to_waiters(self):
        registry = InflightComputations()
        future, _ = registry.claim("k")
        waiter, _ = registry.claim("k")
        registry.fail("k", future, ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            waiter.result()

    def test_executor_waiter_accounts_cache_hit(self, database):
        from repro.relational.plancache import MaterializeAll, PlanCache

        plan = PLANS["join"]()
        cache = PlanCache()
        registry = InflightComputations()
        owner_stats, waiter_stats = ExecutionStats(), ExecutionStats()
        owner = Executor(
            database,
            owner_stats,
            cache=cache,
            policy=MaterializeAll(),
            engine="parallel",
            parallel=FORCED,
            inflight=registry,
        )
        result = owner.execute(plan)
        # Fresh cache for the waiter so the in-flight future is its only
        # source; pre-resolve the claim as a finished computation.
        future, is_owner = registry.claim(plan.canonical())
        assert is_owner
        registry.resolve(plan.canonical(), future, (result, 3))
        waiter = Executor(
            database,
            waiter_stats,
            cache=PlanCache(),
            policy=MaterializeAll(),
            engine="parallel",
            parallel=FORCED,
            inflight=registry,
        )
        # Claim was retired on resolve, so this computes normally...
        assert waiter.execute(plan).rows == result.rows


class TestMapOrderedErrorSemantics:
    def test_error_waits_out_siblings_on_a_long_lived_pool(self):
        """One failing job must not leave orphan siblings running.

        On a session-owned (long-lived) pool the call must drain every
        sibling task before re-raising — otherwise Session.close()'s drain
        guarantee could shut the pools down under a still-running job.
        """
        import time

        import pytest

        from repro.relational.parallel import PoolManager
        from repro.relational.parallel.pool import map_ordered

        pools = PoolManager()
        started = []
        finished = []

        def job(i):
            if i == 0:
                raise ValueError("boom")
            started.append(i)
            time.sleep(0.05)
            finished.append(i)
            return i

        try:
            with pytest.raises(ValueError, match="boom"):
                map_ordered(4, job, range(4), pools=pools)
            # Every sibling that started also finished before the error
            # propagated (not-yet-started ones were cancelled): nothing is
            # left running on the long-lived pool.
            assert sorted(finished) == sorted(started)
            assert not pools.closed
        finally:
            pools.shutdown()
