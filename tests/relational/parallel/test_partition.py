"""Unit tests for the horizontal partitioners and the version-keyed shard cache."""

from __future__ import annotations

import pytest

from repro.relational.columnar import ColumnBatch
from repro.relational.database import Database
from repro.relational.parallel import (
    ParallelConfig,
    chunk_spans,
    configure,
    default_config,
    hash_partition_indices,
    round_robin_indices,
    shard_batch,
    shard_relation,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema


def make_relation(n: int = 20) -> Relation:
    return Relation(
        ["t.a", "t.b"], [(i, f"v{i % 3}") for i in range(n)], name="t"
    )


class TestChunkSpans:
    def test_balanced_and_complete(self):
        spans = chunk_spans(10, 3)
        assert spans == [(0, 4), (4, 7), (7, 10)]
        covered = [i for a, b in spans for i in range(a, b)]
        assert covered == list(range(10))

    def test_never_more_spans_than_rows(self):
        assert chunk_spans(2, 8) == [(0, 1), (1, 2)]

    def test_empty_input(self):
        assert chunk_spans(0, 4) == []

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            chunk_spans(5, 0)


class TestRoundRobin:
    def test_strided_assignment(self):
        indices = round_robin_indices(7, 3)
        assert indices == [[0, 3, 6], [1, 4], [2, 5]]

    def test_balanced_on_sorted_input(self):
        indices = round_robin_indices(100, 4)
        assert all(len(shard) == 25 for shard in indices)


class TestHashPartition:
    def test_equal_keys_colocated(self):
        values = [1, 2, 1, 3, 2, 1]
        partitions = hash_partition_indices(values, 3)
        home = {}
        for shard, indices in enumerate(partitions):
            for i in indices:
                assert home.setdefault(values[i], shard) == shard

    def test_covers_all_rows(self):
        partitions = hash_partition_indices(list("abcabcxyz"), 4)
        assert sorted(i for p in partitions for i in p) == list(range(9))


class TestShardSet:
    @pytest.mark.parametrize("mode,key", [("chunk", None), ("round-robin", None), ("hash", "a")])
    def test_reassemble_restores_row_order(self, mode, key):
        relation = make_relation(23)
        shard_set = shard_relation(relation, 4, mode=mode, key=key)
        assert shard_set.total_rows == 23
        assert list(shard_set.reassemble().iter_rows()) == relation.rows

    def test_hash_mode_needs_key(self):
        with pytest.raises(ValueError, match="key"):
            shard_relation(make_relation(), 4, mode="hash")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown partition mode"):
            shard_relation(make_relation(), 4, mode="range")

    def test_shard_batch_without_source(self):
        batch = ColumnBatch(["x"], [[3, 1, 2, 5, 4]])
        shard_set = shard_batch(batch, 2)
        assert [list(s.data[0]) for s in shard_set.shards] == [[3, 1, 2], [5, 4]]


class TestShardCache:
    def test_shards_cached_per_version(self):
        relation = make_relation()
        first = shard_relation(relation, 3)
        second = shard_relation(relation, 3)
        # Same underlying column lists: the second call hit the cache.
        assert first.shards[0].data[0] is second.shards[0].data[0]

    def test_cache_reused_across_prefixed_and_renamed_views(self):
        relation = make_relation()
        base = shard_relation(relation, 3)
        prefixed = shard_relation(relation.prefixed("x"), 3)
        renamed = shard_relation(relation.rename({"t.a": "t.alpha"}), 3)
        assert base.shards[0].data[0] is prefixed.shards[0].data[0]
        assert base.shards[0].data[0] is renamed.shards[0].data[0]
        # ... but each view's shards carry the view's own labels.
        assert prefixed.shards[0].columns == ("x.a", "x.b")
        assert renamed.shards[0].columns == ("t.alpha", "t.b")

    def test_distinct_shard_counts_cached_separately(self):
        relation = make_relation()
        three = shard_relation(relation, 3)
        four = shard_relation(relation, 4)
        assert len(three.shards) == 3
        assert len(four.shards) == 4

    def test_mutation_invalidates(self):
        relation = make_relation()
        before = shard_relation(relation, 3)
        relation.append((99, "z"))
        after = shard_relation(relation, 3)
        assert after.total_rows == before.total_rows + 1
        # The append extends only the *last* shard (a brand-new list); the
        # pre-append ShardSet keeps its snapshot untouched.
        assert before.shards[-1].data[0] is not after.shards[-1].data[0]
        assert after.shards[-1].data[0][-1] == 99
        assert before.total_rows == 20
        assert after.reassemble().data[0] == [row[0] for row in relation.rows]

    def test_nonappend_mutation_rebuilds_shards(self):
        relation = make_relation()
        before = shard_relation(relation, 3)
        relation.delete_rows([0])
        after = shard_relation(relation, 3)
        assert after.total_rows == before.total_rows - 1
        assert after.reassemble().data[0] == [row[0] for row in relation.rows]

    def test_set_relation_yields_fresh_shards(self):
        schema = DatabaseSchema(
            "db",
            [RelationSchema("t", [Attribute("t", "a"), Attribute("t", "b")])],
        )
        database = Database(schema, {"t": make_relation()})
        before = shard_relation(database.relation("t"), 3)
        database.set_relation(
            "t", Relation(["t.a", "t.b"], [(1, "x")], name="t")
        )
        after = shard_relation(database.relation("t"), 3)
        assert after.total_rows == 1
        assert before.total_rows == 20


class TestParallelConfig:
    def test_workers_resolution_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "7")
        assert ParallelConfig(workers=2).resolved_workers() == 2
        assert ParallelConfig().resolved_workers() == 7

    def test_shards_for_respects_min_rows(self):
        config = ParallelConfig(workers=4, min_partition_rows=100)
        assert config.shards_for(50) == 1  # too small to shard
        assert config.shards_for(250) == 2
        assert config.shards_for(10_000) == 4

    def test_zero_min_rows_always_shards(self):
        config = ParallelConfig(workers=4, min_partition_rows=0)
        assert config.shards_for(2) == 2
        assert config.shards_for(100) == 4

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="pool kind"):
            ParallelConfig(kind="greenlet")

    def test_configure_restores_default(self):
        original = default_config()
        with configure(workers=13) as config:
            assert default_config() is config
            assert config.workers == 13
        assert default_config() is original
