"""Unit tests for hash indexes."""

from repro.relational.indexes import HashIndex, IndexCatalog
from repro.relational.relation import Relation


def relation():
    return Relation(["r.a", "r.b"], [(1, "x"), (2, "y"), (1, "z")], name="r")


class TestHashIndex:
    def test_lookup_positions(self):
        index = HashIndex(relation(), "r.a")
        assert index.lookup(1) == [0, 2]
        assert index.lookup(3) == []

    def test_lookup_rows(self):
        index = HashIndex(relation(), "r.a")
        assert index.lookup_rows(2) == [(2, "y")]

    def test_contains_and_len(self):
        index = HashIndex(relation(), "r.a")
        assert 1 in index
        assert 3 not in index
        assert len(index) == 2

    def test_unhashable_values_are_skipped(self):
        rel = Relation(["r.a"], [([1, 2],), (3,)])
        index = HashIndex(rel, "r.a")
        assert index.lookup(3) == [1]


class TestIndexCatalog:
    def test_caches_per_relation_and_column(self):
        catalog = IndexCatalog()
        rel = relation()
        first = catalog.get(rel, "r", "r.a")
        second = catalog.get(rel, "r", "r.a")
        assert first is second
        assert len(catalog) == 1

    def test_rebuilds_when_relation_object_changes(self):
        catalog = IndexCatalog()
        first = catalog.get(relation(), "r", "r.a")
        second = catalog.get(relation(), "r", "r.a")
        assert first is not second

    def test_fresh_view_of_same_data_hits_cache(self):
        # Regression: a fresh aliased view of unchanged data used to force a
        # rebuild (the cache compared object identity).  Views created by
        # prefixed()/rename() share the data-version token, so repeated
        # indexed selects build exactly one index.
        catalog = IndexCatalog()
        rel = relation()
        first = catalog.get(rel, "r", "r.a")
        view = rel.prefixed("r")
        assert view is not rel
        second = catalog.get(view, "r", "r.a")
        assert first is second
        assert catalog.builds == 1

    def test_mutation_forces_rebuild(self):
        catalog = IndexCatalog()
        rel = relation()
        first = catalog.get(rel, "r", "r.a")
        rel.append((5, "w"))
        second = catalog.get(rel, "r", "r.a")
        assert first is not second
        assert second.lookup(5) == [3]
        assert catalog.builds == 2

    def test_invalidation_listener_notified(self):
        catalog = IndexCatalog()
        seen = []
        catalog.add_invalidation_listener(seen.append)
        catalog.get(relation(), "r", "r.a")
        catalog.invalidate("r")
        catalog.invalidate()
        assert seen == ["r", None]
        catalog.remove_invalidation_listener(seen.append)
        catalog.invalidate()
        assert seen == ["r", None]

    def test_invalidate_single_relation(self):
        catalog = IndexCatalog()
        rel = relation()
        catalog.get(rel, "r", "r.a")
        catalog.get(rel, "r", "r.b")
        catalog.invalidate("r")
        assert len(catalog) == 0

    def test_invalidate_all(self):
        catalog = IndexCatalog()
        catalog.get(relation(), "r", "r.a")
        catalog.invalidate()
        assert len(catalog) == 0


class TestDeltaPatching:
    """In-place index maintenance through write deltas (``apply_delta``)."""

    def test_append_patches_in_place(self):
        catalog = IndexCatalog()
        rel = relation()
        index = catalog.get(rel, "r", "r.a")
        delta = rel.append_rows([(2, "w"), (4, "u")])
        assert catalog.apply_delta("r", rel, delta) == 1
        assert catalog.get(rel, "r", "r.a") is index
        assert index.lookup(2) == [1, 3]
        assert index.lookup(4) == [4]
        assert (catalog.builds, catalog.patches, catalog.rebuilds) == (1, 1, 0)

    def test_delete_patches_in_place(self):
        # Regression: delete/update deltas used to drop the cached index and
        # force a full rebuild on next use.  Deleting positions 1 and 3 keeps
        # rows 0/2/4, which shift down to 0/1/2 — the patched buckets must be
        # exactly what a fresh build over the post-write rows produces.
        catalog = IndexCatalog()
        rel = Relation(["r.a"], [(1,), (2,), (1,), (3,), (2,)], name="r")
        index = catalog.get(rel, "r", "r.a")
        delta = rel.delete_rows([1, 3])
        assert catalog.apply_delta("r", rel, delta) == 1
        assert catalog.get(rel, "r", "r.a") is index
        assert index.lookup(1) == [0, 1]
        assert index.lookup(2) == [2]
        assert 3 not in index
        assert index._buckets == HashIndex(rel, "r.a")._buckets
        assert (catalog.builds, catalog.patches, catalog.rebuilds) == (1, 1, 0)

    def test_update_patches_in_place(self):
        catalog = IndexCatalog()
        rel = Relation(["r.a"], [(1,), (2,), (1,)], name="r")
        index = catalog.get(rel, "r", "r.a")
        delta = rel.update_rows([0, 2], [(2,), (4,)])
        assert catalog.apply_delta("r", rel, delta) == 1
        assert catalog.get(rel, "r", "r.a") is index
        assert index.lookup(1) == []
        assert index.lookup(2) == [0, 1]
        assert index.lookup(4) == [2]
        assert index._buckets == HashIndex(rel, "r.a")._buckets
        assert (catalog.builds, catalog.patches, catalog.rebuilds) == (1, 1, 0)

    def test_mixed_write_sequence_tracks_fresh_build(self):
        catalog = IndexCatalog()
        rel = Relation(["r.a"], [(i % 3,) for i in range(9)], name="r")
        index = catalog.get(rel, "r", "r.a")
        for delta in (
            rel.append_rows([(5,), (0,)]),
            rel.update_rows([0, 4, 9], [(7,), (7,), (1,)]),
            rel.delete_rows([2, 3, 10]),
        ):
            assert catalog.apply_delta("r", rel, delta) == 1
        assert catalog.get(rel, "r", "r.a") is index
        assert index._buckets == HashIndex(rel, "r.a")._buckets
        assert (catalog.builds, catalog.patches, catalog.rebuilds) == (1, 3, 0)

    def test_broken_chain_drops_entry(self):
        catalog = IndexCatalog()
        rel = relation()
        index = catalog.get(rel, "r", "r.a")
        rel.append_rows([(7, "a")])  # this delta is never applied
        delta = rel.append_rows([(8, "b")])
        assert catalog.apply_delta("r", rel, delta) == 0
        assert (catalog.patches, catalog.rebuilds) == (0, 1)
        rebuilt = catalog.get(rel, "r", "r.a")
        assert rebuilt is not index
        assert rebuilt.lookup(7) == [3]
        assert catalog.builds == 2

    def test_none_delta_drops_entry(self):
        catalog = IndexCatalog()
        rel = relation()
        catalog.get(rel, "r", "r.a")
        assert catalog.apply_delta("r", rel, None) == 0
        assert len(catalog) == 0
        assert catalog.rebuilds == 1

    def test_database_write_path_patches_every_kind(self):
        from repro.relational.database import Database
        from repro.relational.schema import DatabaseSchema, RelationSchema
        from repro.relational.types import DataType

        schema = DatabaseSchema(
            "S",
            [RelationSchema.build("emp", [("id", DataType.INTEGER), ("dept", DataType.INTEGER)])],
        )
        db = Database(schema)
        db.set_relation(
            "emp",
            Relation.from_schema(schema.relation("emp"), [(1, 10), (2, 20), (3, 10)]),
        )
        index = db.index("emp", "dept")
        db.append_rows("emp", [(4, 20)])
        db.update_rows("emp", [0], [(1, 30)])
        db.delete_rows("emp", [1])
        catalog = db.index_catalog
        assert catalog.get(db.relation("emp"), "emp", "emp.dept") is index
        assert index._buckets == HashIndex(db.relation("emp"), "emp.dept")._buckets
        assert (catalog.builds, catalog.patches, catalog.rebuilds) == (1, 3, 0)
