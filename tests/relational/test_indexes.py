"""Unit tests for hash indexes."""

from repro.relational.indexes import HashIndex, IndexCatalog
from repro.relational.relation import Relation


def relation():
    return Relation(["r.a", "r.b"], [(1, "x"), (2, "y"), (1, "z")], name="r")


class TestHashIndex:
    def test_lookup_positions(self):
        index = HashIndex(relation(), "r.a")
        assert index.lookup(1) == [0, 2]
        assert index.lookup(3) == []

    def test_lookup_rows(self):
        index = HashIndex(relation(), "r.a")
        assert index.lookup_rows(2) == [(2, "y")]

    def test_contains_and_len(self):
        index = HashIndex(relation(), "r.a")
        assert 1 in index
        assert 3 not in index
        assert len(index) == 2

    def test_unhashable_values_are_skipped(self):
        rel = Relation(["r.a"], [([1, 2],), (3,)])
        index = HashIndex(rel, "r.a")
        assert index.lookup(3) == [1]


class TestIndexCatalog:
    def test_caches_per_relation_and_column(self):
        catalog = IndexCatalog()
        rel = relation()
        first = catalog.get(rel, "r", "r.a")
        second = catalog.get(rel, "r", "r.a")
        assert first is second
        assert len(catalog) == 1

    def test_rebuilds_when_relation_object_changes(self):
        catalog = IndexCatalog()
        first = catalog.get(relation(), "r", "r.a")
        second = catalog.get(relation(), "r", "r.a")
        assert first is not second

    def test_fresh_view_of_same_data_hits_cache(self):
        # Regression: a fresh aliased view of unchanged data used to force a
        # rebuild (the cache compared object identity).  Views created by
        # prefixed()/rename() share the data-version token, so repeated
        # indexed selects build exactly one index.
        catalog = IndexCatalog()
        rel = relation()
        first = catalog.get(rel, "r", "r.a")
        view = rel.prefixed("r")
        assert view is not rel
        second = catalog.get(view, "r", "r.a")
        assert first is second
        assert catalog.builds == 1

    def test_mutation_forces_rebuild(self):
        catalog = IndexCatalog()
        rel = relation()
        first = catalog.get(rel, "r", "r.a")
        rel.append((5, "w"))
        second = catalog.get(rel, "r", "r.a")
        assert first is not second
        assert second.lookup(5) == [3]
        assert catalog.builds == 2

    def test_invalidation_listener_notified(self):
        catalog = IndexCatalog()
        seen = []
        catalog.add_invalidation_listener(seen.append)
        catalog.get(relation(), "r", "r.a")
        catalog.invalidate("r")
        catalog.invalidate()
        assert seen == ["r", None]
        catalog.remove_invalidation_listener(seen.append)
        catalog.invalidate()
        assert seen == ["r", None]

    def test_invalidate_single_relation(self):
        catalog = IndexCatalog()
        rel = relation()
        catalog.get(rel, "r", "r.a")
        catalog.get(rel, "r", "r.b")
        catalog.invalidate("r")
        assert len(catalog) == 0

    def test_invalidate_all(self):
        catalog = IndexCatalog()
        catalog.get(relation(), "r", "r.a")
        catalog.invalidate()
        assert len(catalog) == 0
