"""Property-based tests for the relational engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import Aggregate, Materialized, Product, Project, Select
from repro.relational.database import Database
from repro.relational.executor import execute
from repro.relational.expressions import col
from repro.relational.predicates import And, Equals, GreaterThan, Not, Or
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema
from repro.relational.types import comparable

#: Small value domains keep collisions (and therefore interesting joins /
#: duplicate answers) frequent.
values = st.integers(min_value=0, max_value=5)
rows = st.lists(st.tuples(values, values, values), max_size=30)


def make_relation(raw_rows) -> Relation:
    return Relation(["t.a", "t.b", "t.c"], raw_rows, name="t")


def empty_database() -> Database:
    return Database(DatabaseSchema("S", []))


@settings(max_examples=60, deadline=None)
@given(rows=rows, constant=values)
def test_selection_is_subset_and_sound(rows, constant):
    relation = make_relation(rows)
    plan = Select(Materialized(relation), Equals(col("t.a"), constant))
    result = execute(plan, empty_database())
    assert len(result) <= len(relation)
    assert all(row[0] == constant for row in result)
    assert sum(1 for row in relation.rows if row[0] == constant) == len(result)


@settings(max_examples=60, deadline=None)
@given(rows=rows, constant=values)
def test_selection_commutes(rows, constant):
    relation = make_relation(rows)
    first = Select(
        Select(Materialized(relation), Equals(col("t.a"), constant)),
        GreaterThan(col("t.b"), 2),
    )
    second = Select(
        Select(Materialized(relation), GreaterThan(col("t.b"), 2)),
        Equals(col("t.a"), constant),
    )
    assert execute(first, empty_database()).rows == execute(second, empty_database()).rows


@settings(max_examples=60, deadline=None)
@given(rows=rows, constant=values)
def test_negation_partitions_the_relation(rows, constant):
    relation = make_relation(rows)
    predicate = Equals(col("t.a"), constant)
    kept = execute(Select(Materialized(relation), predicate), empty_database())
    dropped = execute(Select(Materialized(relation), Not(predicate)), empty_database())
    assert len(kept) + len(dropped) == len(relation)


@settings(max_examples=60, deadline=None)
@given(rows=rows, constant=values)
def test_and_or_consistency(rows, constant):
    relation = make_relation(rows)
    left = Equals(col("t.a"), constant)
    right = GreaterThan(col("t.c"), 2)
    both = execute(Select(Materialized(relation), And(left, right)), empty_database())
    either = execute(Select(Materialized(relation), Or(left, right)), empty_database())
    assert len(both) <= min(
        len(execute(Select(Materialized(relation), left), empty_database())),
        len(execute(Select(Materialized(relation), right), empty_database())),
    )
    assert len(either) >= len(both)


@settings(max_examples=60, deadline=None)
@given(rows=rows)
def test_projection_width_and_cardinality(rows):
    relation = make_relation(rows)
    result = execute(Project(Materialized(relation), [col("t.b"), col("t.a")]), empty_database())
    assert len(result) == len(relation)
    assert all(len(row) == 2 for row in result)


@settings(max_examples=60, deadline=None)
@given(rows=rows)
def test_distinct_projection_matches_python_set(rows):
    relation = make_relation(rows)
    result = execute(
        Project(Materialized(relation), [col("t.a")], distinct=True), empty_database()
    )
    assert {row[0] for row in result} == {row[0] for row in relation.rows}
    assert len(result) == len({row[0] for row in relation.rows})


@settings(max_examples=60, deadline=None)
@given(rows=rows)
def test_count_and_sum_match_python(rows):
    relation = make_relation(rows)
    count = execute(Aggregate(Materialized(relation), "COUNT"), empty_database())
    assert count.rows == [(len(rows),)]
    total = execute(Aggregate(Materialized(relation), "SUM", col("t.c")), empty_database())
    expected = sum(row[2] for row in rows) if rows else None
    assert total.rows == [(expected,)]


@settings(max_examples=60, deadline=None)
@given(rows=rows)
def test_group_by_partitions_rows(rows):
    relation = make_relation(rows)
    result = execute(
        Aggregate(Materialized(relation), "COUNT", group_by=[col("t.a")]),
        empty_database(),
    )
    assert sum(row[-1] for row in result.rows) == len(rows)


@settings(max_examples=40, deadline=None)
@given(left_rows=rows, right_rows=rows)
def test_product_cardinality_is_multiplicative(left_rows, right_rows):
    left = Relation(["l.a", "l.b", "l.c"], left_rows, name="l")
    right = Relation(["r.a", "r.b", "r.c"], right_rows, name="r")
    result = execute(Product(Materialized(left), Materialized(right)), empty_database())
    assert len(result) == len(left) * len(right)


@settings(max_examples=100, deadline=None)
@given(
    left=st.one_of(values, st.text(max_size=4), st.floats(allow_nan=False, allow_infinity=False)),
    right=st.one_of(values, st.text(max_size=4), st.floats(allow_nan=False, allow_infinity=False)),
)
def test_comparable_always_returns_comparable_pair(left, right):
    coerced_left, coerced_right = comparable(left, right)
    # The coerced pair must support equality and ordering without raising.
    assert (coerced_left == coerced_right) in (True, False)
    try:
        coerced_left < coerced_right
    except TypeError:  # pragma: no cover - would be a regression
        raise AssertionError(f"incomparable pair: {coerced_left!r}, {coerced_right!r}")
