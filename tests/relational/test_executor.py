"""Unit tests for the plan executor."""

import pytest

from repro.relational.algebra import Aggregate, Join, Materialized, Product, Project, Scan, Select
from repro.relational.database import Database
from repro.relational.executor import Executor, execute
from repro.relational.expressions import Arithmetic, col, lit
from repro.relational.predicates import (
    And,
    ColumnEquals,
    Equals,
    GreaterThan,
    TruePredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.stats import ExecutionStats
from repro.relational.types import DataType

_I = DataType.INTEGER
_S = DataType.STRING
_F = DataType.FLOAT


@pytest.fixture()
def database() -> Database:
    schema = DatabaseSchema(
        "S",
        [
            RelationSchema.build("emp", [("id", _I), ("name", _S), ("dept", _I), ("salary", _F)]),
            RelationSchema.build("dept", [("id", _I), ("dname", _S)]),
        ],
    )
    db = Database(schema)
    db.set_relation(
        "emp",
        Relation.from_schema(
            schema.relation("emp"),
            [
                (1, "ann", 10, 100.0),
                (2, "bob", 10, 200.0),
                (3, "cat", 20, 300.0),
                (4, "dan", 30, 400.0),
            ],
        ),
    )
    db.set_relation(
        "dept",
        Relation.from_schema(schema.relation("dept"), [(10, "db"), (20, "os"), (30, "net")]),
    )
    return db


class TestScanAndSelect:
    def test_scan(self, database):
        result = execute(Scan("emp"), database)
        assert len(result) == 4
        assert result.columns[0] == "emp.id"

    def test_scan_alias(self, database):
        result = execute(Scan("emp", alias="e1"), database)
        assert result.columns[0] == "e1.id"

    def test_indexed_equality_select(self, database):
        stats = ExecutionStats()
        result = execute(Select(Scan("emp"), Equals(col("emp.dept"), 10)), database, stats)
        assert {row[1] for row in result} == {"ann", "bob"}
        assert stats.operators["Select"] == 1

    def test_indexed_select_records_true_input_cardinality(self, database):
        # Regression: the indexed path used to record Scan(0, 0) and a
        # selection rows_in equal to the *post-filter* row count, making row
        # counters incomparable with the non-indexed path.  It now records
        # exactly what the generic path would: Scan(4, 4) + Select(4, 2).
        stats = ExecutionStats()
        execute(Select(Scan("emp"), Equals(col("emp.dept"), 10)), database, stats)
        assert stats.rows_scanned == 4 + 4
        assert stats.rows_output == 4 + 2

    def test_indexed_select_does_not_copy_base_relation(self, database):
        # Regression: the indexed path used to materialise the aliased base
        # relation via database.scan just to resolve one column.  The column
        # now resolves against the stored relation, so an aliased indexed
        # select must not pay an O(N) relabelling copy; observable proxy: the
        # index is built once and the result carries the aliased labels.
        plan = Select(Scan("emp", alias="e9"), Equals(col("e9.dept"), 10))
        result = execute(plan, database)
        assert result.columns[0] == "e9.id"
        assert result.name == "e9"
        assert len(result) == 2
        assert database.index_catalog.builds == 1

    def test_indexed_select_alias_mismatched_qualifier_falls_back(self, database):
        # A qualifier naming the base relation while the scan is aliased is
        # not resolvable on the indexed path; the generic path must answer.
        plan = Select(Scan("emp", alias="e1"), Equals(col("emp.dept"), 20))
        with pytest.raises(KeyError):
            execute(plan, database)

    def test_indexed_select_with_string_literal_for_int_column(self, database):
        result = execute(Select(Scan("emp"), Equals(col("emp.id"), "3")), database)
        assert len(result) == 1

    def test_non_indexed_select(self, database):
        plan = Select(Scan("emp"), GreaterThan(col("emp.salary"), 250))
        result = execute(plan, database)
        assert len(result) == 2

    def test_select_over_alias_uses_index_path(self, database):
        plan = Select(Scan("emp", alias="e1"), Equals(col("e1.dept"), 20))
        result = execute(plan, database)
        assert len(result) == 1
        assert result.columns[0] == "e1.id"

    def test_select_conjunction_not_indexed_but_correct(self, database):
        plan = Select(
            Scan("emp"),
            And(Equals(col("emp.dept"), 10), GreaterThan(col("emp.salary"), 150)),
        )
        result = execute(plan, database)
        assert [row[1] for row in result] == ["bob"]

    def test_select_true_predicate(self, database):
        result = execute(Select(Scan("emp"), TruePredicate()), database)
        assert len(result) == 4

    def test_materialized_leaf(self, database):
        relation = Relation(["x"], [(1,), (2,)])
        result = execute(Select(Materialized(relation), Equals(col("x"), 2)), database)
        assert result.rows == [(2,)]


class TestProject:
    def test_project(self, database):
        result = execute(Project(Scan("emp"), [col("emp.name")]), database)
        assert result.columns == ("emp.name",)
        assert len(result) == 4

    def test_project_distinct(self, database):
        result = execute(Project(Scan("emp"), [col("emp.dept")], distinct=True), database)
        assert len(result) == 3

    def test_project_repeated_column_gets_unique_label(self, database):
        result = execute(Project(Scan("emp"), [col("emp.name"), col("emp.name")]), database)
        assert len(set(result.columns)) == 2


class TestProductAndJoin:
    def test_product_cardinality(self, database):
        result = execute(Product(Scan("emp"), Scan("dept")), database)
        assert len(result) == 12
        assert len(result.columns) == 6

    def test_product_duplicate_labels_suffixed(self, database):
        result = execute(Product(Scan("emp"), Scan("emp")), database)
        assert len(set(result.columns)) == len(result.columns)

    def test_hash_join(self, database):
        plan = Join(Scan("emp"), Scan("dept"), ColumnEquals(col("emp.dept"), col("dept.id")))
        result = execute(plan, database)
        assert len(result) == 4

    def test_join_reversed_predicate_sides(self, database):
        plan = Join(Scan("emp"), Scan("dept"), ColumnEquals(col("dept.id"), col("emp.dept")))
        assert len(execute(plan, database)) == 4

    def test_theta_join_falls_back_to_nested_loops(self, database):
        plan = Join(
            Scan("emp"),
            Scan("dept"),
            GreaterThan(col("emp.dept"), 10) & ColumnEquals(col("emp.dept"), col("dept.id")),
        )
        result = execute(plan, database)
        assert len(result) == 2

    def test_join_with_residual_conjunct(self, database):
        predicate = And(
            ColumnEquals(col("emp.dept"), col("dept.id")),
            Equals(col("dept.dname"), "db"),
        )
        result = execute(Join(Scan("emp"), Scan("dept"), predicate), database)
        assert len(result) == 2


class TestAggregates:
    def test_count_star(self, database):
        result = execute(Aggregate(Scan("emp"), "COUNT"), database)
        assert result.rows == [(4,)]

    def test_count_ignores_nulls(self, database):
        relation = Relation(["x"], [(1,), (None,), (3,)])
        result = execute(Aggregate(Materialized(relation), "COUNT", col("x")), database)
        assert result.rows == [(2,)]

    def test_sum_avg_min_max(self, database):
        for function, expected in [("SUM", 1000.0), ("AVG", 250.0), ("MIN", 100.0), ("MAX", 400.0)]:
            result = execute(Aggregate(Scan("emp"), function, col("emp.salary")), database)
            assert result.rows == [(expected,)]

    def test_sum_over_empty_is_none(self, database):
        relation = Relation(["x"], [])
        result = execute(Aggregate(Materialized(relation), "SUM", col("x")), database)
        assert result.rows == [(None,)]

    def test_count_over_empty_is_zero(self, database):
        relation = Relation(["x"], [])
        result = execute(Aggregate(Materialized(relation), "COUNT"), database)
        assert result.rows == [(0,)]

    def test_group_by(self, database):
        plan = Aggregate(Scan("emp"), "SUM", col("emp.salary"), group_by=[col("emp.dept")])
        result = execute(plan, database)
        totals = dict(result.rows)
        assert totals == {10: 300.0, 20: 300.0, 30: 400.0}

    def test_aggregate_over_expression(self, database):
        plan = Aggregate(Scan("emp"), "SUM", Arithmetic("*", col("emp.salary"), lit(2)))
        result = execute(plan, database)
        assert result.rows == [(2000.0,)]


class TestStatsAndErrors:
    def test_stats_count_operators(self, database):
        stats = ExecutionStats()
        executor = Executor(database, stats)
        executor.execute_query(Select(Scan("emp"), Equals(col("emp.dept"), 10)))
        assert stats.source_queries == 1
        assert stats.operators["Select"] == 1
        assert stats.operators["Scan"] == 1

    def test_unknown_node_type_rejected(self, database):
        class Strange:
            pass

        with pytest.raises(TypeError):
            Executor(database).execute(Strange())

    def test_executor_uses_supplied_stats(self, database):
        stats = ExecutionStats()
        execute(Scan("emp"), database, stats)
        assert stats.rows_scanned == 4


class TestCompositeHashJoin:
    """Joins with several equality conjuncts hash on a composite key."""

    @pytest.fixture()
    def pairs_db(self) -> Database:
        schema = DatabaseSchema(
            "P",
            [
                RelationSchema.build("l", [("a", _I), ("b", _I), ("tag", _S)]),
                RelationSchema.build("r", [("a", _I), ("b", _I), ("val", _S)]),
            ],
        )
        db = Database(schema)
        db.set_relation(
            "l",
            Relation.from_schema(
                schema.relation("l"),
                [(1, 1, "x"), (1, 2, "y"), (2, 1, "z"), (None, 1, "n")],
            ),
        )
        db.set_relation(
            "r",
            Relation.from_schema(
                schema.relation("r"),
                [(1, 1, "p"), (1, 2, "q"), (2, 2, "s"), (None, 1, "m")],
            ),
        )
        return db

    def _join_plan(self):
        return Join(
            Scan("l"),
            Scan("r"),
            And(
                ColumnEquals(col("l.a"), col("r.a")),
                ColumnEquals(col("l.b"), col("r.b")),
            ),
        )

    def test_composite_key_matches_nested_loop(self, pairs_db):
        plan = self._join_plan()
        result = execute(plan, pairs_db, engine="row")
        # Only rows agreeing on *both* key columns survive; None never matches.
        assert sorted((row[2], row[5]) for row in result.rows) == [("x", "p"), ("y", "q")]

    def test_engines_agree_on_composite_join(self, pairs_db):
        plan = self._join_plan()
        row = execute(plan, pairs_db, engine="row")
        columnar = execute(plan, pairs_db, engine="columnar")
        assert row.columns == columnar.columns
        assert row.rows == columnar.rows

    def test_composite_with_residual_conjunct(self, pairs_db):
        plan = Join(
            Scan("l"),
            Scan("r"),
            And(
                ColumnEquals(col("l.a"), col("r.a")),
                ColumnEquals(col("l.b"), col("r.b")),
                Equals(col("l.tag"), "x"),
            ),
        )
        row = execute(plan, pairs_db, engine="row")
        columnar = execute(plan, pairs_db, engine="columnar")
        assert sorted((r[2], r[5]) for r in row.rows) == [("x", "p")]
        assert row.rows == columnar.rows

    def test_find_hash_join_collects_all_pairs(self, pairs_db):
        executor = Executor(pairs_db)
        left = pairs_db.relation("l")
        right = pairs_db.relation("r")
        predicate = And(
            ColumnEquals(col("l.a"), col("r.a")),
            ColumnEquals(col("l.b"), col("r.b")),
        )
        assert executor._find_hash_join(predicate, left, right) == [(0, 0), (1, 1)]


class TestIndexedSelectWithConjunction:
    def test_and_predicate_uses_index_and_filters_residual(self, database):
        stats = ExecutionStats()
        plan = Select(
            Scan("emp"),
            And(Equals(col("emp.dept"), 10), GreaterThan(col("emp.salary"), 150.0)),
        )
        result = execute(plan, database, stats)
        assert [row[1] for row in result.rows] == ["bob"]
        # Same operator and row counters as the generic path would record.
        assert stats.operators["Scan"] == 1 and stats.operators["Select"] == 1
        assert stats.rows_scanned == 4 + 4
        assert stats.rows_output == 4 + 1
        assert database.index_catalog.builds == 1

    def test_and_predicate_engines_agree(self, database):
        plan = Select(
            Scan("emp"),
            And(Equals(col("emp.dept"), 10), GreaterThan(col("emp.salary"), 150.0)),
        )
        row = execute(plan, database, engine="row")
        columnar = execute(plan, database, engine="columnar")
        assert row.rows == columnar.rows


class TestCompositeKeyCoercionGuard:
    """Mixed-representation key columns must not lose coercion matches."""

    @pytest.fixture()
    def mixed_db(self) -> Database:
        schema = DatabaseSchema(
            "M",
            [
                RelationSchema.build("a", [("x", _I), ("y", _S)]),
                RelationSchema.build("b", [("x", _I), ("y", _I)]),
            ],
        )
        db = Database(schema)
        # a.y holds the *string* "2"; b.y holds the int 2.  The coerced
        # residual accepts "2" = 2; a composite hash key would not.
        db.set_relation("a", Relation.from_schema(schema.relation("a"), [(1, "2")]))
        db.set_relation("b", Relation.from_schema(schema.relation("b"), [(1, 2)]))
        return db

    def test_secondary_mixed_conjunct_stays_in_residual(self, mixed_db):
        plan = Join(
            Scan("a"),
            Scan("b"),
            And(
                ColumnEquals(col("a.x"), col("b.x")),
                ColumnEquals(col("a.y"), col("b.y")),
            ),
        )
        reference = execute(
            Select(
                Product(Scan("a"), Scan("b")),
                And(
                    ColumnEquals(col("a.x"), col("b.x")),
                    ColumnEquals(col("a.y"), col("b.y")),
                ),
            ),
            mixed_db,
            engine="row",
        )
        for engine in ("row", "columnar"):
            result = execute(plan, mixed_db, engine=engine)
            assert result.rows == reference.rows == [(1, "2", 1, 2)], engine

    def test_only_compatible_conjuncts_join_the_key(self, mixed_db):
        executor = Executor(mixed_db)
        predicate = And(
            ColumnEquals(col("a.x"), col("b.x")),
            ColumnEquals(col("a.y"), col("b.y")),
        )
        pairs = executor._find_hash_join(
            predicate, mixed_db.relation("a"), mixed_db.relation("b")
        )
        assert pairs == [(0, 0)]


class TestIndexedSelectFirstConjunctOnly:
    def test_non_leading_equality_declines_fast_path(self, database):
        # The first conjunct is a range, so the unoptimized stacked-select
        # chain would never index; the merged form must not either.
        stats = ExecutionStats()
        plan = Select(
            Scan("emp"),
            And(GreaterThan(col("emp.salary"), 150.0), Equals(col("emp.dept"), 10)),
        )
        result = execute(plan, database, stats)
        assert [row[1] for row in result.rows] == ["bob"]
        assert database.index_catalog.builds == 0

    def test_mixed_representation_column_declines_fast_path(self):
        # Column a holds both int 2 and string "2": dict-keyed index lookup
        # and coerced equality disagree, so the conjunction fast path must
        # decline and both conjunct orders must give the generic answer.
        schema = DatabaseSchema(
            "X", [RelationSchema.build("r", [("a", _I), ("b", _I)])]
        )
        db = Database(schema)
        db.set_relation(
            "r", Relation.from_schema(schema.relation("r"), [(2, 1), ("2", 1)])
        )
        eq_first = Select(
            Scan("r"), And(Equals(col("r.a"), 2), GreaterThan(col("r.b"), 0))
        )
        eq_last = Select(
            Scan("r"), And(GreaterThan(col("r.b"), 0), Equals(col("r.a"), 2))
        )
        for engine in ("row", "columnar"):
            assert len(execute(eq_first, db, engine=engine)) == 2, engine
            assert len(execute(eq_last, db, engine=engine)) == 2, engine

    def test_numeric_column_keeps_fast_path(self, database):
        stats = ExecutionStats()
        plan = Select(
            Scan("emp"),
            And(Equals(col("emp.dept"), 10), GreaterThan(col("emp.salary"), 150.0)),
        )
        result = execute(plan, database, stats)
        assert [row[1] for row in result.rows] == ["bob"]
        assert database.index_catalog.builds == 1

    def test_single_comparison_fast_path_guarded_on_inexact_columns(self):
        # Column a stores the string "2.0": coercion parses it equal to the
        # literal 2, but a dict-keyed index lookup can never match it.  The
        # fast path must decline so the generic (coercing) path answers.
        schema = DatabaseSchema(
            "Y", [RelationSchema.build("r", [("a", _S), ("b", _I)])]
        )
        db = Database(schema)
        db.set_relation(
            "r", Relation.from_schema(schema.relation("r"), [("2.0", 1), ("x", 2)])
        )
        plan = Select(Scan("r"), Equals(col("r.a"), 2))
        for engine in ("row", "columnar"):
            result = execute(plan, db, engine=engine)
            assert result.rows == [("2.0", 1)], engine
