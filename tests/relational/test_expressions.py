"""Unit tests for scalar expressions."""

import pytest

from repro.relational.expressions import Arithmetic, ColumnRef, Literal, col, lit
from repro.relational.relation import Relation


@pytest.fixture()
def relation():
    return Relation(["R.a", "R.b"], [(4, 2.5), (None, 1.0)])


class TestColumnRef:
    def test_col_parses_qualifier(self):
        ref = col("PO.orderNum")
        assert ref.qualifier == "PO" and ref.name == "orderNum"

    def test_col_explicit_qualifier(self):
        assert col("orderNum", "PO") == ColumnRef("orderNum", "PO")

    def test_col_unqualified(self):
        ref = col("orderNum")
        assert ref.qualifier is None

    def test_display(self):
        assert col("PO.x").display == "PO.x"
        assert col("x").display == "x"

    def test_evaluate(self, relation):
        assert col("R.a").evaluate(relation, relation.rows[0]) == 4

    def test_evaluate_unqualified(self, relation):
        assert col("b").evaluate(relation, relation.rows[0]) == 2.5

    def test_referenced_columns(self):
        ref = col("R.a")
        assert ref.referenced_columns() == [ref]

    def test_rename(self):
        renamed = col("R.a").rename(lambda ref: ColumnRef(ref.name, "S"))
        assert renamed.qualifier == "S"


class TestLiteral:
    def test_evaluate(self, relation):
        assert lit(42).evaluate(relation, relation.rows[0]) == 42

    def test_no_references(self):
        assert lit(1).referenced_columns() == []

    def test_rename_is_identity(self):
        literal = lit("x")
        assert literal.rename(lambda ref: ref) is literal


class TestArithmetic:
    def test_operations(self, relation):
        row = relation.rows[0]
        assert Arithmetic("+", col("R.a"), lit(1)).evaluate(relation, row) == 5
        assert Arithmetic("-", col("R.a"), lit(1)).evaluate(relation, row) == 3
        assert Arithmetic("*", col("R.a"), col("R.b")).evaluate(relation, row) == 10.0
        assert Arithmetic("/", col("R.a"), lit(2)).evaluate(relation, row) == 2

    def test_null_propagates(self, relation):
        assert Arithmetic("+", col("R.a"), lit(1)).evaluate(relation, relation.rows[1]) is None

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Arithmetic("%", lit(1), lit(2))

    def test_referenced_columns(self):
        expr = Arithmetic("*", col("R.a"), col("R.b"))
        assert [ref.display for ref in expr.referenced_columns()] == ["R.a", "R.b"]

    def test_rename(self, relation):
        expr = Arithmetic("+", col("X.a"), lit(1))
        renamed = expr.rename(lambda ref: ColumnRef(ref.name, "R"))
        assert renamed.evaluate(relation, relation.rows[0]) == 5
