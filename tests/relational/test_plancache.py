"""Unit tests for the plan-result cache and materialization policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import Join, Scan, Select
from repro.relational.database import Database
from repro.relational.expressions import col
from repro.relational.plancache import (
    MaterializeAll,
    MaterializeNone,
    MaterializeSelected,
    PlanCache,
    plan_cost,
    plan_dependencies,
)
from repro.relational.predicates import ColumnEquals, Equals
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType

_I = DataType.INTEGER
_S = DataType.STRING


def select_plan(relation="emp", value=10):
    return Select(Scan(relation), Equals(col(f"{relation}.dept"), value))


def result_relation():
    return Relation(["emp.id"], [(1,), (2,)])


class TestPlanCost:
    def test_counts_every_node(self):
        plan = Select(Scan("emp"), Equals(col("emp.dept"), 10))
        assert plan_cost(plan) == 2
        join = Join(plan, Scan("dept"), ColumnEquals(col("emp.dept"), col("dept.id")))
        assert plan_cost(join) == 4

    def test_dependencies_are_scanned_relations(self):
        join = Join(
            select_plan(), Scan("dept"), ColumnEquals(col("emp.dept"), col("dept.id"))
        )
        assert plan_dependencies(join) == frozenset({"emp", "dept"})


class TestPlanCacheBasics:
    def test_miss_then_hit(self):
        cache = PlanCache(maxsize=4)
        plan = select_plan()
        key = plan.canonical()
        assert cache.get(key) is None
        cache.put(key, plan, result_relation())
        entry = cache.get(key)
        assert entry is not None
        assert entry.relation.rows == [(1,), (2,)]
        assert entry.operator_count == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.operators_saved == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_unbounded_cache(self):
        cache = PlanCache(maxsize=None)
        for value in range(100):
            plan = select_plan(value=value)
            cache.put(plan.canonical(), plan, result_relation())
        assert len(cache) == 100
        assert cache.stats.evictions == 0


class TestEviction:
    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        plans = [select_plan(value=v) for v in (1, 2, 3)]
        for plan in plans[:2]:
            cache.put(plan.canonical(), plan, result_relation())
        # Touch the first entry so the second becomes least recently used.
        assert cache.get(plans[0].canonical()) is not None
        cache.put(plans[2].canonical(), plans[2], result_relation())
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert plans[0].canonical() in cache
        assert plans[1].canonical() not in cache
        assert plans[2].canonical() in cache


class TestInvalidation:
    def test_invalidate_by_dependency(self):
        cache = PlanCache()
        emp, dept = select_plan("emp"), select_plan("dept")
        cache.put(emp.canonical(), emp, result_relation())
        cache.put(dept.canonical(), dept, result_relation())
        dropped = cache.invalidate("emp")
        assert dropped == 1
        assert emp.canonical() not in cache
        assert dept.canonical() in cache
        assert cache.stats.invalidations == 1

    def test_invalidate_everything(self):
        cache = PlanCache()
        plan = select_plan()
        cache.put(plan.canonical(), plan, result_relation())
        assert cache.invalidate() == 1
        assert len(cache) == 0


@pytest.fixture()
def database():
    schema = DatabaseSchema(
        "S",
        [
            RelationSchema.build("emp", [("id", _I), ("dept", _I)]),
            RelationSchema.build("dept", [("id", _I), ("dname", _S)]),
        ],
    )
    db = Database(schema)
    db.set_relation(
        "emp", Relation.from_schema(schema.relation("emp"), [(1, 10), (2, 20)])
    )
    db.set_relation(
        "dept", Relation.from_schema(schema.relation("dept"), [(10, "db")])
    )
    return db


class TestDatabaseHooks:
    def test_mutation_invalidates_dependent_entries(self, database):
        cache = PlanCache()
        cache.attach(database)
        emp, dept = select_plan("emp"), select_plan("dept")
        cache.put(emp.canonical(), emp, result_relation())
        cache.put(dept.canonical(), dept, result_relation())
        database.set_relation(
            "emp",
            Relation.from_schema(database.schema.relation("emp"), [(3, 30)]),
        )
        assert emp.canonical() not in cache
        assert dept.canonical() in cache

    def test_index_invalidation_hook(self, database):
        cache = PlanCache()
        cache.attach(database)
        emp = select_plan("emp")
        cache.put(emp.canonical(), emp, result_relation())
        database.index_catalog.invalidate("emp")
        assert emp.canonical() not in cache

    def test_inplace_append_detected_as_stale(self, database):
        # Regression: Relation.append bumps the version token but fires no
        # invalidation hook; a version-checked lookup must treat the entry
        # as stale rather than serve the pre-mutation snapshot.
        cache = PlanCache()
        emp = select_plan("emp")
        cache.put(emp.canonical(), emp, result_relation(), database)
        assert cache.get(emp.canonical(), database) is not None
        database.relation("emp").append((4, 10))
        assert cache.get(emp.canonical(), database) is None
        assert emp.canonical() not in cache
        assert cache.stats.invalidations == 1

    def test_detach_stops_invalidation(self, database):
        cache = PlanCache()
        cache.attach(database)
        cache.detach(database)
        emp = select_plan("emp")
        cache.put(emp.canonical(), emp, result_relation())
        database.set_relation(
            "emp",
            Relation.from_schema(database.schema.relation("emp"), [(3, 30)]),
        )
        assert emp.canonical() in cache


class TestExecutorDefaultPolicy:
    def test_empty_cache_still_enables_materialize_all(self, database):
        # Regression: the default policy used the cache's truthiness, and a
        # fresh PlanCache is falsy (len 0) — caching silently never engaged.
        from repro.relational.executor import Executor

        cache = PlanCache(maxsize=8)
        executor = Executor(database, cache=cache)
        assert isinstance(executor.policy, MaterializeAll)
        plan = select_plan("emp")
        executor.execute(plan)
        executor.execute(plan)
        assert cache.stats.hits == 1


class TestPolicies:
    def test_materialize_all(self):
        plan = select_plan()
        assert MaterializeAll().cache_key(plan) == plan.canonical()

    def test_materialize_none(self):
        assert MaterializeNone().cache_key(select_plan()) is None

    def test_materialize_selected(self):
        plan = select_plan()
        other = select_plan(value=99)
        policy = MaterializeSelected({plan.canonical()})
        assert policy.cache_key(plan) == plan.canonical()
        assert policy.cache_key(other) is None
        assert len(policy) == 1


class TestDistinctPatchingProperty:
    """Property: distinct-shape patching is byte-identical to a cold run.

    ``PlanCache.apply_write`` patches a cached DISTINCT projection by
    membership-filtering the delta's output rows.  Two classes of schedule
    must never desynchronise the warm entry from a cold recompute: appends
    whose rows duplicate values the entry already contains (they must not
    reappear), and appends interleaved with updates to an *unrelated*
    relation (they must not drop or disturb the entry).
    """

    @staticmethod
    def _fresh_database(emp_rows):
        schema = DatabaseSchema(
            "S",
            [
                RelationSchema.build("emp", [("id", _I), ("dept", _I)]),
                RelationSchema.build("dept", [("id", _I), ("dname", _S)]),
            ],
        )
        db = Database(schema)
        db.set_relation(
            "emp", Relation.from_schema(schema.relation("emp"), emp_rows)
        )
        db.set_relation(
            "dept", Relation.from_schema(schema.relation("dept"), [(10, "db")])
        )
        return db

    @given(
        initial=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 4)), max_size=12
        ),
        schedule=st.lists(
            st.one_of(
                st.lists(
                    st.tuples(st.integers(0, 9), st.integers(0, 4)),
                    min_size=1,
                    max_size=4,
                ),
                st.text("ab", min_size=1, max_size=3),
            ),
            max_size=8,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_patched_entry_matches_cold_recompute(self, initial, schedule):
        from repro.relational.algebra import Project
        from repro.relational.executor import Executor

        db = self._fresh_database(initial)
        cache = PlanCache()
        cache.attach(db)
        plan = Project(Scan("emp"), [col("emp.dept")], distinct=True)
        key = plan.canonical()
        Executor(db, cache=cache).execute(plan)  # warm the entry
        assert key in cache
        for step in schedule:
            if isinstance(step, str):
                # An update to the *unrelated* relation must leave the
                # emp-dependent entry intact (only emp writes touch it).
                db.update_rows("dept", [0], [(10, step)])
            else:
                db.append_rows("emp", step)  # values overlap by construction
        entry = cache.get(key, db)
        assert entry is not None, "append/unrelated-update schedule dropped entry"
        cold = Executor(self._fresh_database(db.relation("emp").rows)).execute(plan)
        assert entry.relation.columns == cold.columns
        assert entry.relation.rows == cold.rows
