"""Unit tests for the logical plan nodes."""

import pytest

from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    Product,
    Project,
    Scan,
    Select,
    plan_operator_count,
    plan_scans,
    plan_target_attributes,
)
from repro.relational.expressions import col
from repro.relational.predicates import ColumnEquals, Equals
from repro.relational.relation import Relation


def sample_plan():
    left = Select(Scan("PO"), Equals(col("PO.telephone"), "123"))
    right = Scan("Item", alias="Item1")
    return Select(Product(left, right), Equals(col("Item1.itemNum"), "00001"))


class TestScanAndMaterialized:
    def test_scan_label_defaults_to_relation(self):
        assert Scan("PO").label == "PO"
        assert Scan("PO", alias="PO1").label == "PO1"

    def test_scan_has_no_children(self):
        assert Scan("PO").children() == ()
        with pytest.raises(ValueError):
            Scan("PO").with_children([Scan("X")])

    def test_materialized_holds_relation(self):
        relation = Relation(["a"], [(1,)])
        node = Materialized(relation, label="tmp")
        assert not node.is_empty
        assert node.children() == ()
        assert "tmp" in node.canonical()

    def test_materialized_empty_flag(self):
        assert Materialized(Relation(["a"], [])).is_empty

    def test_materialized_ids_are_unique(self):
        relation = Relation(["a"], [])
        assert Materialized(relation).canonical() != Materialized(relation).canonical()

    def test_materialized_rejects_children(self):
        with pytest.raises(ValueError):
            Materialized(Relation(["a"], [])).with_children([Scan("X")])


class TestUnaryNodes:
    def test_select_children_roundtrip(self):
        node = Select(Scan("PO"), Equals(col("a"), 1))
        rebuilt = node.with_children([Scan("Other")])
        assert isinstance(rebuilt, Select)
        assert rebuilt.child.relation == "Other"
        assert rebuilt.predicate is node.predicate

    def test_select_referenced_columns(self):
        node = Select(Scan("PO"), Equals(col("PO.a"), 1))
        assert [ref.display for ref in node.referenced_columns()] == ["PO.a"]

    def test_project_preserves_distinct_flag(self):
        node = Project(Scan("PO"), [col("a")], distinct=True)
        rebuilt = node.with_children([Scan("X")])
        assert rebuilt.distinct
        assert "ProjectDistinct" in rebuilt.canonical()

    def test_aggregate_validation(self):
        with pytest.raises(ValueError, match="unsupported aggregate"):
            Aggregate(Scan("PO"), "MEDIAN", col("a"))
        with pytest.raises(ValueError, match="requires an argument"):
            Aggregate(Scan("PO"), "SUM")

    def test_aggregate_count_star_allowed(self):
        node = Aggregate(Scan("PO"), "count")
        assert node.function == "COUNT"
        assert node.referenced_columns() == []

    def test_aggregate_group_by_references(self):
        node = Aggregate(Scan("PO"), "SUM", col("a"), group_by=[col("b")])
        assert [ref.display for ref in node.referenced_columns()] == ["a", "b"]


class TestBinaryNodes:
    def test_product_children(self):
        node = Product(Scan("A"), Scan("B"))
        assert len(node.children()) == 2
        rebuilt = node.with_children([Scan("C"), Scan("D")])
        assert rebuilt.left.relation == "C"

    def test_join_referenced_columns(self):
        node = Join(Scan("A"), Scan("B"), ColumnEquals(col("A.x"), col("B.y")))
        assert len(node.referenced_columns()) == 2

    def test_join_canonical_mentions_predicate(self):
        node = Join(Scan("A"), Scan("B"), ColumnEquals(col("A.x"), col("B.y")))
        assert "A.x" in node.canonical()


class TestTreeUtilities:
    def test_walk_preorder(self):
        plan = sample_plan()
        kinds = [type(node).__name__ for node in plan.walk()]
        assert kinds[0] == "Select"
        assert kinds.count("Scan") == 2

    def test_operators_and_leaves(self):
        plan = sample_plan()
        assert plan_operator_count(plan) == 3
        assert len(plan.leaves()) == 2
        assert len(plan_scans(plan)) == 2

    def test_contains_by_identity(self):
        plan = sample_plan()
        scan = plan_scans(plan)[0]
        assert plan.contains(scan)
        assert not plan.contains(Scan("PO"))

    def test_replace_by_identity(self):
        plan = sample_plan()
        scan = plan_scans(plan)[1]
        replacement = Materialized(Relation(["Item1.itemNum"], []))
        replaced = plan.replace(scan, replacement)
        assert replaced is not plan
        assert any(node is replacement for node in replaced.walk())
        # The original plan is untouched.
        assert all(node is not replacement for node in plan.walk())

    def test_replace_missing_returns_same_structure(self):
        plan = sample_plan()
        replaced = plan.replace(Scan("ZZZ"), Scan("YYY"))
        assert replaced.canonical() == plan.canonical()

    def test_transform_bottom_up(self):
        plan = sample_plan()

        def rewrite(node):
            if isinstance(node, Scan):
                return Scan(node.relation, alias=f"{node.label}X")
            return node

        rewritten = plan.transform(rewrite)
        assert {scan.label for scan in plan_scans(rewritten)} == {"POX", "Item1X"}

    def test_depth(self):
        assert Scan("PO").depth() == 1
        assert sample_plan().depth() == 4

    def test_subtree_columns_and_distinct_attributes(self):
        plan = sample_plan()
        displays = [ref.display for ref in plan_target_attributes(plan)]
        assert displays == ["Item1.itemNum", "PO.telephone"]

    def test_canonical_is_deterministic(self):
        assert sample_plan().canonical() == sample_plan().canonical()
