"""Unit tests for the Relation container."""

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.types import DataType


def sample() -> Relation:
    return Relation(
        ["R.a", "R.b", "R.c"],
        [(1, "x", 10.0), (2, "y", 20.0), (2, "y", 20.0), (3, "z", 30.0)],
        name="R",
    )


class TestConstruction:
    def test_basic(self):
        relation = sample()
        assert len(relation) == 4
        assert relation.columns == ("R.a", "R.b", "R.c")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate column"):
            Relation(["a", "a"], [])

    def test_row_width_validated(self):
        with pytest.raises(ValueError, match="row width"):
            Relation(["a", "b"], [(1,)])

    def test_from_schema_prefixes_labels(self):
        schema = RelationSchema.build("PO", [("x", DataType.STRING), ("y", DataType.STRING)])
        relation = Relation.from_schema(schema, [("1", "2")])
        assert relation.columns == ("PO.x", "PO.y")
        assert relation.name == "PO"

    def test_from_schema_with_alias(self):
        schema = RelationSchema.build("PO", [("x", DataType.STRING)])
        relation = Relation.from_schema(schema, [], alias="PO1")
        assert relation.columns == ("PO1.x",)

    def test_from_dicts(self):
        relation = Relation.from_dicts(["a", "b"], [{"a": 1, "b": 2}, {"a": 3}])
        assert relation.rows == [(1, 2), (3, None)]

    def test_empty(self):
        relation = Relation.empty(["a"], name="E")
        assert relation.is_empty
        assert relation.name == "E"


class TestColumnHandling:
    def test_column_index(self):
        assert sample().column_index("R.b") == 1

    def test_column_index_missing_raises(self):
        with pytest.raises(KeyError, match="no column"):
            sample().column_index("R.missing")

    def test_has_column(self):
        relation = sample()
        assert relation.has_column("R.a")
        assert not relation.has_column("a")

    def test_resolve_qualified(self):
        assert sample().resolve("a", "R") == 0

    def test_resolve_unqualified_suffix(self):
        assert sample().resolve("c") == 2

    def test_resolve_exact_label(self):
        relation = Relation(["count"], [(1,)])
        assert relation.resolve("count") == 0

    def test_resolve_missing_raises(self):
        with pytest.raises(KeyError, match="no column matches"):
            sample().resolve("zzz")

    def test_resolve_ambiguous_raises(self):
        relation = Relation(["R.a", "S.a"], [])
        with pytest.raises(KeyError, match="ambiguous"):
            relation.resolve("a")

    def test_rename(self):
        renamed = sample().rename({"R.a": "S.a"})
        assert renamed.columns == ("S.a", "R.b", "R.c")
        assert renamed.rows == sample().rows

    def test_prefixed(self):
        prefixed = sample().prefixed("X")
        assert prefixed.columns == ("X.a", "X.b", "X.c")
        assert prefixed.name == "X"


class TestRowHandling:
    def test_append_and_extend(self):
        relation = Relation(["a"], [])
        relation.append((1,))
        relation.extend([(2,), (3,)])
        assert relation.rows == [(1,), (2,), (3,)]

    def test_append_wrong_width(self):
        with pytest.raises(ValueError):
            Relation(["a"], []).append((1, 2))

    def test_value(self):
        relation = sample()
        assert relation.value(relation.rows[0], "R.b") == "x"

    def test_project_rows(self):
        assert sample().project_rows([2, 0])[0] == (10.0, 1)

    def test_filter(self):
        filtered = sample().filter(lambda row: row[0] == 2)
        assert len(filtered) == 2
        assert filtered.columns == sample().columns

    def test_distinct(self):
        assert len(sample().distinct()) == 3

    def test_to_dicts(self):
        dicts = sample().to_dicts()
        assert dicts[0] == {"R.a": 1, "R.b": "x", "R.c": 10.0}


class TestDunder:
    def test_equality(self):
        assert sample() == sample()
        assert sample() != sample().prefixed("X")
        assert sample() != "not a relation"

    def test_iteration(self):
        assert list(sample())[0] == (1, "x", 10.0)

    def test_pretty_limits_rows(self):
        text = sample().pretty(limit=2)
        assert "more rows" in text
        assert "R.a | R.b | R.c" in text
