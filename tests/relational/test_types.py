"""Unit tests for the value-domain layer (repro.relational.types)."""

import pytest

from repro.relational.types import DataType, _try_parse_number, comparable, infer_type


class TestDataTypeCoerce:
    def test_integer_from_string(self):
        assert DataType.INTEGER.coerce("42") == 42

    def test_integer_from_float(self):
        assert DataType.INTEGER.coerce(3.7) == 3

    def test_float_from_string(self):
        assert DataType.FLOAT.coerce("2.5") == 2.5

    def test_string_from_int(self):
        assert DataType.STRING.coerce(7) == "7"

    def test_date_passes_through_as_string(self):
        assert DataType.DATE.coerce("1995-01-02") == "1995-01-02"

    def test_boolean_true_strings(self):
        for text in ("true", "T", "1", "yes"):
            assert DataType.BOOLEAN.coerce(text) is True

    def test_boolean_false_strings(self):
        for text in ("false", "F", "0", "no"):
            assert DataType.BOOLEAN.coerce(text) is False

    def test_boolean_invalid_string_raises(self):
        with pytest.raises(ValueError):
            DataType.BOOLEAN.coerce("maybe")

    def test_boolean_from_int(self):
        assert DataType.BOOLEAN.coerce(0) is False
        assert DataType.BOOLEAN.coerce(3) is True

    def test_none_passes_through(self):
        for data_type in DataType:
            assert data_type.coerce(None) is None

    def test_integer_invalid_raises(self):
        with pytest.raises(ValueError):
            DataType.INTEGER.coerce("not-a-number")

    def test_python_type(self):
        assert DataType.INTEGER.python_type is int
        assert DataType.FLOAT.python_type is float
        assert DataType.STRING.python_type is str
        assert DataType.DATE.python_type is str
        assert DataType.BOOLEAN.python_type is bool


class TestInferType:
    def test_bool_before_int(self):
        assert infer_type(True) is DataType.BOOLEAN

    def test_int(self):
        assert infer_type(5) is DataType.INTEGER

    def test_float(self):
        assert infer_type(5.0) is DataType.FLOAT

    def test_string_default(self):
        assert infer_type("abc") is DataType.STRING
        assert infer_type(None) is DataType.STRING


class TestComparable:
    def test_same_type_unchanged(self):
        assert comparable("a", "b") == ("a", "b")
        assert comparable(1, 2) == (1, 2)

    def test_int_float(self):
        assert comparable(1, 2.5) == (1, 2.5)

    def test_number_and_numeric_string(self):
        assert comparable(42, "42") == (42, 42)
        assert comparable("00001", 1) == (1, 1)

    def test_number_and_non_numeric_string(self):
        assert comparable(42, "abc") == ("42", "abc")

    def test_string_and_number_reversed(self):
        assert comparable("3.5", 2.0) == (3.5, 2.0)
        assert comparable("abc", 2.0) == ("abc", "2.0")

    def test_comparison_after_coercion_is_meaningful(self):
        left, right = comparable("00010", 10)
        assert left == right


class TestTryParseNumber:
    def test_int(self):
        assert _try_parse_number("12") == 12
        assert isinstance(_try_parse_number("12"), int)

    def test_float(self):
        assert _try_parse_number("1.5") == 1.5

    def test_whitespace(self):
        assert _try_parse_number("  7 ") == 7

    def test_failure_returns_none(self):
        assert _try_parse_number("12a") is None
        assert _try_parse_number("") is None
