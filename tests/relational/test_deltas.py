"""Unit tests for the delta-aware write path.

Covers the whole maintenance chain one layer at a time: the
:class:`~repro.relational.relation.Delta` records produced by relation-level
writes, the bounded delta log and ``deltas_between`` chain reconstruction,
the :class:`~repro.relational.database.Database` write API and its listener
chain, in-place hash-index patching, plan-cache shape analysis
(:func:`~repro.relational.plancache.append_shape`) and entry patching, and
the statistics catalog's incremental refresh.  The invariant throughout:
the delta path must be *byte-identical* to recomputing from scratch.
"""

from __future__ import annotations

import threading

import pytest

from repro.relational.algebra import (
    Aggregate,
    Join,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.columnar import ColumnBatch
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.expressions import col
from repro.relational.plancache import PlanCache, append_shape
from repro.relational.predicates import ColumnEquals, Equals
from repro.relational.relation import (
    DELTA_APPEND,
    DELTA_DELETE,
    DELTA_LOG_LIMIT,
    DELTA_UPDATE,
    Relation,
)
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType

_I = DataType.INTEGER
_S = DataType.STRING


def make_relation(n: int = 4) -> Relation:
    return Relation(
        ["t.a", "t.b"], [(i, f"v{i}") for i in range(n)], name="t"
    )


def make_database() -> Database:
    schema = DatabaseSchema(
        "S",
        [
            RelationSchema.build("emp", [("id", _I), ("dept", _I)]),
            RelationSchema.build("dept", [("id", _I), ("dname", _S)]),
        ],
    )
    db = Database(schema)
    db.set_relation(
        "emp",
        Relation.from_schema(
            schema.relation("emp"), [(1, 10), (2, 20), (3, 10)]
        ),
    )
    db.set_relation(
        "dept", Relation.from_schema(schema.relation("dept"), [(10, "db"), (20, "os")])
    )
    return db


# --------------------------------------------------------------------------- #
# relation-level deltas
# --------------------------------------------------------------------------- #
class TestRelationWrites:
    def test_append_rows_delta(self):
        relation = make_relation()
        before = relation.version
        delta = relation.append_rows([(4, "v4"), (5, "v5")])
        assert delta is not None
        assert delta.kind == DELTA_APPEND and delta.is_append
        assert delta.base_version == before
        assert delta.version == relation.version > before
        assert delta.rows == ((4, "v4"), (5, "v5"))
        assert relation.rows[-2:] == [(4, "v4"), (5, "v5")]
        assert len(relation) == 6

    def test_empty_append_writes_nothing(self):
        relation = make_relation()
        before = relation.version
        assert relation.append_rows([]) is None
        assert relation.version == before

    def test_append_validates_width(self):
        with pytest.raises(ValueError, match="row width"):
            make_relation().append_rows([(1, "x", "extra")])

    def test_update_rows_delta(self):
        relation = make_relation()
        delta = relation.update_rows([2, 0], [(20, "u2"), (0, "u0")])
        assert delta.kind == DELTA_UPDATE
        # Positions are normalised to ascending order, rows re-paired.
        assert delta.positions == (0, 2)
        assert delta.rows == ((0, "u0"), (20, "u2"))
        assert relation.rows[0] == (0, "u0")
        assert relation.rows[2] == (20, "u2")
        assert len(relation) == 4

    def test_update_rejects_bad_positions(self):
        relation = make_relation()
        with pytest.raises(ValueError, match="duplicate"):
            relation.update_rows([1, 1], [(0, "a"), (0, "b")])
        with pytest.raises(IndexError, match="out of range"):
            relation.update_rows([99], [(0, "a")])
        with pytest.raises(ValueError, match="positions"):
            relation.update_rows([0, 1], [(0, "a")])

    def test_delete_rows_delta(self):
        relation = make_relation()
        delta = relation.delete_rows([3, 1, 1])
        assert delta.kind == DELTA_DELETE
        assert delta.positions == (1, 3)  # deduplicated, ascending
        assert relation.rows == [(0, "v0"), (2, "v2")]
        assert len(relation) == 2

    def test_delete_out_of_range(self):
        with pytest.raises(IndexError, match="out of range"):
            make_relation().delete_rows([4])

    def test_views_keep_their_snapshot(self):
        relation = make_relation()
        view = relation.prefixed("x")
        relation.append_rows([(9, "v9")])
        assert len(view) == 4  # the pre-write snapshot
        assert len(relation) == 5
        assert view.rows == [(i, f"v{i}") for i in range(4)]

    def test_cached_batches_unaffected_by_writes(self):
        relation = make_relation()
        batch = ColumnBatch.from_relation(relation)
        snapshot = [list(column) for column in batch.data]
        relation.append_rows([(9, "v9")])
        relation.update_rows([0], [(-1, "u")])
        relation.delete_rows([1])
        assert [list(column) for column in batch.data] == snapshot


class TestDeltaChains:
    def test_deltas_between_orders_oldest_first(self):
        relation = make_relation()
        v0 = relation.version
        first = relation.append_rows([(4, "v4")])
        second = relation.update_rows([0], [(0, "u0")])
        third = relation.delete_rows([1])
        chain = relation.deltas_between(v0)
        assert chain == [first, second, third]
        assert relation.deltas_between(first.version) == [second, third]
        assert relation.deltas_between(relation.version) == []

    def test_unknown_version_breaks_the_chain(self):
        relation = make_relation()
        relation.append_rows([(4, "v4")])
        assert relation.deltas_between(-12345) is None

    def test_log_is_bounded(self):
        relation = make_relation()
        v0 = relation.version
        checkpoint = None
        for i in range(DELTA_LOG_LIMIT + 5):
            if i == 5:
                checkpoint = relation.version
            relation.append_rows([(100 + i, "x")])
        # The full chain fell off the front of the bounded log...
        assert relation.deltas_between(v0) is None
        # ... but a recent enough checkpoint still reconstructs.
        recent = relation.deltas_between(checkpoint)
        assert recent is not None
        assert len(recent) == DELTA_LOG_LIMIT

    def test_views_share_the_log(self):
        relation = make_relation()
        view = relation.prefixed("x")
        v0 = relation.version
        delta = relation.append_rows([(4, "v4")])
        assert view.deltas_between(v0, delta.version) == [delta]


class TestDeltaLogThreadSafety:
    def test_concurrent_writes_and_walks_never_tear(self):
        # Regression: the bounded delta log was appended/trimmed and walked
        # without a lock, so a walker racing a writer could see the deque
        # mutate mid-iteration or reconstruct a torn chain.  The log is now
        # guarded by a per-lineage lock: every walk returns either None
        # (base version fell off the bounded log) or a contiguous chain.
        relation = Relation(["t.a"], [(0,)], name="t")
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            try:
                for i in range(400):
                    relation.append_rows([(i,)])
                    if i % 50 == 10:
                        relation.update_rows([0], [(i,)])
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def walker():
            try:
                while not stop.is_set():
                    # Walk repeatedly from a base that goes stale while the
                    # writer races on.
                    base = relation.version
                    for _ in range(10):
                        chain = relation.deltas_between(base)
                        if chain is None:  # base fell off the bounded log
                            continue
                        if chain:
                            assert chain[0].base_version == base
                            for earlier, later in zip(chain, chain[1:]):
                                assert later.base_version == earlier.version
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=walker) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


# --------------------------------------------------------------------------- #
# database write API
# --------------------------------------------------------------------------- #
class TestDatabaseWrites:
    def test_writes_publish_deltas_to_listeners(self):
        db = make_database()
        events = []
        db.add_write_listener(lambda name, delta: events.append((name, delta.kind)))
        db.append_rows("emp", [(4, 20)])
        db.update_rows("emp", [0], [(1, 30)])
        db.delete_rows("dept", [1])
        assert events == [
            ("emp", DELTA_APPEND),
            ("emp", DELTA_UPDATE),
            ("dept", DELTA_DELETE),
        ]

    def test_empty_writes_publish_nothing(self):
        db = make_database()
        events = []
        db.add_write_listener(lambda name, delta: events.append(name))
        assert db.append_rows("emp", []) is None
        assert db.delete_rows("emp", []) is None
        assert events == []

    def test_set_relation_does_not_fire_write_listeners(self):
        db = make_database()
        events = []
        db.add_write_listener(lambda name, delta: events.append(name))
        db.set_relation(
            "emp", Relation.from_schema(db.schema.relation("emp"), [(9, 90)])
        )
        assert events == []

    def test_remove_write_listener(self):
        db = make_database()
        events = []
        listener = lambda name, delta: events.append(name)  # noqa: E731
        db.add_write_listener(listener)
        db.remove_write_listener(listener)
        db.append_rows("emp", [(4, 20)])
        assert events == []

    def test_write_to_missing_relation_raises(self):
        with pytest.raises(KeyError):
            make_database().append_rows("ghost", [(1,)])


class TestIndexPatching:
    def test_append_patches_cached_index_in_place(self):
        db = make_database()
        index = db.index("emp", "dept")
        assert index.lookup(10) == [0, 2]
        builds = db.index_catalog.builds
        db.append_rows("emp", [(4, 10), (5, 30)])
        fresh = db.index("emp", "dept")
        assert fresh is index  # same object: patched, not rebuilt
        assert db.index_catalog.builds == builds
        assert db.index_catalog.patches == 1
        assert fresh.lookup(10) == [0, 2, 3]
        assert fresh.lookup(30) == [4]
        # The patched index is still the cache's current entry.
        scratch = db.index_catalog.get(db.relation("emp"), "emp", "emp.dept")
        assert scratch is fresh

    def test_nonappend_write_patches_cached_index(self):
        # Regression: delete/update deltas used to drop the cached index and
        # force a full rebuild on the next indexed select.  They now patch
        # the buckets in place, exactly like appends.
        db = make_database()
        index = db.index("emp", "dept")
        builds = db.index_catalog.builds
        db.delete_rows("emp", [0])
        db.update_rows("emp", [0], [(2, 30)])
        fresh = db.index("emp", "dept")
        assert fresh is index  # same object: patched, not rebuilt
        assert db.index_catalog.builds == builds
        assert db.index_catalog.patches == 2
        assert db.index_catalog.rebuilds == 0
        assert fresh.lookup(10) == [1]  # positions renumbered after the delete
        assert fresh.lookup(30) == [0]  # re-keyed by the update

    def test_wholesale_replacement_drops_cached_index(self):
        db = make_database()
        db.index("emp", "dept")
        builds = db.index_catalog.builds
        db.set_relation(
            "emp", Relation.from_schema(db.schema.relation("emp"), [(9, 90)])
        )
        fresh = db.index("emp", "dept")
        assert db.index_catalog.builds == builds + 1
        assert fresh.lookup(90) == [0]


# --------------------------------------------------------------------------- #
# plan-cache shape analysis and patching
# --------------------------------------------------------------------------- #
class TestAppendShape:
    def test_monotone_chains(self):
        assert append_shape(Scan("emp")) == "plain"
        select = Select(Scan("emp"), Equals(col("emp.dept"), 10))
        assert append_shape(select) == "plain"
        assert append_shape(Project(select, [col("emp.id")])) == "plain"

    def test_distinct_projection(self):
        plan = Project(
            Select(Scan("emp"), Equals(col("emp.dept"), 10)),
            [col("emp.dept")],
            distinct=True,
        )
        assert append_shape(plan) == "distinct"
        assert append_shape(Select(plan, Equals(col("emp.dept"), 10))) == "distinct"

    def test_distinct_below_bag_projection_rejected(self):
        # A bag projection above a distinct may re-duplicate rows, so
        # filtering delta output by membership would be wrong.
        inner = Project(Scan("emp"), [col("emp.dept")], distinct=True)
        assert append_shape(Project(inner, [col("emp.dept")])) is None

    def test_binary_and_aggregating_plans_rejected(self):
        emp, dept = Scan("emp"), Scan("dept")
        assert append_shape(Join(emp, dept, ColumnEquals(col("emp.dept"), col("dept.id")))) is None
        assert append_shape(Product(emp, dept)) is None
        # Union included: left-input appends belong mid-output, not at the end.
        assert append_shape(Union(emp, emp)) is None
        assert append_shape(Aggregate(emp, "COUNT")) is None


class TestPlanCachePatching:
    def _warm(self, db, cache, plan):
        executor = Executor(db, cache=cache)
        return executor.execute(plan)

    def test_append_patches_monotone_entry(self):
        db = make_database()
        cache = PlanCache()
        cache.attach(db)
        plan = Select(Scan("emp"), Equals(col("emp.dept"), 10))
        self._warm(db, cache, plan)
        db.append_rows("emp", [(4, 10), (5, 20)])
        entry = cache.get(plan.canonical(), db)
        assert entry is not None, "patched entry must survive the version check"
        assert cache.stats.patches == 1
        # Byte-identical to a cold recompute on the post-write data.
        cold = Executor(make_post_append_database()).execute(plan)
        assert entry.relation.rows == cold.rows
        assert entry.relation.columns == cold.columns

    def test_distinct_entry_filters_duplicates(self):
        db = make_database()
        cache = PlanCache()
        cache.attach(db)
        plan = Project(Scan("emp"), [col("emp.dept")], distinct=True)
        self._warm(db, cache, plan)
        db.append_rows("emp", [(4, 10), (5, 20)])  # 10 and 20 already present
        entry = cache.get(plan.canonical(), db)
        assert entry is not None
        cold = Executor(make_post_append_database()).execute(plan)
        assert entry.relation.rows == cold.rows

    def test_join_entry_dropped_on_append(self):
        db = make_database()
        cache = PlanCache()
        cache.attach(db)
        plan = Join(
            Scan("emp"), Scan("dept"), ColumnEquals(col("emp.dept"), col("dept.id"))
        )
        self._warm(db, cache, plan)
        db.append_rows("emp", [(4, 10)])
        assert plan.canonical() not in cache

    def test_write_scoped_to_dependents(self):
        db = make_database()
        cache = PlanCache()
        cache.attach(db)
        emp_plan = Select(Scan("emp"), Equals(col("emp.dept"), 10))
        dept_plan = Select(Scan("dept"), Equals(col("dept.id"), 10))
        self._warm(db, cache, emp_plan)
        self._warm(db, cache, dept_plan)
        dept_entry = cache.get(dept_plan.canonical(), db)
        db.update_rows("emp", [0], [(1, 30)])  # drops emp dependents only
        assert emp_plan.canonical() not in cache
        surviving = cache.get(dept_plan.canonical(), db)
        assert surviving is not None
        assert surviving.relation is dept_entry.relation

    def test_version_gap_drops_instead_of_patching(self):
        db = make_database()
        cache = PlanCache()
        plan = Select(Scan("emp"), Equals(col("emp.dept"), 10))
        result = Executor(db).execute(plan)
        stale = db.relation("emp").version - 1  # a token the entry never saw
        cache.put(plan.canonical(), plan, result, db, versions={"emp": stale})
        patched, dropped = cache.apply_write(
            db, "emp", db.relation("emp").append_rows([(4, 10)])
        )
        assert (patched, dropped) == (0, 1)
        assert plan.canonical() not in cache

    def test_detached_cache_ignores_writes(self):
        db = make_database()
        cache = PlanCache()
        cache.attach(db)
        cache.detach(db)
        plan = Select(Scan("emp"), Equals(col("emp.dept"), 10))
        Executor(db, cache=cache).execute(plan)
        before = cache.stats.patches + cache.stats.invalidations
        db.append_rows("emp", [(4, 10)])
        assert cache.stats.patches + cache.stats.invalidations == before


def make_post_append_database() -> Database:
    """The make_database() instance after the canonical test append."""
    db = make_database()
    db.relation("emp").append_rows([(4, 10), (5, 20)])
    return db


# --------------------------------------------------------------------------- #
# statistics catalog: incremental refresh
# --------------------------------------------------------------------------- #
class TestIncrementalStats:
    def _seeded(self, n: int = 100):
        schema = DatabaseSchema(
            "S", [RelationSchema.build("t", [("a", _I), ("b", _S)])]
        )
        db = Database(schema)
        db.set_relation(
            "t",
            Relation.from_schema(
                schema.relation("t"), [(i % 50, f"s{i % 7}") for i in range(n)]
            ),
        )
        return db

    @staticmethod
    def _as_dict(stats):
        return {
            "count": stats.count,
            "nulls": stats.nulls,
            "ndv": stats.ndv,
            "family": stats.family,
            "minimum": stats.minimum,
            "maximum": stats.maximum,
            "histogram": stats.histogram,
        }

    def test_in_range_append_refreshes_incrementally(self):
        db = self._seeded()
        catalog = db.stats_catalog
        catalog.column("t", "a")
        collections = catalog.collections
        db.append_rows("t", [(10, "s1"), (25, "s9"), (49, None)])
        patched = catalog.column("t", "a")
        assert catalog.incremental_refreshes == 1
        assert catalog.collections == collections
        # Byte-equal to a full profile on a fresh catalog.
        full = type(catalog)(db).column("t", "a")
        assert self._as_dict(patched) == self._as_dict(full)

    def test_string_column_patches_too(self):
        db = self._seeded()
        catalog = db.stats_catalog
        catalog.column("t", "b")
        db.append_rows("t", [(1, "s9"), (2, None)])
        patched = catalog.column("t", "b")
        assert catalog.incremental_refreshes == 1
        full = type(catalog)(db).column("t", "b")
        assert self._as_dict(patched) == self._as_dict(full)

    def test_out_of_range_append_reprofiles(self):
        db = self._seeded()
        catalog = db.stats_catalog
        catalog.column("t", "a")
        collections = catalog.collections
        db.append_rows("t", [(999, "s0")])  # outside the profiled [min, max]
        fresh = catalog.column("t", "a")
        assert catalog.incremental_refreshes == 0
        assert catalog.collections == collections + 1
        assert fresh.maximum == 999

    def test_staleness_threshold_forces_reprofile(self):
        db = self._seeded(n=20)
        catalog = db.stats_catalog
        catalog.column("t", "a")
        collections = catalog.collections
        # 30% appended > HISTOGRAM_STALENESS (25%): bucket drift too large.
        db.append_rows("t", [(5, "s0")] * 6)
        catalog.column("t", "a")
        assert catalog.incremental_refreshes == 0
        assert catalog.collections == collections + 1

    def test_nonappend_write_reprofiles(self):
        db = self._seeded()
        catalog = db.stats_catalog
        catalog.column("t", "a")
        collections = catalog.collections
        db.update_rows("t", [0], [(3, "s1")])
        catalog.column("t", "a")
        assert catalog.incremental_refreshes == 0
        assert catalog.collections == collections + 1

    def test_row_count_tracks_writes(self):
        db = self._seeded(n=10)
        catalog = db.stats_catalog
        assert catalog.row_count("t") == 10
        db.append_rows("t", [(1, "s1")])
        assert catalog.row_count("t") == 11
        db.delete_rows("t", [0, 1])
        assert catalog.row_count("t") == 9
