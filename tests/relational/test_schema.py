"""Unit tests for attributes, relation schemas and database schemas."""

import pytest

from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.types import DataType


def make_relation(name="R", columns=("a", "b", "c")):
    return RelationSchema.build(name, [(column, DataType.STRING) for column in columns])


class TestAttribute:
    def test_qualified_name(self):
        attribute = Attribute(relation="PO", name="telephone")
        assert attribute.qualified == "PO.telephone"

    def test_defaults(self):
        attribute = Attribute(relation="R", name="x")
        assert attribute.data_type is DataType.STRING
        assert attribute.description == ""

    def test_frozen(self):
        attribute = Attribute(relation="R", name="x")
        with pytest.raises(AttributeError):
            attribute.name = "y"


class TestRelationSchema:
    def test_build_with_descriptions(self):
        schema = RelationSchema.build(
            "R", [("a", DataType.INTEGER, "the a column"), ("b", DataType.STRING)]
        )
        assert schema.attribute("a").description == "the a column"
        assert schema.attribute("b").description == ""

    def test_attribute_names_order(self):
        schema = make_relation(columns=("z", "a", "m"))
        assert schema.attribute_names == ["z", "a", "m"]

    def test_qualified_names(self):
        schema = make_relation("R", ("a", "b"))
        assert schema.qualified_names == ["R.a", "R.b"]

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_relation(columns=("a", "a"))

    def test_attribute_owned_by_other_relation_rejected(self):
        attribute = Attribute(relation="Other", name="x")
        with pytest.raises(ValueError, match="does not belong"):
            RelationSchema("R", [attribute])

    def test_unknown_attribute_raises_keyerror(self):
        schema = make_relation()
        with pytest.raises(KeyError, match="no attribute"):
            schema.attribute("missing")

    def test_has_attribute_and_contains(self):
        schema = make_relation()
        assert schema.has_attribute("a")
        assert "a" in schema
        assert "missing" not in schema

    def test_len_and_iter(self):
        schema = make_relation()
        assert len(schema) == 3
        assert [attribute.name for attribute in schema] == ["a", "b", "c"]

    def test_equality_and_hash(self):
        assert make_relation() == make_relation()
        assert hash(make_relation()) == hash(make_relation())
        assert make_relation() != make_relation(columns=("a", "b"))


class TestDatabaseSchema:
    def make_schema(self):
        return DatabaseSchema("S", [make_relation("R1"), make_relation("R2", ("x", "y"))])

    def test_relation_names(self):
        assert self.make_schema().relation_names == ["R1", "R2"]

    def test_attribute_count(self):
        assert self.make_schema().attribute_count == 5

    def test_attributes_in_declaration_order(self):
        names = [attribute.qualified for attribute in self.make_schema().attributes]
        assert names == ["R1.a", "R1.b", "R1.c", "R2.x", "R2.y"]

    def test_duplicate_relation_rejected(self):
        with pytest.raises(ValueError, match="duplicate relation"):
            DatabaseSchema("S", [make_relation("R"), make_relation("R")])

    def test_relation_lookup(self):
        schema = self.make_schema()
        assert schema.relation("R2").attribute_names == ["x", "y"]
        with pytest.raises(KeyError):
            schema.relation("missing")

    def test_attribute_lookup_by_qualified_name(self):
        schema = self.make_schema()
        assert schema.attribute("R2.x").name == "x"
        with pytest.raises(KeyError):
            schema.attribute("R2.missing")

    def test_has_relation_and_attribute(self):
        schema = self.make_schema()
        assert schema.has_relation("R1")
        assert not schema.has_relation("R9")
        assert schema.has_attribute("R1.a")
        assert not schema.has_attribute("R1.z")

    def test_owning_relation(self):
        schema = self.make_schema()
        assert schema.owning_relation("R2.y").name == "R2"

    def test_iter_and_len(self):
        schema = self.make_schema()
        assert len(schema) == 2
        assert [relation.name for relation in schema] == ["R1", "R2"]
