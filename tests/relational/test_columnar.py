"""Unit tests for the columnar batch engine.

Three layers:

* :class:`ColumnBatch` container semantics (conversions, resolution, slicing);
* column-level expression/predicate compilation versus the row-wise AST
  evaluation it replaces;
* engine parity: every operator produces the same relation and the same
  :class:`ExecutionStats` counters on the row engine, the columnar engine,
  and (for eligible selections) the indexed fast path — the row-counter
  invariant the ISSUE pins.
"""

import pytest

from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.columnar import ColumnBatch, expression_values, predicate_mask
from repro.relational.database import Database
from repro.relational.executor import (
    DEFAULT_ENGINE,
    Executor,
    available_engines,
    execute,
)

ENGINES = available_engines()  # vector drops out on NumPy-less installs
from repro.relational.expressions import Arithmetic, col, lit
from repro.relational.predicates import (
    And,
    Between,
    ColumnEquals,
    Equals,
    GreaterThan,
    In,
    LessThan,
    Not,
    NotEquals,
    Or,
    TruePredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.stats import ExecutionStats
from repro.relational.types import DataType

_I = DataType.INTEGER
_S = DataType.STRING
_F = DataType.FLOAT


@pytest.fixture()
def database() -> Database:
    schema = DatabaseSchema(
        "S",
        [
            RelationSchema.build(
                "emp", [("id", _I), ("name", _S), ("dept", _I), ("salary", _F)]
            ),
            RelationSchema.build("dept", [("id", _I), ("dname", _S)]),
        ],
    )
    db = Database(schema)
    db.set_relation(
        "emp",
        Relation.from_schema(
            schema.relation("emp"),
            [
                (1, "ann", 10, 100.0),
                (2, "bob", 10, 200.0),
                (3, "cat", 20, 300.0),
                (4, "dan", 30, 400.0),
                (5, None, None, None),
            ],
        ),
    )
    db.set_relation(
        "dept",
        Relation.from_schema(schema.relation("dept"), [(10, "db"), (20, "os"), (30, "net")]),
    )
    return db


class TestColumnBatch:
    def test_round_trip_preserves_relation(self):
        relation = Relation(["R.a", "R.b"], [(1, "x"), (2, "y")], name="R")
        batch = ColumnBatch.from_relation(relation)
        assert batch.data == [[1, 2], ["x", "y"]]
        assert len(batch) == 2
        # from_relation remembers its source: the round trip is the identity.
        assert batch.to_relation() is relation

    def test_fresh_batch_converts_to_equal_relation(self):
        batch = ColumnBatch(["a", "b"], [[1, 2], [3, 4]])
        relation = batch.to_relation()
        assert relation.columns == ("a", "b")
        assert relation.rows == [(1, 3), (2, 4)]

    def test_resolution_matches_relation_semantics(self):
        batch = ColumnBatch(["R.a", "S.a", "R.b"], [[1], [2], [3]])
        assert batch.resolve("a", "R") == 0
        assert batch.resolve("b") == 2
        with pytest.raises(KeyError, match="ambiguous"):
            batch.resolve("a")
        with pytest.raises(KeyError, match="no column matches"):
            batch.resolve("zz")
        with pytest.raises(KeyError):
            batch.column_index("nope")

    def test_filter_and_take_preserve_order(self):
        batch = ColumnBatch(["a"], [[10, 20, 30, 40]])
        assert batch.filter([True, False, True, False]).data == [[10, 30]]
        assert batch.take([3, 0]).data == [[40, 10]]

    def test_zero_column_batch_keeps_row_count(self):
        batch = ColumnBatch([], [], length=3)
        relation = batch.to_relation()
        assert len(relation) == 3
        assert relation.rows == [(), (), ()]

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ColumnBatch(["a", "b"], [[1]])


class TestRelationColumnData:
    def test_column_data_cached_until_mutation(self):
        relation = Relation(["a"], [(1,), (2,)])
        first = relation.column_data()
        assert first == [[1, 2]]
        assert relation.column_data() is first
        relation.append((3,))
        assert relation.column_data() == [[1, 2, 3]]

    def test_prefixed_view_shares_column_cache(self):
        relation = Relation(["R.a"], [(1,), (2,)], name="R")
        data = relation.column_data()
        view = relation.prefixed("X")
        assert view.column_data() is data
        assert view.columns == ("X.a",)

    def test_from_columns_rows_are_lazy_and_correct(self):
        relation = Relation.from_columns(["a", "b"], [[1, 2], ["x", "y"]])
        assert len(relation) == 2  # no row materialisation needed
        assert relation._rows is None
        assert relation.rows == [(1, "x"), (2, "y")]
        assert relation._rows is not None

    def test_from_columns_validates_shape(self):
        with pytest.raises(ValueError):
            Relation.from_columns(["a"], [[1], [2]])
        with pytest.raises(ValueError):
            Relation.from_columns(["a", "a"], [[1], [2]])

    def test_views_are_isolated_from_later_mutation(self):
        # Regression: row sharing between a relation and its relabelled views
        # is copy-on-write — mutating one side must not leak into the other,
        # and len()/rows/column_data must stay consistent on both sides.
        base = Relation(["t.a"], [(1,), (2,)], name="t")
        view = base.prefixed("x")
        assert view.rows == [(1,), (2,)]
        base.append((3,))
        assert len(base) == 3 and base.rows == [(1,), (2,), (3,)]
        assert len(view) == 2 and view.rows == [(1,), (2,)]
        assert view.column_data() == [[1, 2]]
        assert base.column_data() == [[1, 2, 3]]
        # And the other direction: mutating the view leaves the base alone.
        other = base.prefixed("y")
        other.append((9,))
        assert len(base) == 3 and len(other) == 4
        assert base.rows == [(1,), (2,), (3,)]

    def test_lazy_views_are_isolated_too(self):
        base = Relation.from_columns(["t.a"], [[1, 2]], name="t")
        view = base.prefixed("x")
        base.append((3,))
        assert len(base) == 3 and base.rows == [(1,), (2,), (3,)]
        assert len(view) == 2 and view.rows == [(1,), (2,)]


class TestExpressionValues:
    def batch(self):
        return ColumnBatch(["R.a", "R.b"], [[1, 2, None], [10.0, 20.0, 30.0]])

    def test_column_reference(self):
        const, values = expression_values(col("R.a"), self.batch())
        assert (const, values) == (False, [1, 2, None])

    def test_literal_stays_constant(self):
        assert expression_values(lit(7), self.batch()) == (True, 7)

    def test_arithmetic_propagates_none(self):
        const, values = expression_values(
            Arithmetic("*", col("R.a"), lit(2)), self.batch()
        )
        assert (const, values) == (False, [2, 4, None])

    def test_arithmetic_column_column(self):
        const, values = expression_values(
            Arithmetic("+", col("R.a"), col("R.b")), self.batch()
        )
        assert (const, values) == (False, [11.0, 22.0, None])

    def test_constant_folding(self):
        assert expression_values(Arithmetic("+", lit(1), lit(2)), self.batch()) == (True, 3)


class TestPredicateMask:
    def batch(self):
        return ColumnBatch(
            ["R.a", "R.s"], [[1, 2, 3, None], ["x", "y", "z", None]]
        )

    def test_empty_batch_short_circuits(self):
        # An unresolvable predicate must not raise on an empty batch — the
        # row engine never evaluates predicates it has no rows for.
        empty = ColumnBatch(["R.a"], [[]])
        assert predicate_mask(Equals(col("missing"), 1), empty) == []

    def test_equality_and_none_semantics(self):
        assert predicate_mask(Equals(col("R.a"), 2), self.batch()) == [
            False, True, False, False,
        ]
        # None != constant is *false* in the engine (SQL-ish), not true.
        assert predicate_mask(NotEquals(col("R.a"), 2), self.batch()) == [
            True, False, True, False,
        ]

    def test_string_literal_coerced_against_int_column(self):
        assert predicate_mask(Equals(col("R.a"), "2"), self.batch()) == [
            False, True, False, False,
        ]

    def test_constant_on_the_left_swaps(self):
        from repro.relational.predicates import Comparison

        mask = predicate_mask(Comparison(lit(2), "<", col("R.a")), self.batch())
        assert mask == [False, False, True, False]

    def test_connectives_and_not(self):
        batch = self.batch()
        both = And(GreaterThan(col("R.a"), 1), LessThan(col("R.a"), 3))
        assert predicate_mask(both, batch) == [False, True, False, False]
        either = Or(Equals(col("R.s"), "x"), Equals(col("R.s"), "z"))
        assert predicate_mask(either, batch) == [True, False, True, False]
        assert predicate_mask(Not(Equals(col("R.a"), 1)), batch) == [
            False, True, True, True,
        ]
        assert predicate_mask(TruePredicate(), batch) == [True] * 4

    def test_in_and_between(self):
        batch = self.batch()
        assert predicate_mask(In(col("R.a"), (1, 3)), batch) == [
            True, False, True, False,
        ]
        assert predicate_mask(Between(col("R.a"), 2, 3), batch) == [
            False, True, True, False,
        ]

    def test_column_to_column_comparison(self):
        batch = ColumnBatch(["L.k", "R.k"], [[1, 2, None], [1, 3, None]])
        assert predicate_mask(ColumnEquals(col("L.k"), col("R.k")), batch) == [
            True, False, False,
        ]

    @pytest.mark.parametrize(
        "predicate",
        [
            Equals(col("R.a"), 2),
            NotEquals(col("R.a"), 2),
            GreaterThan(col("R.a"), "1"),
            In(col("R.s"), ("x", "q")),
            Between(col("R.a"), "1", "3"),
            Or(Equals(col("R.a"), 1), And(TruePredicate(), LessThan(col("R.a"), 9))),
        ],
    )
    def test_mask_matches_row_wise_evaluation(self, predicate):
        batch = self.batch()
        relation = batch.to_relation()
        expected = [predicate.evaluate(relation, row) for row in relation.rows]
        assert predicate_mask(predicate, batch) == expected


ALL_PLANS = [
    Scan("emp"),
    Scan("emp", alias="e1"),
    Select(Scan("emp"), Equals(col("emp.dept"), 10)),
    Select(Scan("emp"), GreaterThan(col("emp.salary"), 150)),
    Select(Scan("emp"), NotEquals(col("emp.name"), "ann")),
    Project(Scan("emp"), [col("emp.name"), col("emp.dept")]),
    Project(Scan("emp"), [col("emp.dept")], distinct=True),
    Product(Scan("emp"), Scan("dept")),
    Join(Scan("emp"), Scan("dept"), ColumnEquals(col("emp.dept"), col("dept.id"))),
    Join(
        Scan("emp"),
        Scan("dept"),
        And(
            ColumnEquals(col("emp.dept"), col("dept.id")),
            Equals(col("dept.dname"), "db"),
        ),
    ),
    Join(Scan("emp"), Scan("dept"), GreaterThan(col("emp.dept"), col("dept.id"))),
    Union(
        Project(Scan("emp"), [col("emp.dept")]),
        Project(Scan("dept"), [col("dept.id")]),
    ),
    Union(
        Project(Scan("emp"), [col("emp.dept")]),
        Project(Scan("dept"), [col("dept.id")]),
        distinct=False,
    ),
    Aggregate(Scan("emp"), "COUNT"),
    Aggregate(Scan("emp"), "SUM", col("emp.salary")),
    Aggregate(Scan("emp"), "AVG", col("emp.salary"), group_by=[col("emp.dept")]),
    Aggregate(
        Scan("emp"),
        "SUM",
        Arithmetic("*", col("emp.salary"), lit(2)),
        group_by=[col("emp.dept")],
    ),
    Select(
        Product(Scan("emp"), Scan("dept")),
        ColumnEquals(col("emp.dept"), col("dept.id")),
    ),
]


class TestEngineParity:
    """Row and columnar engines: identical relations, identical counters."""

    @pytest.mark.parametrize("plan", ALL_PLANS, ids=lambda plan: plan.canonical()[:60])
    def test_same_result_and_stats(self, database, plan):
        row_stats, columnar_stats = ExecutionStats(), ExecutionStats()
        row_result = execute(plan, database, row_stats, engine="row")
        columnar_result = execute(plan, database, columnar_stats, engine="columnar")
        assert columnar_result.columns == row_result.columns
        assert columnar_result.rows == row_result.rows
        assert columnar_result.name == row_result.name
        assert dict(columnar_stats.operators) == dict(row_stats.operators)
        assert columnar_stats.rows_scanned == row_stats.rows_scanned
        assert columnar_stats.rows_output == row_stats.rows_output

    def test_materialized_leaf(self, database):
        relation = Relation(["x"], [(1,), (2,), (2,)])
        plan = Select(Materialized(relation), Equals(col("x"), 2))
        assert execute(plan, database, engine="columnar").rows == [(2,), (2,)]

    def test_empty_input_operators(self, database):
        empty = Materialized(Relation(["x"], []))
        for plan in [
            Select(empty, Equals(col("x"), 1)),
            Project(empty, [col("x")], distinct=True),
            Aggregate(empty, "COUNT"),
            Aggregate(empty, "SUM", col("x"), group_by=[col("x")]),
            Join(empty, Scan("dept"), ColumnEquals(col("x"), col("dept.id"))),
        ]:
            row = execute(plan, database, engine="row")
            columnar = execute(plan, database, engine="columnar")
            assert columnar.rows == row.rows

    def test_unknown_node_type_rejected_on_both_engines(self, database):
        class Strange:
            pass

        for engine in ENGINES:
            with pytest.raises(TypeError):
                Executor(database, engine=engine).execute(Strange())

    def test_unknown_engine_rejected(self, database):
        with pytest.raises(ValueError, match="unknown engine"):
            Executor(database, engine="turbo")
        assert Executor(database).engine == DEFAULT_ENGINE == "columnar"


class TestRowCounterInvariant:
    """rows_in/rows_out identical across row, indexed-select and columnar paths."""

    PLAN = Select(Scan("emp"), Equals(col("emp.dept"), 10))

    def run(self, database, engine, use_index):
        stats = ExecutionStats()
        executor = Executor(database, stats, engine=engine)
        if not use_index:
            executor._try_indexed_select = lambda node: None
        result = executor.execute(self.PLAN)
        return result, stats

    def test_all_four_paths_agree(self, database):
        results = {}
        for engine in ENGINES:
            for use_index in (False, True):
                results[(engine, use_index)] = self.run(database, engine, use_index)
        reference_result, reference_stats = results[("row", False)]
        assert reference_stats.operators["Scan"] == 1
        assert reference_stats.operators["Select"] == 1
        for (engine, use_index), (result, stats) in results.items():
            label = f"{engine}, index={use_index}"
            assert result.rows == reference_result.rows, label
            assert dict(stats.operators) == dict(reference_stats.operators), label
            assert stats.rows_scanned == reference_stats.rows_scanned, label
            assert stats.rows_output == reference_stats.rows_output, label
        # And the values themselves: Scan(5, 5) + Select(5, 2) over 5 emp rows.
        assert reference_stats.rows_scanned == 5 + 5
        assert reference_stats.rows_output == 5 + 2
