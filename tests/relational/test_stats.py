"""Unit tests for execution statistics."""

from repro.relational.stats import ExecutionStats


class TestExecutionStats:
    def test_count_operator_accumulates(self):
        stats = ExecutionStats()
        stats.count_operator("Select", rows_in=10, rows_out=3)
        stats.count_operator("Select", rows_in=5, rows_out=1)
        stats.count_operator("Scan", rows_in=10, rows_out=10)
        assert stats.operators["Select"] == 2
        assert stats.source_operators == 3
        assert stats.total_operators == 3
        assert stats.rows_scanned == 25
        assert stats.rows_output == 14

    def test_count_source_query_and_reformulation(self):
        stats = ExecutionStats()
        stats.count_source_query()
        stats.count_reformulation(3)
        stats.count_partitions(4)
        assert stats.source_queries == 1
        assert stats.reformulations == 3
        assert stats.partitions_created == 4

    def test_phase_accumulates_time(self):
        stats = ExecutionStats()
        with stats.phase("evaluation"):
            pass
        with stats.phase("evaluation"):
            pass
        assert stats.phase_seconds["evaluation"] >= 0
        assert stats.total_seconds == sum(stats.phase_seconds.values())

    def test_phase_records_even_on_exception(self):
        stats = ExecutionStats()
        try:
            with stats.phase("evaluation"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "evaluation" in stats.phase_seconds

    def test_merge(self):
        left = ExecutionStats()
        left.count_operator("Select")
        left.count_source_query()
        with left.phase("evaluation"):
            pass
        right = ExecutionStats()
        right.count_operator("Select")
        right.count_operator("Scan")
        with right.phase("evaluation"):
            pass
        with right.phase("rewriting"):
            pass
        left.merge(right)
        assert left.operators["Select"] == 2
        assert left.operators["Scan"] == 1
        assert left.source_queries == 1
        assert set(left.phase_seconds) == {"evaluation", "rewriting"}

    def test_snapshot_is_plain_data(self):
        stats = ExecutionStats()
        stats.count_operator("Join")
        snapshot = stats.snapshot()
        assert snapshot["operators"] == {"Join": 1}
        assert snapshot["source_operators"] == 1
        assert isinstance(snapshot["phase_seconds"], dict)
