"""Unit tests for the Database catalog."""

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType


@pytest.fixture()
def schema():
    return DatabaseSchema(
        "S",
        [
            RelationSchema.build("r", [("a", DataType.INTEGER), ("b", DataType.STRING)]),
            RelationSchema.build("s", [("x", DataType.INTEGER)]),
        ],
    )


@pytest.fixture()
def database(schema):
    db = Database(schema)
    db.set_relation("r", Relation.from_schema(schema.relation("r"), [(1, "one"), (2, "two")]))
    db.set_relation("s", Relation.from_schema(schema.relation("s"), [(7,)]))
    return db


class TestDatabase:
    def test_empty_constructor_loads_all_relations(self, schema):
        db = Database.empty(schema)
        assert db.relation_names == ["r", "s"]
        assert db.total_rows == 0

    def test_set_relation_unknown_name(self, database):
        with pytest.raises(KeyError):
            database.set_relation("zzz", Relation(["a"], []))

    def test_set_relation_wrong_width(self, database, schema):
        with pytest.raises(ValueError, match="columns"):
            database.set_relation("s", Relation(["s.x", "s.y"], []))

    def test_relation_lookup(self, database):
        assert len(database.relation("r")) == 2
        with pytest.raises(KeyError):
            database.relation("zzz")

    def test_has_relation(self, database):
        assert database.has_relation("r")
        assert not database.has_relation("zzz")

    def test_scan_with_alias_prefixes(self, database):
        scanned = database.scan("r", alias="r1")
        assert scanned.columns == ("r1.a", "r1.b")

    def test_scan_without_alias_returns_stored_relation(self, database):
        assert database.scan("r").columns == ("r.a", "r.b")

    def test_index_lookup(self, database):
        index = database.index("r", "a")
        assert index.lookup_rows(2) == [(2, "two")]

    def test_index_invalidated_on_reload(self, database, schema):
        first = database.index("r", "a")
        database.set_relation("r", Relation.from_schema(schema.relation("r"), [(9, "nine")]))
        second = database.index("r", "a")
        assert second is not first
        assert second.lookup_rows(9) == [(9, "nine")]

    def test_cardinalities_and_total(self, database):
        assert database.cardinalities() == {"r": 2, "s": 1}
        assert database.total_rows == 3

    def test_iteration(self, database):
        assert dict(database).keys() == {"r", "s"}
