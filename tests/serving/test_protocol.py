"""Protocol fuzz/property tests: hostile input never escapes the envelope.

Whatever bytes or JSON a client sends, the outcome is a *structured* error
response — an ``error.code`` plus a message carrying the same did-you-mean
texts the :class:`~repro.policy.ExecutionPolicy` boundary produces — never a
raw traceback, and (at the TCP layer, covered in ``test_server.py``) never a
hung connection or a dead server.  Hypothesis drives the synchronous layers
directly: :func:`~repro.serving.protocol.parse_request` for the envelope and
:meth:`~repro.serving.tenants.Tenant.execute` for op dispatch.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Tenant,
    encode_response,
    parse_request,
)

from tests.serving.conftest import make_spec

# Shared across the whole module: tenants are stateful, but every error path
# below leaves the session untouched, and the determinism tests elsewhere
# cover state; one tenant keeps hypothesis's many examples fast.
_TENANT = Tenant(make_spec("fuzz"))


def teardown_module(module):
    _TENANT.close()


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
json_scalars = st.none() | st.booleans() | st.integers() | st.floats(
    allow_nan=False, allow_infinity=False
) | st.text(max_size=20)

json_values = st.recursive(
    json_scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)

request_dicts = st.dictionaries(
    st.sampled_from(
        ["op", "id", "v", "tenant", "query", "queries", "overrides",
         "relation", "rows", "positions", "k", "junk"]
    ),
    json_values,
    max_size=6,
)


def _assert_structured(response: dict) -> None:
    """The universal postcondition: a well-formed error envelope."""
    assert response["ok"] is False
    assert isinstance(response["error"], dict)
    assert isinstance(response["error"]["code"], str)
    assert isinstance(response["error"]["message"], str)
    assert "Traceback" not in response["error"]["message"]
    assert response["v"] == PROTOCOL_VERSION
    # And it round-trips through the canonical encoding.
    encoded = encode_response(response)
    assert json.loads(encoded) is not None


# --------------------------------------------------------------------------- #
# parse_request: arbitrary text → ProtocolError or a normalized dict
# --------------------------------------------------------------------------- #
@settings(max_examples=200, deadline=None)
@given(st.text(max_size=200))
def test_parse_request_never_raises_anything_else(text):
    try:
        request = parse_request(text)
    except ProtocolError as err:
        _assert_structured(
            {"ok": False, "error": err.payload(), "v": PROTOCOL_VERSION}
        )
    else:
        assert request["op"] in OPS


@settings(max_examples=200, deadline=None)
@given(request_dicts)
def test_parse_request_on_arbitrary_json_objects(request):
    try:
        parsed = parse_request(json.dumps(request))
    except ProtocolError as err:
        assert err.code in (
            "bad-frame", "bad-request", "unknown-op"
        )
    else:
        assert parsed["op"] in OPS


def test_unknown_op_gets_a_did_you_mean():
    with pytest.raises(ProtocolError) as excinfo:
        parse_request(json.dumps({"op": "qeury", "tenant": "t"}))
    assert excinfo.value.code == "unknown-op"
    assert "did you mean 'query'?" in excinfo.value.message


def test_oversized_frame_is_refused():
    frame = json.dumps({"op": "query", "tenant": "t", "pad": "x" * (1 << 21)})
    with pytest.raises(ProtocolError) as excinfo:
        parse_request(frame)
    assert excinfo.value.code == "bad-frame"


# --------------------------------------------------------------------------- #
# Tenant.execute: any parseable request → a structured response, never a raise
# --------------------------------------------------------------------------- #
@settings(max_examples=150, deadline=None)
@given(request_dicts)
def test_tenant_execute_never_raises(request):
    request = {**request, "tenant": "fuzz"}
    try:
        normalized = parse_request(json.dumps(request))
    except ProtocolError:
        return  # envelope-rejected before reaching a tenant
    if normalized["op"] not in ("query", "query_many", "top_k", "explain",
                                "stats", "append_rows", "update_rows",
                                "delete_rows", "set_relation"):
        return  # server ops never reach Tenant.execute
    response = _TENANT.execute(normalized)
    assert response["tenant"] == "fuzz"
    assert isinstance(response["seq"], int)
    if not response["ok"]:
        _assert_structured(response)


@settings(max_examples=100, deadline=None)
@given(
    st.sampled_from(["method", "engine", "strategy", "methd", "enigne"]),
    st.text(min_size=1, max_size=15),
)
def test_bad_overrides_carry_policy_validation_text(name, value):
    """Policy errors surface verbatim as structured bad-overrides errors."""
    response = _TENANT.execute(
        {
            "op": "query",
            "id": 1,
            "tenant": "fuzz",
            "query": "q0",
            "overrides": {name: value},
        }
    )
    if response["ok"]:
        return  # the fuzzer found a genuinely valid override value
    assert response["error"]["code"] == "bad-overrides"
    message = response["error"]["message"]
    # The did-you-mean machinery's framing is intact end to end.
    assert "valid" in message or "did you mean" in message or "must be" in message


def test_bad_override_examples_match_policy_boundary():
    cases = {
        "methd": "unknown option 'methd'; did you mean 'method'?",
        "method": None,  # value error, checked below
    }
    response = _TENANT.execute(
        {"op": "query", "id": 1, "tenant": "fuzz", "query": "q0",
         "overrides": {"methd": "e-mqo"}}
    )
    assert response["error"]["code"] == "bad-overrides"
    assert cases["methd"] in response["error"]["message"]

    response = _TENANT.execute(
        {"op": "query", "id": 2, "tenant": "fuzz", "query": "q0",
         "overrides": {"method": "e-mkO"}}
    )
    assert response["error"]["code"] == "bad-overrides"
    assert "did you mean 'e-mqo'?" in response["error"]["message"]


def test_parallel_override_is_rejected_on_the_wire():
    response = _TENANT.execute(
        {"op": "query", "id": 3, "tenant": "fuzz", "query": "q0",
         "overrides": {"parallel": {"workers": 2}}}
    )
    assert response["error"]["code"] == "bad-overrides"
    assert "ExecutionPolicy" in response["error"]["message"]


def test_unknown_query_and_relation_suggestions():
    response = _TENANT.execute(
        {"op": "query", "id": 4, "tenant": "fuzz", "query": "q_phonee"}
    )
    assert response["error"]["code"] == "unknown-query"
    assert "did you mean 'q_phone'?" in response["error"]["message"]

    response = _TENANT.execute(
        {"op": "append_rows", "id": 5, "tenant": "fuzz",
         "relation": "Customers", "rows": [[1]]}
    )
    assert response["error"]["code"] == "bad-write"
    assert "did you mean 'Customer'?" in response["error"]["message"]


@settings(max_examples=100, deadline=None)
@given(json_values)
def test_write_rows_shape_is_validated(rows):
    response = _TENANT.execute(
        {"op": "append_rows", "id": 6, "tenant": "fuzz",
         "relation": "Customer", "rows": rows}
    )
    if isinstance(rows, list) and all(isinstance(row, list) for row in rows):
        # (an empty list is a legal no-op append)
        # Shape-valid rows may still fail deeper (arity/typing) — but
        # always structurally.
        if not response["ok"]:
            _assert_structured(response)
    else:
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-write"
