"""The concurrency battery: the serving determinism invariant, under load.

The pinned invariant (ARCHITECTURE.md, "Serving"): serving N tenants
concurrently is **byte-identical** to running each tenant's admitted
requests serially, in per-tenant ``seq`` order, on an isolated session.
These tests drive a live TCP server with many pipelining clients and then
check the transcript against :func:`repro.serving.tenants.serial_replay` —
actual response frames compared as bytes, not parsed dicts.
"""

from __future__ import annotations

import asyncio
import json

from repro.policy import ExecutionPolicy
from repro.serving import ReproServer, TenantQuota, serial_replay
from repro.serving.tenants import Tenant

from tests.serving.conftest import connect, make_spec, run

#: Per-tenant request scripts: names resolve against the paper-example
#: catalog; every client cycles through its tenant's script.
SCRIPTS = {
    "alpha": ["q0", "q1", "q0", "q_phone", "q0"],
    "beta": ["q1", "q1", "q2", "q1"],
    "gamma": ["q2", "q0", "q2", "q2"],
}

#: e-mqo exercises the session plan cache, so repeats hit warm state —
#: exactly the regime the byte-identity claim has to survive.
POLICY = ExecutionPolicy(method="e-mqo", slow_query_seconds=30.0)


def _specs(quota=None):
    # Roomy default queue: the byte-identity scenarios pipeline up to ~30
    # requests per tenant and must never shed (shed refusals carry no seq).
    quota = quota if quota is not None else TenantQuota(queue_limit=64)
    return [make_spec(name, policy=POLICY, quota=quota) for name in SCRIPTS]


async def _client_loop(server, tenant, queries, rounds):
    """One client: pipeline ``rounds`` cycles of ``queries`` at ``tenant``.

    Returns ``(request_fields, response, frame)`` triples — the replay
    harness re-issues the *original* requests, so it needs them verbatim.
    """
    client = await connect(server)
    try:
        sent = {}
        futures = []
        for _ in range(rounds):
            for query in queries:
                future = await client.send("query", tenant=tenant, query=query)
                futures.append(future)
                sent[client._next_id] = {
                    "op": "query", "tenant": tenant, "query": query
                }
        responses = [await future for future in futures]
        return [
            (sent[response["id"]], response, client.frames[response["id"]])
            for response in responses
        ]
    finally:
        await client.close()


def _replay_transcript(transcripts):
    """Group live (request, response, frame) triples by tenant, seq-ordered."""
    by_tenant: dict[str, list] = {}
    for triples in transcripts:
        for request, response, frame in triples:
            by_tenant.setdefault(response["tenant"], []).append(
                (request, response, frame)
            )
    for triples in by_tenant.values():
        triples.sort(key=lambda triple: triple[1]["seq"])
        seqs = [response["seq"] for _, response, _ in triples]
        # seq numbers are dense and start at 1: nothing executed twice,
        # nothing skipped, nothing lost between worker and client.
        assert seqs == list(range(1, len(seqs) + 1))
    return by_tenant


def test_concurrent_serving_is_byte_identical_to_serial_replay():
    """≥3 tenants × ≥8 clients: every frame matches an isolated serial run."""

    async def scenario():
        async with ReproServer(_specs()) as server:
            # 9 concurrent clients: 3 per tenant, 3 tenants.
            tasks = [
                _client_loop(server, tenant, queries, rounds=2)
                for tenant, queries in SCRIPTS.items()
                for _ in range(3)
            ]
            transcripts = await asyncio.gather(*tasks)
            by_tenant = _replay_transcript(transcripts)
            assert sorted(by_tenant) == sorted(SCRIPTS)
            live_stats = {
                name: tenant.execute({"op": "stats", "id": "s", "tenant": name})
                for name, tenant in server.tenants.items()
            }
        return by_tenant, live_stats

    by_tenant, live_stats = run(scenario())

    for name, triples in by_tenant.items():
        # Rebuild the per-tenant request stream in execution (seq) order.
        requests = [
            {**request, "id": response["id"]}
            for request, response, _ in triples
        ]
        live_frames = [frame for _, _, frame in triples]
        replayed = serial_replay(make_spec(name, policy=POLICY), requests)
        assert live_frames == replayed, f"tenant {name} diverged from serial replay"


def test_session_stats_match_serial_run_exactly():
    """Lifetime SessionStats totals equal an isolated serial run's totals."""

    async def scenario():
        async with ReproServer(_specs()) as server:
            tasks = [
                _client_loop(server, tenant, queries, rounds=2)
                for tenant, queries in SCRIPTS.items()
                for _ in range(2)
            ]
            transcripts = await asyncio.gather(*tasks)
            by_tenant = _replay_transcript(transcripts)
            live = {}
            for name, tenant in server.tenants.items():
                snapshot = tenant.session.stats.snapshot()
                snapshot.pop("seconds")  # wall-clock is the one legit delta
                live[name] = snapshot
            return by_tenant, live

    by_tenant, live = run(scenario())

    for name, triples in by_tenant.items():
        serial_tenant = Tenant(make_spec(name, policy=POLICY))
        try:
            for request, response, _ in triples:
                serial_tenant.execute({**request, "id": response["id"]})
            expected = serial_tenant.session.stats.snapshot()
        finally:
            serial_tenant.close()
        expected.pop("seconds")
        assert live[name] == expected, f"tenant {name} stats diverged"


def test_warm_tenants_accumulate_cache_hits():
    """Repeated queries hit the per-tenant plan cache (strictly positive)."""

    async def scenario():
        async with ReproServer(_specs()) as server:
            tasks = [
                _client_loop(server, tenant, queries, rounds=3)
                for tenant, queries in SCRIPTS.items()
            ]
            await asyncio.gather(*tasks)
            return {
                name: tenant.session.stats.plan_cache["hits"]
                for name, tenant in server.tenants.items()
            }

    hits = run(scenario())
    for name, count in hits.items():
        assert count > 0, f"tenant {name} never hit its warm plan cache"


def test_full_queue_sheds_load_with_structured_refusal():
    """An over-quota burst is refused with retry_after, never crashed on."""

    quota = TenantQuota(queue_limit=1, retry_after_seconds=0.01)

    async def scenario():
        async with ReproServer(_specs(quota=quota)) as server:
            client = await connect(server)
            try:
                # Fire a burst far larger than queue_limit=1 without reading
                # responses in between: admission must shed the overflow.
                futures = [
                    await client.send("query", tenant="alpha", query="q0")
                    for _ in range(24)
                ]
                responses = [await future for future in futures]
            finally:
                await client.close()
            served = [r for r in responses if r["ok"]]
            shed = [r for r in responses if not r["ok"]]
            # The server stayed healthy throughout.
            probe = await connect(server)
            try:
                health = await probe.healthz()
            finally:
                await probe.close()
            return served, shed, health, dict(server.shed_counts)

    served, shed, health, counts = run(scenario())
    assert served, "burst produced no successful responses at all"
    assert shed, "queue_limit=1 under a 24-request burst must shed something"
    for refusal in shed:
        assert refusal["error"]["code"] == "overloaded"
        assert refusal["error"]["retry_after_seconds"] == 0.01
        assert "queue is full" in refusal["error"]["message"]
    assert health["result"]["status"] == "ok"
    assert counts["overloaded"] == len(shed)


def test_drain_under_load_finishes_in_flight_and_refuses_new():
    """Drain: every admitted request is answered, none admitted after."""

    async def scenario():
        async with ReproServer(_specs()) as server:
            client = await connect(server)
            try:
                # Admit a pipeline of work, then drain while it is in flight.
                futures = [
                    await client.send("query", tenant=name, query=queries[0])
                    for name, queries in SCRIPTS.items()
                    for _ in range(4)
                ]
                drain_future = await client.send("drain")
                late_future = await client.send("query", tenant="alpha", query="q0")
                responses = [await future for future in futures]
                drained = await drain_future
                late = await late_future
            finally:
                await client.close()
            closed = {
                name: tenant.session.closed
                for name, tenant in server.tenants.items()
            }
            return responses, drained, late, closed

    responses, drained, late, closed = run(scenario())

    # No admitted request was dropped: each either succeeded or was shed
    # *before* admission (pipelining may race requests past the drain flag).
    answered = [r for r in responses if r["ok"]]
    refused = [r for r in responses if not r["ok"]]
    assert answered, "drain must let in-flight work finish"
    for refusal in refused:
        assert refusal["error"]["code"] in ("draining", "overloaded")
    assert drained["ok"] and drained["result"] == {"drained": True}
    # Nothing is admitted once drain has begun.
    assert not late["ok"]
    assert late["error"]["code"] == "draining"
    assert all(closed.values()), "drain must close every tenant session"


def test_interleaved_writes_stay_inside_the_replay_envelope():
    """Writes flow through the same per-tenant order as queries.

    A tenant interleaving appends with queries still replays byte-identically:
    the write responses, the delta kinds and every subsequent answer.
    """

    writes = {
        "op": "append_rows",
        "tenant": "alpha",
        "relation": "Customer",
        "rows": [[9, "Zed", "123", "000", "999", "aaa", "zz", 1]],
    }

    read = {"op": "query", "tenant": "alpha", "query": "q0"}

    async def scenario():
        async with ReproServer([make_spec("alpha", policy=POLICY)]) as server:
            client = await connect(server)
            try:
                sent, futures = {}, []
                for fields in [read, writes, read] * 3:
                    op = fields["op"]
                    body = {k: v for k, v in fields.items() if k != "op"}
                    futures.append(await client.send(op, **body))
                    sent[client._next_id] = dict(fields)
                responses = [await future for future in futures]
            finally:
                await client.close()
            return [
                (sent[r["id"]], r, client.frames[r["id"]]) for r in responses
            ]

    triples = run(scenario())
    triples.sort(key=lambda triple: triple[1]["seq"])

    for _, response, frame in triples:
        body = json.loads(frame)
        assert body["ok"], f"request failed: {body}"
        if "delta" in body.get("result", {}):
            assert body["result"]["delta"] == "append"

    requests = [
        {**request, "id": response["id"]} for request, response, _ in triples
    ]
    live_frames = [frame for _, _, frame in triples]
    replayed = serial_replay(make_spec("alpha", policy=POLICY), requests)
    assert live_frames == replayed
