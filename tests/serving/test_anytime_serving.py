"""Serving-layer anytime: the ``budget`` request field, end to end.

Budgets cross the wire only in their deterministic form (mapping/e-unit
limits — ``wall_ms`` is refused, not dropped), are capped by the tenant's
``mapping_budget_cap`` quota, and the budgeted responses stay inside the
serial-replay byte-identity envelope the concurrency battery pins.
"""

from __future__ import annotations

import asyncio

from repro.serving import ReproServer, TenantQuota, serial_replay

from tests.serving.conftest import connect, make_spec, run


def _server(quota=None):
    return ReproServer([make_spec("alpha", quota=quota)])


# --------------------------------------------------------------------------- #
# the budget field: happy path
# --------------------------------------------------------------------------- #
def test_budgeted_query_returns_interval_section():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                partial = await client.query(
                    "alpha", "q2", budget={"mapping_limit": 0}
                )
                assert partial["ok"] is True
                anytime = partial["result"]["anytime"]
                assert partial["result"]["evaluator"] == "anytime"
                assert anytime["exhausted"] is False
                assert anytime["unexplored_mass"] > 0
                assert anytime["intervals"] == []

                full = await client.query("alpha", "q2", budget={})
                assert full["ok"] is True
                anytime = full["result"]["anytime"]
                assert anytime["exhausted"] and anytime["converged"]
                assert anytime["unexplored_mass"] == 0.0
                for interval in anytime["intervals"]:
                    assert interval["lb"] == interval["ub"]

                # An unbudgeted query keeps the exact payload shape: the
                # anytime section appears only when the budget field routes
                # the request to the anytime evaluator.
                exact = await client.query("alpha", "q2")
                assert "anytime" not in exact["result"]
                assert exact["result"]["answers"] == full["result"]["answers"]
            finally:
                await client.close()

    run(scenario())


def test_quota_caps_the_wire_budget():
    # Capped tenant: a huge requested mapping_limit is clamped to 0, so the
    # run executes nothing.  The same request on an uncapped tenant drains
    # the frontier completely.
    async def scenario():
        async with ReproServer(
            [
                make_spec("capped", quota=TenantQuota(mapping_budget_cap=0)),
                make_spec("open"),
            ]
        ) as server:
            client = await connect(server)
            try:
                budget = {"mapping_limit": 10_000}
                capped = await client.query("capped", "q2", budget=budget)
                open_ = await client.query("open", "q2", budget=budget)
                assert capped["result"]["anytime"]["exhausted"] is False
                assert capped["result"]["anytime"]["unexplored_mass"] > 0
                assert open_["result"]["anytime"]["exhausted"] is True
            finally:
                await client.close()

    run(scenario())


# --------------------------------------------------------------------------- #
# the budget field: refusals
# --------------------------------------------------------------------------- #
def _assert_bad_overrides(response, *needles):
    assert response["ok"] is False
    assert response["error"]["code"] == "bad-overrides"
    for needle in needles:
        assert needle in response["error"]["message"]


def test_wall_ms_is_not_wire_admissible():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                response = await client.query(
                    "alpha", "q2", budget={"wall_ms": 5.0}
                )
                _assert_bad_overrides(response, "wall_ms", "serial replay")
            finally:
                await client.close()

    run(scenario())


def test_budget_field_validation_errors():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                typo = await client.query(
                    "alpha", "q2", budget={"mapping_limits": 1}
                )
                _assert_bad_overrides(typo, "did you mean 'mapping_limit'")

                not_dict = await client.query("alpha", "q2", budget=7)
                _assert_bad_overrides(not_dict, "JSON object", "int")

                negative = await client.query(
                    "alpha", "q2", budget={"eunit_limit": -1}
                )
                _assert_bad_overrides(negative)
            finally:
                await client.close()

    run(scenario())


def test_budget_applies_to_the_query_op_only():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                top_k = await client.top_k(
                    "alpha", "q2", budget={"mapping_limit": 1}
                )
                _assert_bad_overrides(top_k, '"query" op only', "top_k")

                many = await client.request(
                    "query_many",
                    tenant="alpha",
                    queries=["q0", "q1"],
                    budget={"mapping_limit": 1},
                )
                _assert_bad_overrides(many, '"query" op only', "query_many")
            finally:
                await client.close()

    run(scenario())


def test_budget_is_not_an_override():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                for name in ("budget", "budget_ms"):
                    response = await client.query(
                        "alpha", "q2", overrides={name: {"mapping_limit": 1}}
                    )
                    _assert_bad_overrides(response, name, "top-level")
            finally:
                await client.close()

    run(scenario())


# --------------------------------------------------------------------------- #
# budgeted requests inside the byte-identity envelope
# --------------------------------------------------------------------------- #
def test_budgeted_requests_replay_byte_identically():
    """Concurrent budgeted + exact traffic matches an isolated serial run."""
    script = [
        {"op": "query", "tenant": "alpha", "query": "q2",
         "budget": {"mapping_limit": 2}},
        {"op": "query", "tenant": "alpha", "query": "q0"},
        {"op": "query", "tenant": "alpha", "query": "q2",
         "budget": {"eunit_limit": 1}},
        {"op": "query", "tenant": "alpha", "query": "q2", "budget": {}},
        {"op": "query", "tenant": "alpha", "query": "q_phone",
         "budget": {"mapping_limit": 0}},
    ]

    async def client_loop(server):
        client = await connect(server)
        try:
            sent = {}
            futures = []
            for _ in range(2):
                for fields in script:
                    request = dict(fields)
                    future = await client.send(
                        request.pop("op"), **request
                    )
                    futures.append(future)
                    sent[client._next_id] = dict(fields)
            responses = [await future for future in futures]
            return [
                (sent[response["id"]], response, client.frames[response["id"]])
                for response in responses
            ]
        finally:
            await client.close()

    async def scenario():
        quota = TenantQuota(queue_limit=64)
        async with ReproServer([make_spec("alpha", quota=quota)]) as server:
            transcripts = await asyncio.gather(
                *(client_loop(server) for _ in range(3))
            )
        triples = [triple for transcript in transcripts for triple in transcript]
        triples.sort(key=lambda triple: triple[1]["seq"])
        seqs = [response["seq"] for _, response, _ in triples]
        assert seqs == list(range(1, len(seqs) + 1))
        return triples

    triples = run(scenario())
    assert all(response["ok"] for _, response, _ in triples)
    requests = [
        {**request, "id": response["id"]} for request, response, _ in triples
    ]
    live_frames = [frame for _, _, frame in triples]
    quota = TenantQuota(queue_limit=64)
    replayed = serial_replay(make_spec("alpha", quota=quota), requests)
    assert live_frames == replayed
