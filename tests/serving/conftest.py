"""Fixtures for the serving test battery.

Every tenant spec is built from :func:`build_paper_example` — a fresh,
deterministic database per call — so the serial-replay harness can rebuild
an identical isolated tenant even after the live one absorbed writes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.datagen.paper_example import build_paper_example
from repro.policy import ExecutionPolicy
from repro.serving import ServingClient, TenantQuota, TenantSpec


def make_spec(
    name: str,
    policy: ExecutionPolicy | None = None,
    quota: TenantQuota | None = None,
) -> TenantSpec:
    """A fresh paper-example tenant spec (deterministic; safe to rebuild)."""
    example = build_paper_example()
    catalog = {
        "q0": example.q0(),
        "q1": example.q1(),
        "q2": example.q2(),
        "q_phone": example.q_phone_by_addr(),
    }
    return TenantSpec(
        name=name,
        database=example.database,
        mappings=example.mappings,
        links=example.links,
        policy=policy,
        catalog=catalog,
        quota=quota if quota is not None else TenantQuota(),
    )


def run(coro):
    """Run one async test body on a fresh event loop (no pytest-asyncio)."""
    return asyncio.run(coro)


async def connect(server) -> ServingClient:
    return await ServingClient.connect(*server.address)


@pytest.fixture()
def spec_factory():
    return make_spec
