"""TCP-layer server tests: framing, server ops, metrics merge, robustness.

The wire-level counterpart of ``test_protocol.py``: garbage bytes, truncated
frames and oversized lines must produce a structured error (then at worst a
closed *connection*) — never a hung connection, a traceback on the wire, or
a dead server.  Every scenario ends with a health probe over a fresh
connection proving the server survived.
"""

from __future__ import annotations

import asyncio
import json

from repro.serving import MAX_FRAME_BYTES, ReproServer, ServingClient

from tests.serving.conftest import connect, make_spec, run


def _server():
    return ReproServer([make_spec("alpha"), make_spec("beta")])


async def _assert_alive(server):
    probe = await connect(server)
    try:
        health = await probe.healthz()
        assert health["ok"] and health["result"]["status"] in ("ok", "draining")
    finally:
        await probe.close()


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #
def test_garbage_bytes_get_structured_errors_not_disconnects():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                for payload in (b"\xff\xfe{{{ not json\n", b"[1,2,3]\n", b'"str"\n'):
                    await client.send_raw(payload)
                    response = await client.read_unmatched()
                    assert response["ok"] is False
                    assert response["error"]["code"] in ("bad-frame", "bad-request")
                    assert "Traceback" not in response["error"]["message"]
                # The same connection still serves real requests afterwards.
                good = await client.query("alpha", "q0")
                assert good["ok"] is True
            finally:
                await client.close()
            await _assert_alive(server)

    run(scenario())


def test_truncated_frame_is_answered_then_closed():
    async def scenario():
        async with _server() as server:
            reader, writer = await asyncio.open_connection(
                *server.address, limit=MAX_FRAME_BYTES
            )
            # A frame cut off before its newline, then EOF.
            writer.write(b'{"op": "query", "tenant": "alpha"')
            writer.write_eof()
            line = await reader.readline()
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-frame"
            assert "truncated" in response["error"]["message"]
            assert await reader.read() == b""  # server closed the connection
            writer.close()
            await _assert_alive(server)

    run(scenario())


def test_oversized_line_is_refused_and_survived():
    async def scenario():
        async with _server() as server:
            reader, writer = await asyncio.open_connection(
                *server.address, limit=MAX_FRAME_BYTES * 2
            )
            writer.write(b'{"pad": "' + b"x" * (MAX_FRAME_BYTES + 1024) + b'"}\n')
            await writer.drain()
            line = await reader.readline()
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-frame"
            writer.close()
            await _assert_alive(server)

    run(scenario())


def test_abrupt_client_disconnect_leaves_server_serving():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            # In-flight request, then vanish without reading the response.
            await client.send("query", tenant="alpha", query="q0")
            await client.close()
            await _assert_alive(server)
            # The tenant keeps serving other clients.
            other = await connect(server)
            try:
                response = await other.query("alpha", "q1")
                assert response["ok"] is True
            finally:
                await other.close()

    run(scenario())


# --------------------------------------------------------------------------- #
# server ops
# --------------------------------------------------------------------------- #
def test_unknown_tenant_gets_did_you_mean():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                response = await client.query("alhpa", "q0")
                assert response["ok"] is False
                assert response["error"]["code"] == "unknown-tenant"
                assert "did you mean 'alpha'?" in response["error"]["message"]
            finally:
                await client.close()

    run(scenario())


def test_tenants_op_describes_every_tenant():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                response = await client.request("tenants")
            finally:
                await client.close()
            assert response["ok"] is True
            described = {t["name"]: t for t in response["result"]["tenants"]}
            assert sorted(described) == ["alpha", "beta"]
            for tenant in described.values():
                assert tenant["queries"] == ["q0", "q1", "q2", "q_phone"]
                assert tenant["quota"]["queue_limit"] == 16
                assert tenant["policy"]["method"] == "o-sharing"
                assert tenant["closed"] is False

    run(scenario())


def test_metrics_op_merges_tenant_registries_with_labels():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                assert (await client.query("alpha", "q0"))["ok"]
                assert (await client.query("beta", "q1"))["ok"]
                text = await client.metrics()
            finally:
                await client.close()
            return text

    text = run(scenario())
    # Session-level families appear once per tenant, labelled.
    assert 'repro_source_queries_total{tenant="alpha"}' in text
    assert 'repro_source_queries_total{tenant="beta"}' in text
    # The read-through pool-depth gauge is scraped per tenant too.
    assert 'repro_pool_queue_depth{tenant="alpha"}' in text
    # Server-level families carry their own labels.
    assert 'repro_server_queue_depth{tenant="alpha"}' in text
    assert 'repro_server_request_seconds_count{tenant="alpha"}' in text
    # Prometheus text format sanity: one TYPE line per family.
    for family in ("repro_server_queue_depth", "repro_source_queries_total"):
        assert text.count(f"# TYPE {family} ") == 1


def test_drain_is_idempotent_and_health_reports_it():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                first = await client.drain()
                second = await client.drain()
                health = await client.healthz()
            finally:
                await client.close()
            assert first["result"] == {"drained": True}
            assert second["result"] == {"drained": True}
            assert health["result"]["status"] == "draining"
            # Metrics stay scrapeable after the sessions closed.
            assert "repro_server_queue_depth" in server.metrics_text()

    run(scenario())


def test_client_pipelines_across_tenants_on_one_connection():
    async def scenario():
        async with _server() as server:
            client = await connect(server)
            try:
                futures = [
                    await client.send("query", tenant=tenant, query=query)
                    for tenant, query in [
                        ("alpha", "q0"), ("beta", "q2"), ("alpha", "q1"),
                        ("beta", "q0"), ("alpha", "q0"),
                    ]
                ]
                responses = [await f for f in futures]
            finally:
                await client.close()
            assert all(r["ok"] for r in responses)
            assert [r["tenant"] for r in responses] == [
                "alpha", "beta", "alpha", "beta", "alpha"
            ]
            # Per-tenant seq increases in send order despite interleaving.
            alpha_seqs = [r["seq"] for r in responses if r["tenant"] == "alpha"]
            assert alpha_seqs == sorted(alpha_seqs)

    run(scenario())


def test_connect_helper_round_trip():
    """ServingClient against a plain address tuple (docs example shape)."""

    async def scenario():
        server = ReproServer([make_spec("solo")])
        await server.start()
        try:
            host, port = server.address
            client = await ServingClient.connect(host, port)
            try:
                response = await client.query("solo", "q_phone")
                assert response["ok"] is True
                tuples = response["result"]["answers"]["tuples"]
                assert tuples and tuples[0]["rank"] == 1
            finally:
                await client.close()
        finally:
            await server.close()

    run(scenario())
