"""Observability overhead gates: tracing/metrics must observe, not slow down.

The unified tracing + metrics subsystem carries a pinned invariant
(docs/ARCHITECTURE.md): **instrumentation never changes answers or operator
counts**, and it must stay cheap enough to leave on in serving.  This
benchmark runs the session-reuse workload (20 queries — 5 distinct Table III
queries repeated as traffic repeats them — through one warm session) in
three instrumentation regimes and gates the ratios:

* **off** (``trace=False, metrics=False``) — every call site takes its
  strict no-op path (one thread-local read per operator/phase);
* **on** (``trace=True, metrics=True``) — full span trees + the registry;
* **baseline** — the off regime with the instrumentation hooks monkeypatched
  back to their pre-observability bodies, i.e. the engine as it was before
  this subsystem existed.

Gates (best-of-``ROUNDS``, interleaved to shield against machine drift):

* fully instrumented ≤ ``INSTRUMENTED_SLACK``x the off regime;
* the off regime ≤ ``DISABLED_SLACK``x the monkeypatched baseline (the
  disabled path must stay within noise of uninstrumented code);
* answers and operator counts byte-identical across all three regimes;
* the metrics snapshot renders Prometheus text that regex-parses, and the
  Chrome trace export round-trips through ``json.loads``.

Wall-clock gates can be disabled on a known-noisy runner with
``REPRO_BENCH_OBS_GATE=off`` (the identity and format gates always run).
Emits ``BENCH_observability.json`` through the shared serializer.
"""

from __future__ import annotations

import json
import os
import re
import time
from contextlib import contextmanager

from repro import ExecutionPolicy, Session
from repro.bench.reporting import format_table
from repro.obs import write_bench_artifact
from repro.relational.stats import ExecutionStats
from repro.workloads.queries import PAPER_QUERIES

#: the session-reuse serving workload: Table III Excel queries, repeated
WORKLOAD_QUERY_IDS = ["Q1", "Q2", "Q3", "Q4", "Q5"] * 4
ROUNDS = 5
#: fully traced + metered must stay within this factor of uninstrumented
INSTRUMENTED_SLACK = 1.25
#: the disabled path must stay within this factor of the pre-obs baseline
DISABLED_SLACK = 1.05

#: one Prometheus text-format line: ``name{labels} value`` or ``# HELP/TYPE``
_PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.eE+-]+(inf|nan)?)$"
)


@contextmanager
def _pre_observability_stats():
    """Run with ``ExecutionStats`` hooks as they were before the obs PR.

    Restores the exact pre-instrumentation bodies of ``count_operator`` and
    ``phase`` (no ambient-tracer read at all), giving the honest baseline
    the disabled-path gate compares against.
    """
    from contextlib import contextmanager as cm

    original_count = ExecutionStats.count_operator
    original_phase = ExecutionStats.phase

    def count_operator(self, name, rows_in=0, rows_out=0):
        self.operators[name] += 1
        self.source_operators += 1
        self.rows_scanned += rows_in
        self.rows_output += rows_out

    @cm
    def phase(self, name):
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    ExecutionStats.count_operator = count_operator
    ExecutionStats.phase = phase
    try:
        yield
    finally:
        ExecutionStats.count_operator = original_count
        ExecutionStats.phase = original_phase


def _run_workload(queries, scenario, trace, metrics):
    """One 20-query pass through a fresh session; returns (seconds, batch)."""
    policy = ExecutionPolicy(method="batch", trace=trace, metrics=metrics)
    started = time.perf_counter()
    with Session(
        scenario.database, scenario.mappings, links=scenario.links, policy=policy
    ) as session:
        batch = session.query_many(queries)
    return time.perf_counter() - started, batch


def _answers_key(batch):
    return [
        (dict(result.answers.items()), result.answers.empty_probability)
        for result in batch.results
    ]


def test_observability_overhead(benchmark, small_excel_bench, report_writer):
    scenario = small_excel_bench
    queries = [
        PAPER_QUERIES[qid].build(scenario.target_schema) for qid in WORKLOAD_QUERY_IDS
    ]
    assert len(queries) == 20

    # Interleave the three regimes within each round so slow drift of the
    # machine hits all of them equally; gate on best-of-ROUNDS.
    best = {"baseline": None, "off": None, "on": None}
    batches = {}
    for _ in range(ROUNDS):
        with _pre_observability_stats():
            seconds, batch = _run_workload(queries, scenario, False, False)
        best["baseline"] = min(seconds, best["baseline"] or seconds)
        batches["baseline"] = batch
        seconds, batch = _run_workload(queries, scenario, False, False)
        best["off"] = min(seconds, best["off"] or seconds)
        batches["off"] = batch
        seconds, batch = _run_workload(queries, scenario, True, True)
        best["on"] = min(seconds, best["on"] or seconds)
        batches["on"] = batch
    benchmark.pedantic(
        lambda: _run_workload(queries, scenario, True, True), rounds=1, iterations=1
    )

    # The pinned invariant: identical answers AND identical operator counts
    # in every regime — instrumentation only observes.
    reference = batches["baseline"]
    for label, batch in batches.items():
        assert _answers_key(batch) == _answers_key(reference), label
        assert dict(batch.stats.operators) == dict(reference.stats.operators), label
        assert batch.stats.source_operators == reference.stats.source_operators, label
        assert batch.stats.rows_scanned == reference.stats.rows_scanned, label

    instrumented_ratio = best["on"] / best["off"]
    disabled_ratio = best["off"] / best["baseline"]

    # Format gates: Prometheus text regex-parses line by line, the Chrome
    # trace round-trips through json.loads, and the span tree is real.
    with Session(
        scenario.database,
        scenario.mappings,
        links=scenario.links,
        policy=ExecutionPolicy(method="batch", trace=True),
    ) as session:
        session.query_many(queries)
        prometheus = session.metrics().to_prometheus()
        for line in prometheus.strip().splitlines():
            assert _PROM_LINE.match(line), f"bad Prometheus line: {line!r}"
        assert "repro_stage_seconds_bucket" in prometheus
        assert "repro_pool_queue_depth" in prometheus
        chrome = json.loads(session.tracer.chrome_trace())
        assert chrome["traceEvents"], "empty Chrome trace"
        assert {event["ph"] for event in chrome["traceEvents"]} == {"X"}
        spans = [
            json.loads(line) for line in session.tracer.export_jsonl().splitlines()
        ]
        assert any(span["name"].startswith("op:") for span in spans)

    table = format_table(
        ["regime", "best [s]", "vs off"],
        [
            ["baseline (pre-obs)", f"{best['baseline']:.3f}", ""],
            ["off (no-op path)", f"{best['off']:.3f}", f"{disabled_ratio:.3f}x vs baseline"],
            ["on (trace+metrics)", f"{best['on']:.3f}", f"{instrumented_ratio:.3f}x"],
        ],
    )
    gate_disabled = os.environ.get("REPRO_BENCH_OBS_GATE", "").lower() == "off"
    gate_note = "DISABLED (REPRO_BENCH_OBS_GATE=off)" if gate_disabled else "ENFORCED"
    report_writer(
        "observability",
        "== Observability overhead (20-query session workload) ==\n\n"
        f"best of {ROUNDS} interleaved rounds; wall-clock gates {gate_note}\n"
        f"instrumented <= {INSTRUMENTED_SLACK}x off, "
        f"off <= {DISABLED_SLACK}x pre-obs baseline\n\n" + table + "\n",
    )

    write_bench_artifact(
        "observability",
        {
            "workload": {"queries": len(queries), "rounds": ROUNDS},
            "series": {
                "baseline_seconds": best["baseline"],
                "off_seconds": best["off"],
                "on_seconds": best["on"],
                "instrumented_ratio": instrumented_ratio,
                "disabled_ratio": disabled_ratio,
            },
            "gates": {
                "instrumented_slack": INSTRUMENTED_SLACK,
                "disabled_slack": DISABLED_SLACK,
                "wallclock_gates": gate_note,
                "answers_byte_identical": True,
                "operator_counts_identical": True,
                "prometheus_parses": True,
                "chrome_trace_round_trips": True,
            },
        },
    )

    if not gate_disabled:
        assert instrumented_ratio <= INSTRUMENTED_SLACK, (
            f"traced+metered workload is {instrumented_ratio:.3f}x the "
            f"uninstrumented run (gate {INSTRUMENTED_SLACK}x)"
        )
        assert disabled_ratio <= DISABLED_SLACK, (
            f"disabled instrumentation is {disabled_ratio:.3f}x the "
            f"pre-observability baseline (gate {DISABLED_SLACK}x)"
        )
