"""Ablation: partition-tree mapping partitioning vs naive pairwise grouping.

DESIGN.md calls out the partition tree (Algorithm 3) as a design choice worth
ablating: the paper claims the tree makes the q-sharing grouping cheap.  The
ablation partitions increasingly many mappings on the attributes of the
default query with both implementations and compares their cost and output.
"""

from __future__ import annotations

import time

from repro.bench.harness import ExperimentPoint, ExperimentSeries
from repro.bench.reporting import render_experiment
from repro.core.partition_tree import partition, partition_naive
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import PAPER_QUERIES

H_VALUES = (10, 20, 40, 60)
SCALE = 0.02


def _build_series():
    scenario = build_scenario(target="Excel", h=max(H_VALUES), scale=SCALE, seed=7)
    query = PAPER_QUERIES["Q4"].build(scenario.target_schema)
    keys = query.partition_keys
    series = ExperimentSeries(title="partitioning ablation", x_label="mappings")
    for h in H_VALUES:
        mappings = list(scenario.with_mappings(h).mappings)
        for label, routine in (("partition-tree", partition), ("naive-pairwise", partition_naive)):
            repeats = 50
            started = time.perf_counter()
            for _ in range(repeats):
                groups = routine(keys, mappings)
            elapsed = (time.perf_counter() - started) / repeats
            series.add(
                ExperimentPoint(
                    method=label,
                    x=h,
                    seconds=elapsed,
                    source_operators=0,
                    source_queries=0,
                    answers=len(groups),
                )
            )
    return series


def test_ablation_partition_tree(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    text = render_experiment(
        "Ablation: partition tree vs naive pairwise grouping (Q4 attributes)",
        series,
        metrics=("seconds", "answers"),
        notes="'answers' column = number of partitions produced (must be identical)",
    )
    report_writer("ablation_partition", text)

    for h in H_VALUES:
        # Both implementations produce the same number of partitions.
        assert series.value("partition-tree", h, "answers") == series.value(
            "naive-pairwise", h, "answers"
        )
    # The tree is asymptotically cheaper; at the largest h it must not lose by
    # more than a small constant factor (both are fast at this scale).
    assert series.value("partition-tree", max(H_VALUES)) <= series.value(
        "naive-pairwise", max(H_VALUES)
    ) * 1.5
