"""Figure 10(c): basic / e-basic / e-MQO vs the number of mappings.

The paper's observations: basic grows linearly in the number of mappings,
e-basic grows much more slowly (few *distinct* source queries), and e-MQO's
plan-generation cost rises sharply — beyond ~300 mappings e-MQO is even slower
than basic.  The reproduction sweeps a smaller range of mapping counts and
checks the same ordering and growth trends.
"""

from __future__ import annotations

from repro.bench.harness import SIMPLE_METHODS, sweep_mapping_count
from repro.bench.reporting import render_experiment
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import PAPER_QUERIES

H_VALUES = (10, 20, 30, 40, 60)
SCALE = 0.02


def _build_series():
    scenario = build_scenario(target="Excel", h=max(H_VALUES), scale=SCALE, seed=7)
    query = PAPER_QUERIES["Q4"].build(scenario.target_schema)
    return sweep_mapping_count(
        SIMPLE_METHODS,
        query,
        scenario,
        H_VALUES,
        title="Figure 10(c): simple solutions vs number of mappings (Q4)",
        optimize=False,  # paper-faithful: the paper has no cost-based optimizer
    )


def test_fig10c_simple_solutions_vs_mappings(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 10(c): basic / e-basic / e-MQO vs number of mappings (Q4)",
        series,
        metrics=("seconds", "source_operators"),
        notes=f"paper sweeps 100-500 mappings at 100 MB; reproduction sweeps {H_VALUES} at scale {SCALE}",
    )
    report_writer("fig10c_simple_mappings", text)

    smallest, largest = min(series.x_values()), max(series.x_values())
    # basic's executed work grows linearly with the mapping count.
    assert series.value("basic", largest, "source_operators") > 2 * series.value(
        "basic", smallest, "source_operators"
    )
    # e-basic executes fewer source operators than basic at every h.
    for h in series.x_values():
        assert series.value("e-basic", h, "source_operators") <= series.value(
            "basic", h, "source_operators"
        )
    # e-basic beats basic in time at the largest mapping count.
    assert series.value("e-basic", largest) < series.value("basic", largest)
    # e-MQO's planning effort grows super-linearly with the mapping count
    # (the behaviour that makes it lose to e-basic in the paper).
    comparisons_small = series.value("e-mqo", smallest, "plan_comparisons")
    comparisons_large = series.value("e-mqo", largest, "plan_comparisons")
    assert comparisons_large >= comparisons_small
