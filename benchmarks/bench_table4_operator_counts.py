"""Table IV: operator-selection strategies — time and number of source operators.

The paper's Table IV (query Q4, 100 mappings):

    strategy   time (s)   # source operators
    Random     215        433
    SNF        58         135
    SEF        55         132
    e-MQO      320        112

The shape to reproduce: Random executes by far the most source operators; SNF
and SEF are close to each other and close to the optimum; e-MQO executes the
fewest operators of all (its global plan is optimal) but pays a plan-generation
cost that makes it slower than SNF/SEF end to end.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentSeries, run_method
from repro.bench.reporting import render_experiment
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import PAPER_QUERIES

BENCH_H = 60
SCALE = 0.03


def _build_series():
    scenario = build_scenario(target="Excel", h=BENCH_H, scale=SCALE, seed=7)
    query = PAPER_QUERIES["Q4"].build(scenario.target_schema)
    series = ExperimentSeries(title="Table IV", x_label="strategy")
    for strategy in ("random", "snf", "sef"):
        point = run_method(
            "o-sharing",
            query,
            scenario,
            x=strategy,
            strategy=strategy,
            seed=11,
            optimize=False,  # paper-faithful: the paper has no cost-based optimizer
        )
        point.method = f"o-sharing/{strategy}"
        series.add(point)
    emqo = run_method("e-mqo", query, scenario, x="e-mqo", optimize=False)
    series.add(emqo)
    return series


def test_table4_operator_selection(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    rows = [
        [
            point.x,
            round(point.seconds, 4),
            point.source_operators,
        ]
        for point in series.points
    ]
    from repro.bench.reporting import format_table

    text = (
        "== Table IV: operator selection strategies (Q4) ==\n\n"
        + format_table(["strategy", "time [s]", "# source operators"], rows)
        + "\n\n(paper: Random 433 ops, SNF 135, SEF 132, e-MQO 112 — same ordering expected)\n"
    )
    report_writer("table4_operator_counts", text)

    operators = {point.x: point.source_operators for point in series.points}
    seconds = {point.x: point.seconds for point in series.points}
    # Random executes the most source operators.
    assert operators["random"] >= operators["snf"]
    assert operators["random"] >= operators["sef"]
    # SNF and SEF are close to each other (the paper reports 135 vs 132).
    assert operators["sef"] <= operators["snf"] * 1.15
    # e-MQO's shared global plan executes the fewest operators...
    assert operators["e-mqo"] <= min(operators["snf"], operators["sef"]) * 1.1
    # ...but its end-to-end time is not better than SEF (planning is expensive).
    assert seconds["e-mqo"] >= seconds["sef"] * 0.5
