"""Figure 11(d): evaluators vs the number of selection operators.

The paper's observations: with a single selection operator q-sharing and
o-sharing behave the same (there is nothing to share at the operator level,
and o-sharing pays a small u-trace overhead); from two selections onward
o-sharing wins because it shares operator results across mappings whose full
source queries differ.
"""

from __future__ import annotations

from repro.bench.harness import DEFAULT_METHODS, ExperimentSeries, run_methods
from repro.bench.reporting import render_experiment
from repro.datagen.scenario import build_scenario
from repro.workloads.generators import selection_query

SELECTION_COUNTS = (1, 2, 3, 4, 5)
BENCH_H = 60
SCALE = 0.03


def _build_series():
    scenario = build_scenario(target="Excel", h=BENCH_H, scale=SCALE, seed=7)
    series = ExperimentSeries(
        title="Figure 11(d): time vs number of selection operators",
        x_label="selection operators",
    )
    for count in SELECTION_COUNTS:
        query = selection_query(count, scenario.target_schema)
        for point in run_methods(
            DEFAULT_METHODS,
            query,
            scenario,
            x=count,
            optimize=False,  # paper-faithful: the paper has no cost-based optimizer
        ):
            series.add(point)
    return series


def test_fig11d_selection_operators(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 11(d): e-basic / q-sharing / o-sharing vs number of selections",
        series,
        metrics=("seconds", "source_operators", "reformulations"),
        notes=f"selections on PO attributes; h={BENCH_H}, scale={SCALE}",
    )
    report_writer("fig11d_selections", text)

    # More selection operators → more distinct source queries → more work for
    # e-basic and q-sharing.
    assert series.value("e-basic", 5, "source_operators") >= series.value(
        "e-basic", 1, "source_operators"
    )
    # From 2 selections onward o-sharing executes no more operators than
    # q-sharing (operator-level sharing kicks in).
    for count in SELECTION_COUNTS[1:]:
        assert series.value("o-sharing", count, "source_operators") <= series.value(
            "q-sharing", count, "source_operators"
        ) * 1.1 + 2
    # q-sharing always rewrites no more queries than e-basic.
    for count in SELECTION_COUNTS:
        assert series.value("q-sharing", count, "reformulations") <= series.value(
            "e-basic", count, "reformulations"
        )
