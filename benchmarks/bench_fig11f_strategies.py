"""Figure 11(f): o-sharing operator-selection strategies (Random / SNF / SEF).

The paper's observations on the Excel queries Q1-Q5: both SNF and SEF clearly
beat Random (which ignores the mapping information and picks operators that
split the mappings into many partitions), and SEF is at least as good as SNF.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentSeries, run_method
from repro.bench.reporting import render_experiment
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import queries_for_target

STRATEGIES = ("random", "snf", "sef")
QUERY_IDS = ("Q1", "Q2", "Q3", "Q4", "Q5")
BENCH_H = 60
SCALE = 0.03


def _build_series():
    scenario = build_scenario(target="Excel", h=BENCH_H, scale=SCALE, seed=7)
    series = ExperimentSeries(
        title="Figure 11(f): operator selection strategies", x_label="query"
    )
    specs = {spec.query_id: spec for spec in queries_for_target("Excel")}
    for query_id in QUERY_IDS:
        query = specs[query_id].build(scenario.target_schema)
        for strategy in STRATEGIES:
            point = run_method(
                "o-sharing",
                query,
                scenario,
                x=query_id,
                strategy=strategy,
                seed=11,
                optimize=False,  # paper-faithful: the paper has no cost-based optimizer
            )
            point.method = strategy
            series.add(point)
    return series


def test_fig11f_operator_selection_strategies(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 11(f): o-sharing with Random / SNF / SEF on Q1-Q5 (Excel)",
        series,
        metrics=("seconds", "source_operators"),
        notes=f"h={BENCH_H}, scale={SCALE}",
    )
    report_writer("fig11f_strategies", text)

    def total_operators(strategy):
        return sum(series.value(strategy, q, "source_operators") for q in QUERY_IDS)

    # The informed strategies never execute more source operators than Random
    # overall, and SEF is at least as good as SNF (the paper's conclusion).
    assert total_operators("snf") <= total_operators("random")
    assert total_operators("sef") <= total_operators("random")
    assert total_operators("sef") <= total_operators("snf") * 1.05
