"""Anytime evaluation: budgeted queries vs exact o-sharing on Excel Q1-Q5.

The anytime subsystem's contract, measured: a mapping-budgeted query stops
early with sound per-tuple ``[lb, ub]`` intervals, and a chain of
``resume()`` steps refines those intervals to the exact answer without
repeating work.

CI gates (operator counts are deterministic; wall-clock is reported but not
gated — this may run on a 1-core container):

* every mapping-budgeted run executes **strictly fewer** source operators
  than the exact evaluation of the same query;
* whenever a budgeted run reports ``converged``, its interval ranking
  agrees with the exact probability ranking position for position;
* resuming a budgeted query to completion yields answers **byte-identical**
  to exact o-sharing, with cumulative operator totals equal to one exact
  evaluation (no repeated work across resume steps).

Emits ``BENCH_anytime.json`` at the repo root with per-query operator
counts, interval widths and the resume-chain profile.
"""

from __future__ import annotations

import time

from repro import ExecutionPolicy, Session
from repro.bench.reporting import format_table
from repro.core.answer import _sort_key
from repro.datagen.scenario import build_scenario
from repro.obs import write_bench_artifact
from repro.workloads.queries import queries_for_target

QUERY_IDS = ("Q1", "Q2", "Q3", "Q4", "Q5")
BENCH_H = 60
SCALE = 0.03
def _session(scenario, **policy_fields):
    from repro.relational.parallel import default_manager

    return Session(
        scenario.database,
        scenario.mappings,
        links=scenario.links,
        policy=ExecutionPolicy(**policy_fields),
        pools=default_manager(),
    )


def _exact_ranking(result):
    return [
        values
        for values, _ in sorted(
            result.answers.items(), key=lambda item: (-item[1], _sort_key(item[0]))
        )
    ]


def _run_query(scenario, query):
    """Exact, budgeted and resume-to-completion profiles for one query."""
    # Exact reference (o-sharing) in its own cold session.
    with _session(scenario, method="o-sharing") as session:
        started = time.perf_counter()
        exact = session.query(query)
        exact_seconds = time.perf_counter() - started

    # Full drain through the anytime evaluator: byte-identity sanity plus
    # the total mapping charge the budget sweep is scaled against.
    with _session(scenario) as session:
        drained = session.query(query, budget={})
    assert drained.exhausted and drained.converged
    assert dict(drained.answers.items()) == dict(exact.answers.items())
    # The converged interval ranking is the exact probability ranking —
    # non-vacuously exercised here (the half-charge run below rarely
    # converges on these queries).
    assert [
        interval.values for interval in drained.intervals
    ] == _exact_ranking(exact)
    full_charge = (
        drained.details["mappings_evaluated"]
        - drained.details["representative_mappings"]
    )

    # Budgeted run at half the full charge: strictly fewer operators.
    budget = {"mapping_limit": max(0, full_charge // 2)}
    with _session(scenario) as session:
        started = time.perf_counter()
        partial = session.query(query, budget=budget)
        partial_seconds = time.perf_counter() - started
    assert partial.stats.source_operators < exact.stats.source_operators, (
        f"{query.name}: budgeted run executed "
        f"{partial.stats.source_operators} operators, exact "
        f"{exact.stats.source_operators}"
    )
    if partial.converged:
        ranking = [interval.values for interval in partial.intervals]
        assert ranking == _exact_ranking(exact)[: len(ranking)], (
            f"{query.name}: converged interval ranking diverged from exact"
        )

    # Resume-to-completion in quarter-size e-unit steps.  E-unit budgets
    # guarantee progress (a mapping budget smaller than the next group's
    # size would stall); the cap turns any regression back into a stall
    # into a fast failure instead of a hung CI job.
    full_eunits = drained.details["units_created"] - 1  # root is budget-free
    step_budget = {"eunit_limit": max(1, full_eunits // 4)}
    with _session(scenario) as session:
        result = session.query(query, budget={"mapping_limit": 0})
        widths = [result.unexplored_mass]
        steps = 0
        while not result.exhausted:
            result = result.resume(budget=step_budget)
            assert result.unexplored_mass <= widths[-1]
            widths.append(result.unexplored_mass)
            steps += 1
            assert steps <= full_eunits + 1, (
                f"{query.name}: resume chain stalled without exhausting"
            )
    assert result.converged
    assert dict(result.answers.items()) == dict(exact.answers.items()), (
        f"{query.name}: resumed-to-completion answers diverged from exact"
    )
    assert repr(result.answers) == repr(exact.answers)
    assert result.stats.source_operators == exact.stats.source_operators, (
        f"{query.name}: resume chain repeated work "
        f"({result.stats.source_operators} vs {exact.stats.source_operators})"
    )

    return {
        "query": query.name,
        "exact_source_operators": exact.stats.source_operators,
        "exact_seconds": exact_seconds,
        "budget_mapping_limit": budget["mapping_limit"],
        "budgeted_source_operators": partial.stats.source_operators,
        "budgeted_seconds": partial_seconds,
        "budgeted_unexplored_mass": partial.unexplored_mass,
        "budgeted_converged": partial.converged,
        "resume_steps": steps,
        "resume_unexplored_profile": widths,
    }


def test_anytime(benchmark, report_writer):
    scenario = build_scenario(target="Excel", h=BENCH_H, scale=SCALE, seed=7)
    specs = {spec.query_id: spec for spec in queries_for_target("Excel")}
    queries = [specs[query_id].build(scenario.target_schema) for query_id in QUERY_IDS]

    entries = benchmark.pedantic(
        lambda: [_run_query(scenario, query) for query in queries],
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            entry["query"],
            entry["exact_source_operators"],
            entry["budgeted_source_operators"],
            round(entry["budgeted_unexplored_mass"], 4),
            entry["budgeted_converged"],
            entry["resume_steps"],
        ]
        for entry in entries
    ]
    text = (
        f"== Anytime evaluation vs exact o-sharing (Excel Q1-Q5, h={BENCH_H}, "
        f"scale={SCALE}) ==\n\n"
        + format_table(
            [
                "query",
                "exact ops",
                "budgeted ops",
                "unexplored",
                "converged",
                "resume steps",
            ],
            rows,
        )
        + "\n\nbudget = half the query's full mapping charge; resume chain "
        "refines quarter-size e-unit steps to byte-identical exact answers.\n"
        "(wall-clock reported, not gated: operator counts are the "
        "deterministic metric on 1-core CI)\n"
    )
    report_writer("anytime", text)

    payload = {
        "scenario": {"target": "Excel", "h": BENCH_H, "scale": SCALE, "seed": 7},
        "queries": entries,
        "gates": {
            "budgeted_strictly_fewer_operators": all(
                entry["budgeted_source_operators"]
                < entry["exact_source_operators"]
                for entry in entries
            ),
            "resume_to_completion_byte_identical": True,  # asserted per query
            "resume_cumulative_ops_equal_exact": True,  # asserted per query
        },
    }
    write_bench_artifact("anytime", payload)

    assert payload["gates"]["budgeted_strictly_fewer_operators"]
