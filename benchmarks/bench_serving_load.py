"""Serving front end under concurrent multi-tenant load.

Two phases over a live :class:`~repro.serving.server.ReproServer` speaking
real TCP on localhost:

* **warm** — 3 paper-example tenants, 3 pipelining clients each (9
  concurrent connections), every client cycling its tenant's query script
  for several rounds.  Headline: per-tenant plan-cache hit rate under
  concurrency, plus throughput and client-observed p50/p99 latency.
* **storm** — one tenant with ``queue_limit=2`` receives a 64-request
  burst: admission control must shed the overflow with structured
  ``overloaded`` refusals (Retry-After hints included) while the server
  stays healthy.

CI gates (wall-clock is reported, never gated — this may run on 1-core CI):

* every warm-phase response frame is **byte-identical** to a serial replay
  of that tenant's requests in ``seq`` order on an isolated session (the
  pinned serving invariant);
* every warm tenant's plan-cache hit rate clears a floor — concurrency must
  not silently trade the warm-cache win away;
* the storm sheds at least one request, every refusal is structured, and
  the server still answers ``healthz`` afterwards.

Emits ``BENCH_serving_load.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
from time import perf_counter

from repro.bench.reporting import format_table
from repro.datagen.paper_example import build_paper_example
from repro.obs import write_bench_artifact
from repro.policy import ExecutionPolicy
from repro.serving import ReproServer, ServingClient, TenantQuota, TenantSpec
from repro.serving.tenants import serial_replay

#: Per-tenant request scripts (catalog names), cycled by every client.
SCRIPTS = {
    "excel": ["q0", "q1", "q0", "q_phone"],
    "noris": ["q1", "q2", "q1"],
    "sales": ["q2", "q0", "q2", "q2", "q_phone"],
}

CLIENTS_PER_TENANT = 3
ROUNDS = 4

#: e-mqo keeps the per-tenant plan cache in play — the warm-serving regime.
POLICY = ExecutionPolicy(method="e-mqo")

#: CI floor for the headline metric.  Scripts repeat 4 distinct queries over
#: 12 rounds per tenant (3 clients × 4), so a healthy shared plan cache sits
#: far above this; dipping below means concurrency went cold.
HIT_RATE_FLOOR = 0.2


def _spec(name: str, quota: TenantQuota | None = None) -> TenantSpec:
    example = build_paper_example()
    return TenantSpec(
        name=name,
        database=example.database,
        mappings=example.mappings,
        links=example.links,
        policy=POLICY,
        catalog={
            "q0": example.q0(),
            "q1": example.q1(),
            "q2": example.q2(),
            "q_phone": example.q_phone_by_addr(),
        },
        quota=quota if quota is not None else TenantQuota(queue_limit=64),
    )


async def _warm_client(server, tenant: str, script, rounds: int):
    """One client: sequential request/response, per-request latency taped."""
    client = await ServingClient.connect(*server.address)
    transcript = []
    try:
        for _ in range(rounds):
            for query in script:
                request = {"op": "query", "tenant": tenant, "query": query}
                started = perf_counter()
                response = await client.query(tenant, query)
                latency = perf_counter() - started
                assert response["ok"], f"warm request failed: {response}"
                frame = client.frames[response["id"]]
                transcript.append((request, response, frame, latency))
        return transcript
    finally:
        await client.close()


async def _warm_phase():
    specs = [_spec(name) for name in SCRIPTS]
    async with ReproServer(specs) as server:
        started = perf_counter()
        transcripts = await asyncio.gather(
            *(
                _warm_client(server, tenant, script, ROUNDS)
                for tenant, script in SCRIPTS.items()
                for _ in range(CLIENTS_PER_TENANT)
            )
        )
        elapsed = perf_counter() - started
        tenant_stats = {
            name: tenant.session.stats
            for name, tenant in server.tenants.items()
        }
    return transcripts, elapsed, tenant_stats


async def _storm_phase():
    async with ReproServer(
        [_spec("stormy", quota=TenantQuota(queue_limit=2))]
    ) as server:
        client = await ServingClient.connect(*server.address)
        try:
            futures = [
                await client.send("query", tenant="stormy", query="q0")
                for _ in range(64)
            ]
            responses = [await future for future in futures]
            health = await client.healthz()
        finally:
            await client.close()
        shed = [r for r in responses if not r["ok"]]
        served = [r for r in responses if r["ok"]]
        for refusal in shed:
            assert refusal["error"]["code"] == "overloaded", refusal
            assert refusal["error"]["retry_after_seconds"] > 0
        assert health["result"]["status"] == "ok"
        return len(served), len(shed)


def _percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def test_serving_load(report_writer):
    transcripts, elapsed, tenant_stats = asyncio.run(_warm_phase())

    # ---- byte-identity gate: live frames == isolated serial replay ------ #
    by_tenant: dict[str, list] = {}
    latencies: list[float] = []
    for transcript in transcripts:
        for request, response, frame, latency in transcript:
            by_tenant.setdefault(response["tenant"], []).append(
                (request, response, frame)
            )
            latencies.append(latency)
    for name, triples in by_tenant.items():
        triples.sort(key=lambda triple: triple[1]["seq"])
        seqs = [response["seq"] for _, response, _ in triples]
        assert seqs == list(range(1, len(seqs) + 1)), f"{name}: seq gap"
        requests = [
            {**request, "id": response["id"]} for request, response, _ in triples
        ]
        live = [frame for _, _, frame in triples]
        assert live == serial_replay(_spec(name), requests), (
            f"tenant {name} diverged from its serial replay"
        )

    # ---- warm-cache gate: hit rate floor per tenant --------------------- #
    hit_rates = {}
    for name, stats in tenant_stats.items():
        cache = stats.plan_cache
        hit_rates[name] = cache["hit_rate"]
        assert cache["hits"] > 0, f"tenant {name} never hit its plan cache"
        assert cache["hit_rate"] >= HIT_RATE_FLOOR, (
            f"tenant {name} hit rate {cache['hit_rate']:.3f} "
            f"below floor {HIT_RATE_FLOOR}"
        )

    # ---- storm phase: structured shedding, healthy server --------------- #
    storm_served, storm_shed = asyncio.run(_storm_phase())
    assert storm_shed > 0, "queue_limit=2 under a 64-burst must shed load"

    # ---- report + artifact ---------------------------------------------- #
    total_requests = len(latencies)
    throughput = total_requests / elapsed if elapsed else 0.0
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)

    rows = [
        [
            name,
            len(by_tenant[name]),
            tenant_stats[name].plan_cache["hits"],
            round(hit_rates[name], 3),
        ]
        for name in sorted(by_tenant)
    ]
    text = (
        f"== Serving load ({len(SCRIPTS)} tenants x "
        f"{CLIENTS_PER_TENANT} clients x {ROUNDS} rounds) ==\n\n"
        + format_table(["tenant", "requests", "cache hits", "hit rate"], rows)
        + f"\n\ntotal: {total_requests} requests in {elapsed:.3f}s "
        f"({throughput:.0f} req/s), p50 {p50 * 1000:.2f} ms, "
        f"p99 {p99 * 1000:.2f} ms\n"
        f"storm: {storm_served} served, {storm_shed} shed "
        "(structured overloaded refusals)\n"
        "(wall-clock reported, not gated: byte-identity and cache-hit "
        "floors are the deterministic gates)\n"
    )
    report_writer("serving_load", text)

    write_bench_artifact(
        "serving_load",
        {
            "workload": {
                "tenants": len(SCRIPTS),
                "clients_per_tenant": CLIENTS_PER_TENANT,
                "rounds": ROUNDS,
                "requests": total_requests,
            },
            "headline": {
                "cache_hit_rate_by_tenant": hit_rates,
                "hit_rate_floor": HIT_RATE_FLOOR,
            },
            "latency": {
                "throughput_rps": throughput,
                "wall_seconds": elapsed,
                "p50_seconds": p50,
                "p99_seconds": p99,
            },
            "byte_identity": {
                "replayed_tenants": sorted(by_tenant),
                "identical": True,  # asserted above; failure aborts the run
            },
            "load_shedding": {"served": storm_served, "shed": storm_shed},
        },
    )
