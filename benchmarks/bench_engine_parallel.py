"""Parallel sharded engine vs serial columnar on the Figure 11(b) largest size.

The parallel engine (``engine="parallel"``) shards the columnar operators
morsel-wise over a worker pool; this benchmark is its guard rail.  It runs
the Figure 11(b) largest-size setting (Q4 over the Excel scenario at the
"100 MB" calibrated scale, ``optimize=False`` like the engine benchmarks —
the optimizer erases the sweep work that separates the engines) on

* the serial columnar engine (the baseline),
* the parallel engine with ≥4 thread workers, and
* the parallel engine with ≥4 process workers (the GIL-free mode),

and always asserts **byte-identical answers and identical operator/row
counters** across all of them.

The >1.5x speedup assertion is gated on the machine actually having ≥4
usable cores: CPython threads cannot speed up pure-Python sweeps beyond the
GIL and process pools cannot beat serial on a single core, so on smaller
machines (CI containers are often 1-2 cores) the benchmark records the
measured table in ``benchmarks/results/engine_parallel.txt`` with the core
count and skips only the speedup gate — never the correctness gates.  The
gate takes the best configuration over best-of-``ROUNDS`` timings; on a
known-noisy shared runner it can be disabled explicitly with
``REPRO_BENCH_PARALLEL_GATE=off`` (the correctness gates still run).
"""

from __future__ import annotations

import os
import time

from repro.bench.reporting import format_table
from repro.core import evaluate
from repro.datagen.scenario import build_scenario
from repro.obs import write_bench_artifact
from repro.relational.parallel import ParallelConfig, available_cpus
from repro.workloads.queries import PAPER_QUERIES

BENCH_METHODS = ("e-basic", "o-sharing")
BENCH_H = 60
#: the Figure 11(b) "100 MB" point (see bench_fig11b_dbsize.py)
BENCH_SCALE = 0.03
ROUNDS = 3
WORKERS = max(4, available_cpus())
#: cores needed before a >1.5x parallel speedup is physically plausible
REQUIRED_CORES = 4
TARGET_SPEEDUP = 1.5

#: engine configurations measured, label → evaluate() options
CONFIGS = {
    "columnar": {"engine": "columnar"},
    f"parallel-thread[{WORKERS}]": {
        "engine": "parallel",
        "parallel": ParallelConfig(
            workers=WORKERS, kind="thread", min_partition_rows=1024
        ),
    },
    f"parallel-process[{WORKERS}]": {
        "engine": "parallel",
        "parallel": ParallelConfig(
            workers=WORKERS, kind="process", min_partition_rows=1024
        ),
    },
}


def _measure(method, options, query, scenario):
    best, result = None, None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = evaluate(
            query,
            scenario.mappings,
            scenario.database,
            method=method,
            links=scenario.links,
            optimize=False,
            **options,
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_parallel_engine_speedup(benchmark, report_writer):
    scenario = build_scenario(target="Excel", h=BENCH_H, scale=BENCH_SCALE, seed=7)
    query = PAPER_QUERIES["Q4"].build(scenario.target_schema)
    cores = available_cpus()

    rows = []
    best_speedup = 0.0
    for method in BENCH_METHODS:
        timings, results = {}, {}
        for label, options in CONFIGS.items():
            timings[label], results[label] = _measure(method, options, query, scenario)

        baseline = results["columnar"]
        for label, result in results.items():
            # Byte-identical answers and identical work accounting on every
            # engine configuration — these gates hold on any machine.
            assert dict(result.answers.items()) == dict(baseline.answers.items()), (
                f"{method}@{label}: answers diverge from serial columnar"
            )
            assert (
                result.answers.empty_probability
                == baseline.answers.empty_probability
            ), f"{method}@{label}: empty-answer mass diverges"
            assert dict(result.stats.operators) == dict(baseline.stats.operators)
            assert result.stats.rows_scanned == baseline.stats.rows_scanned
            assert result.stats.rows_output == baseline.stats.rows_output

        for label in CONFIGS:
            if label == "columnar":
                continue
            speedup = timings["columnar"] / timings[label]
            best_speedup = max(best_speedup, speedup)
            rows.append(
                [method, label, timings["columnar"], timings[label], speedup]
            )

    table = format_table(
        ["method", "parallel config", "columnar [s]", "parallel [s]", "speedup"],
        [[m, l, f"{c:.3f}", f"{p:.3f}", f"{s:.2f}x"] for m, l, c, p, s in rows],
    )
    gate_disabled = os.environ.get("REPRO_BENCH_PARALLEL_GATE", "").lower() == "off"
    enforce = cores >= REQUIRED_CORES and not gate_disabled
    if enforce:
        gate_note = "ENFORCED"
    elif gate_disabled:
        gate_note = "DISABLED (REPRO_BENCH_PARALLEL_GATE=off)"
    else:
        gate_note = (
            f"SKIPPED ({cores} usable core(s) < {REQUIRED_CORES}; "
            "pure-Python morsels cannot beat serial without real cores)"
        )
    gate = f"speedup gate (> {TARGET_SPEEDUP}x): {gate_note}"
    report_writer(
        "engine_parallel",
        "== Parallel sharded engine vs serial columnar "
        "(Q4, Excel, Fig 11(b) largest size) ==\n\n"
        f"h={BENCH_H}, scale={BENCH_SCALE}, optimize=False, best of {ROUNDS} "
        f"rounds, {cores} usable core(s), workers={WORKERS}\n"
        f"{gate}\n\n" + table + "\n",
    )

    if enforce:
        assert best_speedup > TARGET_SPEEDUP, (
            f"parallel engine reached only {best_speedup:.2f}x over serial "
            f"columnar with {WORKERS} workers on {cores} cores "
            f"(target {TARGET_SPEEDUP}x)"
        )

    write_bench_artifact(
        "engine_parallel",
        {
            "workload": {
                "query": "Q4",
                "target": "Excel",
                "h": BENCH_H,
                "scale": BENCH_SCALE,
                "rounds": ROUNDS,
                "optimize": False,
                "workers": WORKERS,
                "cores": cores,
            },
            "series": [
                {
                    "method": method,
                    "config": label,
                    "columnar_seconds": col_s,
                    "parallel_seconds": par_s,
                    "speedup": speedup,
                }
                for method, label, col_s, par_s, speedup in rows
            ],
            "gates": {
                "answers_byte_identical": True,
                "operator_counts_identical": True,
                "target_speedup": TARGET_SPEEDUP,
                "speedup_gate": gate_note,
                "best_speedup": best_speedup,
            },
        },
    )

    # One pedantic round through pytest-benchmark for the timing artefact.
    benchmark.pedantic(
        lambda: evaluate(
            query,
            scenario.mappings,
            scenario.database,
            method="e-basic",
            links=scenario.links,
            engine="parallel",
            parallel=CONFIGS[f"parallel-thread[{WORKERS}]"]["parallel"],
            optimize=False,
        ),
        rounds=1,
        iterations=1,
    )
