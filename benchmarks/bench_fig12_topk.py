"""Figure 12(a)-(c): probabilistic top-k queries vs full o-sharing.

The paper evaluates the top-k algorithm on Q4 (Excel), Q7 (Noris) and Q10
(Paragon) for k between 1 and 20.  Observations: for small k the top-k
algorithm clearly beats computing all probabilities with o-sharing, and the
advantage shrinks as k approaches the number of distinct answers (for Q10 the
two coincide at k≈10 because the query has no more than 10 distinct answers).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentSeries, point_from_result
from repro.bench.reporting import render_experiment
from repro.core import evaluate, evaluate_top_k
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import PAPER_QUERIES

K_VALUES = (1, 5, 10, 15, 20)
BENCH_H = 60
SCALE = 0.03
PANELS = {"a": "Q4", "b": "Q7", "c": "Q10"}


def _build_panel(query_id: str) -> ExperimentSeries:
    spec = PAPER_QUERIES[query_id]
    scenario = build_scenario(target=spec.target, h=BENCH_H, scale=SCALE, seed=7)
    query = spec.build(scenario.target_schema)
    series = ExperimentSeries(
        title=f"Figure 12: top-k vs o-sharing ({query_id})", x_label="k"
    )
    import time

    started = time.perf_counter()
    exact = evaluate(
        query,
        scenario.mappings,
        scenario.database,
        method="o-sharing",
        links=scenario.links,
        optimize=False,  # paper-faithful: the paper has no cost-based optimizer
    )
    exact_seconds = time.perf_counter() - started
    for k in K_VALUES:
        started = time.perf_counter()
        topk = evaluate_top_k(
            query,
            scenario.mappings,
            scenario.database,
            k=k,
            links=scenario.links,
            optimize=False,  # paper-faithful: the paper has no cost-based optimizer
        )
        elapsed = time.perf_counter() - started
        series.add(point_from_result(topk, method="top-k", x=k, seconds=elapsed))
        series.add(point_from_result(exact, method="o-sharing", x=k, seconds=exact_seconds))
    return series


def _report(panel: str, series: ExperimentSeries, report_writer) -> None:
    query_id = PANELS[panel]
    text = render_experiment(
        f"Figure 12({panel}): top-k vs o-sharing ({query_id})",
        series,
        metrics=("seconds", "source_operators"),
        notes=f"k swept over {K_VALUES}; h={BENCH_H}, scale={SCALE}",
    )
    report_writer(f"fig12{panel}_topk_{query_id.lower()}", text)


def _assert_shape(series: ExperimentSeries) -> None:
    # The top-k algorithm never executes more source operators than the exact
    # o-sharing evaluation, and for k=1 it executes no more than for k=20.
    for k in K_VALUES:
        assert series.value("top-k", k, "source_operators") <= series.value(
            "o-sharing", k, "source_operators"
        )
    assert series.value("top-k", 1, "source_operators") <= series.value(
        "top-k", max(K_VALUES), "source_operators"
    )


def test_fig12a_topk_q4(benchmark, report_writer):
    series = benchmark.pedantic(_build_panel, args=("Q4",), rounds=1, iterations=1)
    _report("a", series, report_writer)
    _assert_shape(series)


def test_fig12b_topk_q7(benchmark, report_writer):
    series = benchmark.pedantic(_build_panel, args=("Q7",), rounds=1, iterations=1)
    _report("b", series, report_writer)
    _assert_shape(series)


def test_fig12c_topk_q10(benchmark, report_writer):
    series = benchmark.pedantic(_build_panel, args=("Q10",), rounds=1, iterations=1)
    _report("c", series, report_writer)
    _assert_shape(series)
