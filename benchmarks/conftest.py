"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
section.  The paper ran on a 100 MB TPC-H instance with 100-500 possible
mappings and a C++ engine; the benchmarks run the same experiments on a
smaller instance (see ``repro.bench.harness.mb_to_scale``) so that the whole
suite finishes in minutes on a laptop while preserving the *relative*
behaviour the figures show.  EXPERIMENTS.md records the calibration and the
paper-versus-measured comparison for every experiment.

Reports are printed to stdout and written to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datagen.scenario import MatchingScenario, build_scenario

#: Number of possible mappings used by the figure-11/12 benchmarks.
BENCH_H = 60
#: Generator scale used by the figure-11/12 benchmarks (the "40 MB" point of
#: the calibrated size axis).
BENCH_SCALE = 0.03
#: Smaller setting used wherever the *basic* evaluator is involved
#: (figures 10(a)-(c)); basic is deliberately the slowest algorithm.
BASIC_H = 30
BASIC_SCALE = 0.02

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def excel_bench() -> MatchingScenario:
    """The default benchmark scenario (Excel target, like the paper)."""
    return build_scenario(target="Excel", h=BENCH_H, scale=BENCH_SCALE, seed=7)


@pytest.fixture(scope="session")
def noris_bench() -> MatchingScenario:
    return build_scenario(target="Noris", h=BENCH_H, scale=BENCH_SCALE, seed=7)


@pytest.fixture(scope="session")
def paragon_bench() -> MatchingScenario:
    return build_scenario(target="Paragon", h=BENCH_H, scale=BENCH_SCALE, seed=7)


@pytest.fixture(scope="session")
def bench_scenarios(excel_bench, noris_bench, paragon_bench) -> dict[str, MatchingScenario]:
    return {"Excel": excel_bench, "Noris": noris_bench, "Paragon": paragon_bench}


@pytest.fixture(scope="session")
def small_excel_bench() -> MatchingScenario:
    """Smaller scenario used by the experiments that include *basic*."""
    return build_scenario(target="Excel", h=BASIC_H, scale=BASIC_SCALE, seed=7)


@pytest.fixture(scope="session")
def report_writer():
    """Print an experiment report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text, encoding="utf-8")
        print(f"\n{text}")
        return path

    return write
