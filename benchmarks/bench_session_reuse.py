"""Session reuse: one warm session vs N cold one-shot calls.

The serving scenario the session-first API exists for: the same 20-query
workload (5 distinct Table III queries, repeated as real traffic repeats
them) arrives again and again.  Cold one-shot calls pay the full price every
time — reformulation, clustering, planning, execution.  A warm
:class:`repro.Session` keeps the plan cache, statistics catalog and
optimizer memo between workloads, so the repeat pass is answered from shared
materializations.

CI gates (operator counts are deterministic; wall-clock is reported but not
gated — this may run on a 1-core container):

* the warm session's repeat pass reports plan-cache hits;
* across both passes the warm session executes **strictly fewer** source
  operators than the same two workloads served cold;
* answers are byte-identical, pass for pass.

Emits ``BENCH_session_reuse.json`` at the repo root with operator counts and
wall-clock per series.
"""

from __future__ import annotations

from repro import ExecutionPolicy, Session
from repro.bench.reporting import format_table
from repro.core import evaluate_many
from repro.obs import write_bench_artifact
from repro.workloads.queries import PAPER_QUERIES

#: Each Excel query of Table III, repeated as serving traffic would repeat it.
WORKLOAD_QUERY_IDS = ["Q1", "Q2", "Q3", "Q4", "Q5"] * 4


def _build_workload(scenario):
    return [
        PAPER_QUERIES[qid].build(scenario.target_schema) for qid in WORKLOAD_QUERY_IDS
    ]


def _run_cold(queries, scenario, passes):
    """The one-shot regime: every workload rebuilds all cross-query state."""
    return [
        evaluate_many(
            queries, scenario.mappings, scenario.database, links=scenario.links
        )
        for _ in range(passes)
    ]


def _run_warm(queries, scenario, passes):
    """The session regime: one plan cache / optimizer memo across passes."""
    with Session(
        scenario.database,
        scenario.mappings,
        links=scenario.links,
        policy=ExecutionPolicy(method="batch"),
    ) as session:
        batches = [session.query_many(queries) for _ in range(passes)]
        snapshot = session.stats.snapshot()
    return batches, snapshot


def test_session_reuse(benchmark, small_excel_bench, report_writer):
    scenario = small_excel_bench
    queries = _build_workload(scenario)
    assert len(queries) == 20
    passes = 2

    cold = benchmark.pedantic(
        _run_cold, args=(queries, scenario, passes), rounds=1, iterations=1
    )
    warm, session_snapshot = _run_warm(queries, scenario, passes)

    rows = []
    for number, (cold_batch, warm_batch) in enumerate(zip(cold, warm), start=1):
        rows.append(
            [
                f"pass {number}",
                round(cold_batch.total_seconds, 4),
                cold_batch.source_operators,
                round(warm_batch.total_seconds, 4),
                warm_batch.source_operators,
                warm_batch.stats.plan_cache_hits,
            ]
        )
    cold_ops = sum(batch.source_operators for batch in cold)
    warm_ops = sum(batch.source_operators for batch in warm)
    cold_seconds = sum(batch.total_seconds for batch in cold)
    warm_seconds = sum(batch.total_seconds for batch in warm)
    rows.append(
        [
            "total",
            round(cold_seconds, 4),
            cold_ops,
            round(warm_seconds, 4),
            warm_ops,
            sum(batch.stats.plan_cache_hits for batch in warm),
        ]
    )

    text = (
        f"== Session reuse ({len(queries)}-query workload x {passes} passes) ==\n\n"
        + format_table(
            [
                "pass",
                "cold [s]",
                "cold ops",
                "warm [s]",
                "warm ops",
                "warm cache hits",
            ],
            rows,
        )
        + "\n\nsession: "
        + ", ".join(
            f"{key}={value}"
            for key, value in session_snapshot.items()
            if key not in ("plan_cache", "seconds")
        )
        + "\n(wall-clock reported, not gated: operator counts are the "
        "deterministic metric on 1-core CI)\n"
    )
    report_writer("session_reuse", text)

    payload = {
        "workload": {"queries": len(queries), "passes": passes},
        "series": {
            "cold": {
                "passes": [
                    {
                        "seconds": batch.total_seconds,
                        "source_operators": batch.source_operators,
                    }
                    for batch in cold
                ],
                "total_source_operators": cold_ops,
                "total_seconds": cold_seconds,
            },
            "warm": {
                "passes": [
                    {
                        "seconds": batch.total_seconds,
                        "source_operators": batch.source_operators,
                        "plan_cache_hits": batch.stats.plan_cache_hits,
                    }
                    for batch in warm
                ],
                "total_source_operators": warm_ops,
                "total_seconds": warm_seconds,
            },
        },
        "session": session_snapshot,
        "gates": {
            "warm_repeat_pass_hits_cache": warm[-1].stats.plan_cache_hits > 0,
            "warm_ops_strictly_fewer_than_cold": warm_ops < cold_ops,
        },
    }
    write_bench_artifact("session_reuse", payload)

    # Answers are byte-identical in every pass.
    for cold_batch, warm_batch in zip(cold, warm):
        for one, two in zip(cold_batch.results, warm_batch.results):
            assert dict(one.answers.items()) == dict(two.answers.items())
            assert one.answers.empty_probability == two.answers.empty_probability
    # The warm repeat pass is served from the session plan cache...
    assert warm[-1].stats.plan_cache_hits > 0
    assert warm[-1].source_operators < warm[0].source_operators
    # ...and the warm session executes strictly fewer source operators than
    # the same workloads served cold (the cold passes each pay full price).
    assert warm_ops < cold_ops
