"""Cost-based optimizer on/off: Figure 11(d) selections and 11(e) products.

Reruns the two operator-count sweeps of the paper's evaluation with the
cost-based optimizer enabled (the default) and disabled, for every Figure-11
method.  The assertions double as the CI regression gate: on the Figure 11(e)
products sweep the optimized run must never execute more source operators or
scan more rows than the unoptimized run, and answers must stay identical.

The measured speedups are written to ``benchmarks/results/optimizer_speedup.txt``.
"""

from __future__ import annotations

from repro.bench.harness import (
    DEFAULT_METHODS,
    ExperimentSeries,
    run_optimizer_modes,
    write_series_artifact,
)
from repro.bench.reporting import render_experiment
from repro.datagen.scenario import build_scenario
from repro.workloads.generators import product_query, selection_query

SELECTION_COUNTS = (1, 2, 3, 4, 5)
PRODUCT_COUNTS = (1, 2, 3)
SELECTIONS_H = 60
SELECTIONS_SCALE = 0.03
PRODUCTS_H = 40
PRODUCTS_SCALE = 0.02


def _selection_series() -> ExperimentSeries:
    scenario = build_scenario(
        target="Excel", h=SELECTIONS_H, scale=SELECTIONS_SCALE, seed=7
    )
    series = ExperimentSeries(
        title="Figure 11(d) with/without the cost-based optimizer",
        x_label="selection operators",
    )
    for count in SELECTION_COUNTS:
        query = selection_query(count, scenario.target_schema)
        for point in run_optimizer_modes(DEFAULT_METHODS, query, scenario, x=count):
            series.add(point)
    return series


def _product_series() -> ExperimentSeries:
    scenario = build_scenario(
        target="Excel", h=PRODUCTS_H, scale=PRODUCTS_SCALE, seed=7
    )
    series = ExperimentSeries(
        title="Figure 11(e) with/without the cost-based optimizer",
        x_label="Cartesian products",
    )
    for count in PRODUCT_COUNTS:
        query = product_query(count, scenario.target_schema)
        for point in run_optimizer_modes(DEFAULT_METHODS, query, scenario, x=count):
            series.add(point)
    return series


def _speedup_lines(series: ExperimentSeries, counts, label: str) -> list[str]:
    lines = [f"{label}:"]
    for method in DEFAULT_METHODS:
        for count in counts:
            raw_s = series.value(f"{method}@raw", count, "seconds")
            opt_s = series.value(f"{method}@opt", count, "seconds")
            raw_ops = series.value(f"{method}@raw", count, "source_operators")
            opt_ops = series.value(f"{method}@opt", count, "source_operators")
            speedup = raw_s / opt_s if opt_s else float("inf")
            lines.append(
                f"  {method:<10} x={count}: {raw_s:.3f}s -> {opt_s:.3f}s "
                f"({speedup:.2f}x), operators {raw_ops} -> {opt_ops}"
            )
    return lines


def test_optimizer_fig11d_selections(benchmark, report_writer):
    series = benchmark.pedantic(_selection_series, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 11(d) selections sweep: optimizer on (@opt) vs off (@raw)",
        series,
        metrics=("seconds", "source_operators"),
        notes=f"h={SELECTIONS_H}, scale={SELECTIONS_SCALE}",
    )
    text += "\n" + "\n".join(
        _speedup_lines(series, SELECTION_COUNTS, "fig11d selections speedup")
    )
    report_writer("optimizer_fig11d", text)

    # The optimizer must never execute more operators or scan more rows.
    for method in DEFAULT_METHODS:
        for count in SELECTION_COUNTS:
            opt_ops = series.value(f"{method}@opt", count, "source_operators")
            raw_ops = series.value(f"{method}@raw", count, "source_operators")
            assert opt_ops <= raw_ops, (method, count)
            assert series.value(
                f"{method}@opt", count, "rows_scanned"
            ) <= series.value(f"{method}@raw", count, "rows_scanned"), (method, count)
    # For the whole-query evaluators, five stacked selections must collapse
    # into strictly fewer executed operators (o-sharing executes operator by
    # operator, so its tiny per-operator plans leave nothing to collapse).
    for method in ("e-basic", "q-sharing"):
        assert series.value(f"{method}@opt", 5, "source_operators") < series.value(
            f"{method}@raw", 5, "source_operators"
        ), method
    # Answers are identical either way.
    for method in DEFAULT_METHODS:
        for count in SELECTION_COUNTS:
            assert series.value(f"{method}@opt", count, "answers") == series.value(
                f"{method}@raw", count, "answers"
            )

    write_series_artifact(
        "optimizer_fig11d",
        series,
        gates={
            "optimized_never_more_operators": True,
            "optimized_never_more_rows_scanned": True,
            "answers_identical": True,
        },
        workload={"h": SELECTIONS_H, "scale": SELECTIONS_SCALE, "counts": SELECTION_COUNTS},
    )


def test_optimizer_fig11e_products(benchmark, report_writer):
    series = benchmark.pedantic(_product_series, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 11(e) products sweep: optimizer on (@opt) vs off (@raw)",
        series,
        metrics=("seconds", "source_operators"),
        notes=f"h={PRODUCTS_H}, scale={PRODUCTS_SCALE}",
    )
    text += "\n" + "\n".join(
        _speedup_lines(series, PRODUCT_COUNTS, "fig11e products speedup")
    )
    report_writer("optimizer_fig11e", text)

    # CI gate: the optimized plans must never execute more operators or scan
    # more rows than the raw plans on the products sweep.
    for method in DEFAULT_METHODS:
        for count in PRODUCT_COUNTS:
            opt = series.value(f"{method}@opt", count, "source_operators")
            raw = series.value(f"{method}@raw", count, "source_operators")
            assert opt <= raw, (method, count, opt, raw)
            opt_rows = series.value(f"{method}@opt", count, "rows_scanned")
            raw_rows = series.value(f"{method}@raw", count, "rows_scanned")
            assert opt_rows <= raw_rows, (method, count, opt_rows, raw_rows)
            assert series.value(f"{method}@opt", count, "answers") == series.value(
                f"{method}@raw", count, "answers"
            )
    # And the Select+Product→Join conversion must pay off in wall-clock time
    # at the largest query for the whole-query evaluators.  The measured
    # margin is ~6x; the 1.25 slack only absorbs scheduler noise on shared
    # CI runners (the operator/row gates above stay exact).
    for method in ("e-basic", "q-sharing"):
        assert series.value(f"{method}@opt", 3) <= series.value(f"{method}@raw", 3) * 1.25

    write_series_artifact(
        "optimizer_fig11e",
        series,
        gates={
            "optimized_never_more_operators": True,
            "optimized_never_more_rows_scanned": True,
            "answers_identical": True,
            "largest_query_wallclock_slack": 1.25,
        },
        workload={"h": PRODUCTS_H, "scale": PRODUCTS_SCALE, "counts": PRODUCT_COUNTS},
    )


def test_optimizer_speedup_report(report_writer):
    """Combined speedup summary committed under benchmarks/results/."""
    selections = _selection_series()
    products = _product_series()
    lines = [
        "Cost-based optimizer: measured speedups (optimizer on vs off)",
        "=" * 62,
        "",
    ]
    lines += _speedup_lines(selections, SELECTION_COUNTS, "Figure 11(d) selections")
    lines.append("")
    lines += _speedup_lines(products, PRODUCT_COUNTS, "Figure 11(e) products")
    report_writer("optimizer_speedup", "\n".join(lines) + "\n")
