"""Ablation: o-sharing's empty-intermediate pruning (Case 2 of ``run_qt``).

When an intermediate relation of an e-unit is empty, o-sharing discards the
whole subtree of the u-trace (the answers of all its mappings are empty).  The
ablation runs o-sharing with and without the shortcut on the selective Table
III queries and measures the executed source operators saved.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentSeries, run_method
from repro.bench.reporting import render_experiment
from repro.core import evaluate
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import PAPER_QUERIES

QUERY_IDS = ("Q1", "Q3", "Q5")
BENCH_H = 60
SCALE = 0.03


def _build_series():
    scenario = build_scenario(target="Excel", h=BENCH_H, scale=SCALE, seed=7)
    series = ExperimentSeries(title="empty-prune ablation", x_label="query")
    for query_id in QUERY_IDS:
        query = PAPER_QUERIES[query_id].build(scenario.target_schema)
        with_prune = run_method(
            "o-sharing", query, scenario, x=query_id, prune_empty=True,
            optimize=False,  # paper-faithful: the paper has no cost-based optimizer
        )
        with_prune.method = "o-sharing (prune)"
        series.add(with_prune)
        without_prune = run_method(
            "o-sharing", query, scenario, x=query_id, prune_empty=False,
            optimize=False,  # paper-faithful: the paper has no cost-based optimizer
        )
        without_prune.method = "o-sharing (no prune)"
        series.add(without_prune)
    return series


def test_ablation_empty_prune(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    text = render_experiment(
        "Ablation: o-sharing with and without empty-intermediate pruning",
        series,
        metrics=("seconds", "source_operators"),
        notes=f"h={BENCH_H}, scale={SCALE}",
    )
    report_writer("ablation_empty_prune", text)

    for query_id in QUERY_IDS:
        pruned = series.value("o-sharing (prune)", query_id, "source_operators")
        unpruned = series.value("o-sharing (no prune)", query_id, "source_operators")
        assert pruned <= unpruned

    # The pruning is purely an optimisation: answers are identical either way.
    scenario = build_scenario(target="Excel", h=20, scale=0.01, seed=7)
    query = PAPER_QUERIES["Q1"].build(scenario.target_schema)
    with_prune = evaluate(
        query, scenario.mappings, scenario.database,
        method="o-sharing", links=scenario.links, prune_empty=True,
    )
    without_prune = evaluate(
        query, scenario.mappings, scenario.database,
        method="o-sharing", links=scenario.links, prune_empty=False,
    )
    assert with_prune.answers.equals(without_prune.answers)
