"""Columnar vs row engine on a small Figure 11(b) workload (CI smoke).

The columnar batch engine is the default; this benchmark is the guard rail
behind that choice.  It runs the Figure 11(b) setting (Q4 over the Excel
scenario) scaled down to CI size, on both execution engines, and fails when

* the columnar engine is not faster than the row engine, or
* the two engines do not return *byte-identical* probabilistic answers
  (exact float equality, not just tolerance-equality — the engines execute
  the same operators in the same order, so even the float accumulation order
  must match).

``benchmarks/results/engine_columnar.txt`` records the measured table; the
full-size sweep numbers live in ``benchmarks/results/engine_speedup.txt``.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_table
from repro.core import evaluate
from repro.datagen.scenario import build_scenario
from repro.obs import write_bench_artifact
from repro.workloads.queries import PAPER_QUERIES

SMOKE_METHODS = ("e-basic", "o-sharing")
#: this benchmark isolates the row-vs-columnar difference; the parallel
#: engine has its own guard rail in bench_engine_parallel.py.
ENGINES = ("row", "columnar")
SMOKE_H = 30
SMOKE_SCALE = 0.02
ROUNDS = 3


def _measure(method, engine, query, scenario):
    best, result = None, None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        # optimize=False: this benchmark isolates the *engine* difference, so
        # both engines must execute the reformulated plans verbatim — with the
        # cost-based optimizer on, the Cartesian-product work that separates
        # the engines is largely optimized away and the comparison drowns in
        # noise at CI scale (the optimizer has its own guard rail in
        # bench_optimizer.py).
        result = evaluate(
            query,
            scenario.mappings,
            scenario.database,
            method=method,
            links=scenario.links,
            engine=engine,
            optimize=False,
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_columnar_engine_beats_row_engine(benchmark, report_writer):
    scenario = build_scenario(target="Excel", h=SMOKE_H, scale=SMOKE_SCALE, seed=7)
    query = PAPER_QUERIES["Q4"].build(scenario.target_schema)

    rows = []
    for method in SMOKE_METHODS:
        timings = {}
        results = {}
        for engine in ENGINES:
            timings[engine], results[engine] = _measure(method, engine, query, scenario)

        # Byte-identical answers: same tuples, exactly the same floats.
        assert dict(results["row"].answers.items()) == dict(
            results["columnar"].answers.items()
        ), f"{method}: engines disagree on answer probabilities"
        assert (
            results["row"].answers.empty_probability
            == results["columnar"].answers.empty_probability
        )
        # Identical work accounting on both engines.
        assert (
            results["row"].stats.snapshot()["operators"]
            == results["columnar"].stats.snapshot()["operators"]
        )
        assert results["row"].stats.rows_scanned == results["columnar"].stats.rows_scanned
        assert results["row"].stats.rows_output == results["columnar"].stats.rows_output

        speedup = timings["row"] / timings["columnar"]
        rows.append([method, timings["row"], timings["columnar"], speedup])
        assert timings["columnar"] < timings["row"], (
            f"{method}: columnar engine ({timings['columnar']:.3f}s) is not faster "
            f"than the row engine ({timings['row']:.3f}s)"
        )

    table = format_table(
        ["method", "row [s]", "columnar [s]", "speedup"],
        [[m, f"{r:.3f}", f"{c:.3f}", f"{s:.2f}x"] for m, r, c, s in rows],
    )
    report_writer(
        "engine_columnar",
        "== Columnar vs row engine (Q4, Excel, CI smoke) ==\n\n"
        f"h={SMOKE_H}, scale={SMOKE_SCALE}, best of {ROUNDS} rounds\n\n" + table + "\n",
    )

    write_bench_artifact(
        "engine_columnar",
        {
            "workload": {
                "query": "Q4",
                "target": "Excel",
                "h": SMOKE_H,
                "scale": SMOKE_SCALE,
                "rounds": ROUNDS,
                "optimize": False,
            },
            "series": [
                {
                    "method": method,
                    "row_seconds": row_s,
                    "columnar_seconds": col_s,
                    "speedup": speedup,
                }
                for method, row_s, col_s, speedup in rows
            ],
            "gates": {
                "columnar_faster_than_row": True,
                "answers_byte_identical": True,
                "operator_counts_identical": True,
            },
        },
    )

    # One pedantic round through pytest-benchmark for the timing artefact.
    benchmark.pedantic(
        lambda: evaluate(
            query,
            scenario.mappings,
            scenario.database,
            method="e-basic",
            links=scenario.links,
            engine="columnar",
        ),
        rounds=1,
        iterations=1,
    )
