"""Figure 10(b): basic / e-basic / e-MQO vs database size.

The paper's observations on its default query Q4: both e-basic and e-MQO beat
basic at every database size, e-basic beats e-MQO (the optimal-plan search is
expensive), and all three grow with the database size.  The x-axis labels are
the paper's 20-100 MB; the instance is generated at the calibrated scale (see
``repro.bench.harness.mb_to_scale`` and EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.bench.harness import SIMPLE_METHODS, sweep_database_size
from repro.bench.reporting import render_experiment
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import PAPER_QUERIES

PAPER_MBS = (20, 40, 60, 80, 100)
BASIC_H = 24
#: The paper's 100 MB instance maps to this generator scale for this sweep.
CALIBRATION = 0.04


def _build_series():
    scenario = build_scenario(target="Excel", h=BASIC_H, scale=CALIBRATION, seed=7)
    return sweep_database_size(
        SIMPLE_METHODS,
        lambda sized: PAPER_QUERIES["Q4"].build(sized.target_schema),
        scenario,
        PAPER_MBS,
        calibration=CALIBRATION,
        title="Figure 10(b): simple solutions vs database size (Q4)",
        optimize=False,  # paper-faithful: the paper has no cost-based optimizer
    )


def test_fig10b_simple_solutions_vs_database_size(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 10(b): basic / e-basic / e-MQO vs database size (Q4)",
        series,
        metrics=("seconds", "source_operators"),
        notes=f"x-axis: paper MB labels; calibration scale {CALIBRATION} per 100 MB; h={BASIC_H}",
    )
    report_writer("fig10b_simple_dbsize", text)

    largest = max(series.x_values())
    basic_time = series.value("basic", largest)
    ebasic_time = series.value("e-basic", largest)
    # e-basic clearly outperforms basic at the largest size (paper's headline).
    assert ebasic_time < basic_time
    # Both enhanced methods execute far fewer source operators than basic.
    assert series.value("e-basic", largest, "source_operators") < series.value(
        "basic", largest, "source_operators"
    )
    assert series.value("e-mqo", largest, "source_operators") <= series.value(
        "e-basic", largest, "source_operators"
    )
    # Cost grows with the database size for basic.
    assert series.value("basic", largest) >= series.value("basic", min(series.x_values()))
