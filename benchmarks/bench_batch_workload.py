"""Batch serving workload: ``evaluate_many`` vs N independent evaluations.

This is the Figure 11(a) scenario pushed to serving scale: a workload of
target queries (with repetition, as real traffic has) over one mapping set
and one source instance.  The batch engine amortises reformulation and
clustering across repeated queries, builds one global shared-subexpression
plan for the whole workload, and serves every query through a single bounded
plan cache — so the total number of executed source operators (and the
wall-clock time) drops well below running the best per-query algorithm
independently.
"""

from __future__ import annotations

from repro.core import evaluate, evaluate_many
from repro.bench.reporting import format_table
from repro.workloads.queries import PAPER_QUERIES

#: Each Excel query of Table III, repeated as serving traffic would repeat it.
WORKLOAD_QUERY_IDS = ["Q1", "Q2", "Q3", "Q4", "Q5"] * 4


def _build_workload(scenario):
    return [
        PAPER_QUERIES[qid].build(scenario.target_schema) for qid in WORKLOAD_QUERY_IDS
    ]


def _run_independent(queries, scenario):
    return [
        evaluate(
            query,
            scenario.mappings,
            scenario.database,
            method="e-mqo",
            links=scenario.links,
        )
        for query in queries
    ]


def _run_batch(queries, scenario):
    return evaluate_many(
        queries, scenario.mappings, scenario.database, links=scenario.links
    )


def test_batch_workload(benchmark, small_excel_bench, report_writer):
    scenario = small_excel_bench
    queries = _build_workload(scenario)
    assert len(queries) >= 20

    independent = benchmark.pedantic(
        _run_independent, args=(queries, scenario), rounds=1, iterations=1
    )
    batch = _run_batch(queries, scenario)

    independent_ops = sum(result.stats.source_operators for result in independent)
    independent_seconds = sum(result.elapsed_seconds for result in independent)
    rows = [
        ["independent e-mqo", round(independent_seconds, 4), independent_ops, "-"],
        [
            "evaluate_many",
            round(batch.total_seconds, 4),
            batch.source_operators,
            batch.plan_cache["hits"],
        ],
    ]
    text = (
        f"== Batch serving workload ({len(queries)} queries, "
        f"{batch.details['distinct_target_queries']} distinct) ==\n\n"
        + format_table(["method", "time [s]", "# source operators", "cache hits"], rows)
        + "\n\nplan cache: "
        + ", ".join(f"{k}={v}" for k, v in batch.plan_cache.items())
        + f"\noperators saved: {batch.stats.operators_saved}\n"
    )
    report_writer("batch_workload", text)

    # Answers are identical to per-query evaluation.
    for single, shared in zip(independent, batch.results):
        assert single.answers.equals(shared.answers)
    # The batch engine executes strictly fewer source operators...
    assert batch.source_operators < independent_ops
    # ...amortises reformulation across repeated queries...
    assert batch.stats.reformulations < sum(r.stats.reformulations for r in independent)
    # ...and is faster end to end (it skips ~3/4 of all execution outright).
    assert batch.total_seconds < independent_seconds
