"""Figure 10(a): time breakdown of the *basic* evaluator per query.

The paper splits basic's running time into query evaluation and answer
aggregation and observes that evaluation dominates (more than 80% for every
query at the paper's scale).  The reproduction runs basic on all ten Table III
queries and reports the same breakdown from the evaluator's phase timers; at
the benchmark's much smaller scale the qualitative shape — evaluation is the
dominant phase and aggregation is negligible — is what is checked.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core import evaluate
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import PAPER_QUERIES

#: basic is the slowest evaluator, so this experiment uses a reduced setting.
BASIC_H = 30
BASIC_SCALE = 0.02


def _run_breakdown():
    scenarios = {
        name: build_scenario(target=name, h=BASIC_H, scale=BASIC_SCALE, seed=7)
        for name in ("Excel", "Noris", "Paragon")
    }
    rows = []
    for spec in PAPER_QUERIES.values():
        scenario = scenarios[spec.target]
        query = spec.build(scenario.target_schema)
        result = evaluate(
            query,
            scenario.mappings,
            scenario.database,
            method="basic",
            links=scenario.links,
            optimize=False,  # paper-faithful: the paper has no cost-based optimizer
        )
        phases = result.stats.phase_seconds
        evaluation = phases.get("evaluation", 0.0)
        aggregation = phases.get("aggregation", 0.0)
        rewriting = phases.get("rewriting", 0.0)
        total = evaluation + aggregation + rewriting
        rows.append(
            [
                spec.query_id,
                round(evaluation, 4),
                round(aggregation, 4),
                round(rewriting, 4),
                round(evaluation / total if total else 0.0, 3),
            ]
        )
    return rows


def test_fig10a_basic_breakdown(benchmark, report_writer):
    rows = benchmark.pedantic(_run_breakdown, rounds=1, iterations=1)
    text = (
        "== Figure 10(a): basic — evaluation vs aggregation time per query ==\n\n"
        + format_table(
            ["query", "evaluation [s]", "aggregation [s]", "rewriting [s]", "evaluation share"],
            rows,
        )
    )
    report_writer("fig10a_basic_breakdown", text)

    # Paper's observation: query evaluation dominates basic's cost; answer
    # aggregation is negligible for every query.
    for _, evaluation, aggregation, _, _ in rows:
        assert evaluation >= aggregation
    shares = [row[4] for row in rows]
    assert sum(shares) / len(shares) > 0.5
