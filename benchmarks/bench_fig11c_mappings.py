"""Figure 11(c): e-basic / q-sharing / o-sharing vs the number of mappings (Q4).

The paper's observations: e-basic and q-sharing are sensitive to the mapping
count (more mappings → more distinct source queries), while o-sharing grows
the slowest because operator-level sharing absorbs most of the extra mappings.
"""

from __future__ import annotations

from repro.bench.harness import DEFAULT_METHODS, sweep_mapping_count
from repro.bench.reporting import render_experiment
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import PAPER_QUERIES

H_VALUES = (10, 20, 40, 60, 80)
SCALE = 0.03


def _build_series():
    scenario = build_scenario(target="Excel", h=max(H_VALUES), scale=SCALE, seed=7)
    query = PAPER_QUERIES["Q4"].build(scenario.target_schema)
    return sweep_mapping_count(
        DEFAULT_METHODS,
        query,
        scenario,
        H_VALUES,
        title="Figure 11(c): sharing evaluators vs number of mappings (Q4)",
        optimize=False,  # paper-faithful: the paper has no cost-based optimizer
    )


def test_fig11c_sharing_vs_mappings(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 11(c): e-basic / q-sharing / o-sharing vs number of mappings (Q4)",
        series,
        metrics=("seconds", "source_operators", "reformulations"),
        notes=f"paper sweeps 100-500 mappings; reproduction sweeps {H_VALUES} at scale {SCALE}",
    )
    report_writer("fig11c_mappings", text)

    smallest, largest = min(series.x_values()), max(series.x_values())
    # e-basic's rewriting effort grows linearly with h; q-sharing's does not.
    assert series.value("e-basic", largest, "reformulations") == largest
    assert series.value("q-sharing", largest, "reformulations") <= series.value(
        "e-basic", largest, "reformulations"
    )
    # o-sharing executes no more source operators than e-basic at every h.
    for h in series.x_values():
        assert series.value("o-sharing", h, "source_operators") <= series.value(
            "e-basic", h, "source_operators"
        )
    # Relative growth: o-sharing's operator count grows no faster than e-basic's.
    def growth(method):
        return series.value(method, largest, "source_operators") / max(
            series.value(method, smallest, "source_operators"), 1
        )

    assert growth("o-sharing") <= growth("e-basic") * 1.2
