"""Figure 11(b): e-basic / q-sharing / o-sharing vs database size (Q4).

The paper's observations: all three grow with the database size, o-sharing is
the fastest and grows the slowest, q-sharing sits between o-sharing and
e-basic.
"""

from __future__ import annotations

from repro.bench.harness import DEFAULT_METHODS, sweep_database_size
from repro.bench.reporting import render_experiment
from repro.datagen.scenario import build_scenario
from repro.workloads.queries import PAPER_QUERIES

PAPER_MBS = (20, 40, 60, 80, 100)
BENCH_H = 60
CALIBRATION = 0.03


def _build_series():
    scenario = build_scenario(target="Excel", h=BENCH_H, scale=CALIBRATION, seed=7)
    return sweep_database_size(
        DEFAULT_METHODS,
        lambda sized: PAPER_QUERIES["Q4"].build(sized.target_schema),
        scenario,
        PAPER_MBS,
        calibration=CALIBRATION,
        title="Figure 11(b): sharing evaluators vs database size (Q4)",
        optimize=False,  # paper-faithful: the paper has no cost-based optimizer
    )


def test_fig11b_sharing_vs_database_size(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 11(b): e-basic / q-sharing / o-sharing vs database size (Q4)",
        series,
        metrics=("seconds", "source_operators"),
        notes=f"x-axis: paper MB labels; calibration scale {CALIBRATION} per 100 MB; h={BENCH_H}",
    )
    report_writer("fig11b_dbsize", text)

    smallest, largest = min(series.x_values()), max(series.x_values())
    # Work grows with the database size for every method.  Gate on the
    # deterministic row counter rather than wall-clock time: the tight
    # time-based bound this replaced (largest >= smallest * 0.5) was flaky
    # on busy machines, where one noisy smallest-size measurement could
    # exceed half of the largest-size one.
    for method in DEFAULT_METHODS:
        assert series.value(method, largest, "source_operators") >= series.value(
            method, smallest, "source_operators"
        )
        assert (
            series.value(method, largest, "rows_scanned")
            > series.value(method, smallest, "rows_scanned")
        ), f"{method}: scanned rows did not grow with the database size"
    # o-sharing needs no more executed operators than e-basic at every size.
    for size in series.x_values():
        assert series.value("o-sharing", size, "source_operators") <= series.value(
            "e-basic", size, "source_operators"
        )
    # And it does not lose badly on time at the largest size (a generous 2x
    # multiplier — the sharp claim is the operator-count gate above; the
    # wall clock only guards against pathological regressions).
    assert series.value("o-sharing", largest) <= series.value("e-basic", largest) * 2.0
