"""Figure 11(e): evaluators vs the number of Cartesian product operators.

The paper's observations: queries with more self-joins produce more target
attributes and therefore more distinct source queries; from two products
onward o-sharing wins clearly because the product inputs are shared between
mapping partitions.
"""

from __future__ import annotations

from repro.bench.harness import DEFAULT_METHODS, ExperimentSeries, run_methods
from repro.bench.reporting import render_experiment
from repro.datagen.scenario import build_scenario
from repro.workloads.generators import product_query

PRODUCT_COUNTS = (1, 2, 3)
BENCH_H = 40
SCALE = 0.02


def _build_series():
    scenario = build_scenario(target="Excel", h=BENCH_H, scale=SCALE, seed=7)
    series = ExperimentSeries(
        title="Figure 11(e): time vs number of Cartesian products",
        x_label="Cartesian products",
    )
    for count in PRODUCT_COUNTS:
        query = product_query(count, scenario.target_schema)
        for point in run_methods(
            DEFAULT_METHODS,
            query,
            scenario,
            x=count,
            optimize=False,  # paper-faithful: the paper has no cost-based optimizer
        ):
            series.add(point)
    return series


def test_fig11e_product_operators(benchmark, report_writer):
    series = benchmark.pedantic(_build_series, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 11(e): e-basic / q-sharing / o-sharing vs number of Cartesian products",
        series,
        metrics=("seconds", "source_operators"),
        notes=f"self-joins of PO; h={BENCH_H}, scale={SCALE}",
    )
    report_writer("fig11e_products", text)

    # Queries with more products are more expensive for every method.
    for method in DEFAULT_METHODS:
        assert series.value(method, 3) >= series.value(method, 1) * 0.5
    # o-sharing executes no more source operators than e-basic at 2+ products.
    for count in PRODUCT_COUNTS[1:]:
        assert series.value("o-sharing", count, "source_operators") <= series.value(
            "e-basic", count, "source_operators"
        )
    # And it is not slower than e-basic at the largest query.
    assert series.value("o-sharing", 3) <= series.value("e-basic", 3) * 1.15
