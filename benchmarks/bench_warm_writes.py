"""Warm sessions under writes: delta maintenance vs cold recomputation.

The serving scenario the delta machinery exists for: a session keeps
answering a repeated probe workload while rows keep arriving.  Cold one-shot
calls pay the full price after every write; a warm :class:`repro.Session`
absorbs append deltas into its plan cache, hash indexes, shard layouts and
statistics, re-executing only what the write actually invalidated.

CI gates (operator counts are deterministic; wall-clock is reported but not
gated — this may run on a 1-core container):

* the warm session absorbing K interleaved appends executes **strictly
  fewer** source operators than the same K+1 workload evaluations served
  cold;
* a write to one relation does **not** evict warm entries that never read
  it — the unrelated probe repeats at the exact operator cost of a warm
  repeat without any write;
* answers stay byte-identical to the cold full-recompute reference after
  every write.

Emits ``BENCH_warm_writes.json`` at the repo root with operator counts and
wall-clock per series.
"""

from __future__ import annotations

import time

from repro import ExecutionPolicy, Session
from repro.bench.reporting import format_table
from repro.core import evaluate
from repro.core.target_query import TargetQuery
from repro.datagen.paper_example import build_paper_example
from repro.relational.algebra import Project, Scan
from repro.obs import write_bench_artifact
from repro.relational.expressions import col

#: Interleaved appends absorbed by the warm session (one row each).
K_WRITES = 6


def _appended_row(i: int) -> tuple:
    """A Customer row (cid, cname, ophone, hphone, mobile, oaddr, haddr, nid)."""
    return (100 + i, f"W{i}", "123", "789", "555", f"w{i}", "hk", 1)


def _probes(example):
    """The repeated probe workload (monotone plans over Customer)."""
    return [example.q0(), example.q_phone_by_addr()]


def _order_probe(example) -> TargetQuery:
    """A probe whose reformulations read only C_Order (never Customer)."""
    plan = Project(Scan("Order"), [col("total")])
    return TargetQuery(plan, example.target_schema, name="q-order-total")


def _run_cold(probes):
    """The one-shot regime: every checkpoint recomputes from scratch."""
    passes = []
    answers = []
    for k in range(K_WRITES + 1):
        replay = build_paper_example()
        replay.database.relation("Customer").append_rows(
            [_appended_row(i) for i in range(k)]
        )
        started = time.perf_counter()
        operators = 0
        checkpoint = []
        for probe in probes:
            result = evaluate(
                probe, replay.mappings, replay.database,
                method="e-mqo", links=replay.links,
            )
            operators += result.stats.source_operators
            checkpoint.append(dict(result.answers.items()))
        passes.append(
            {
                "writes_absorbed": k,
                "source_operators": operators,
                "seconds": time.perf_counter() - started,
            }
        )
        answers.append(checkpoint)
    return passes, answers


def _run_warm(probes):
    """The session regime: one warm session absorbs the appends in place."""
    example = build_paper_example()
    passes = []
    answers = []
    with Session(
        example.database,
        example.mappings,
        links=example.links,
        policy=ExecutionPolicy(method="e-mqo"),
    ) as session:
        for k in range(K_WRITES + 1):
            if k:
                example.database.append_rows("Customer", [_appended_row(k - 1)])
            before = session.stats.totals.source_operators
            started = time.perf_counter()
            checkpoint = [dict(session.query(probe).answers.items()) for probe in probes]
            passes.append(
                {
                    "writes_absorbed": k,
                    "source_operators": session.stats.totals.source_operators - before,
                    "seconds": time.perf_counter() - started,
                }
            )
            answers.append(checkpoint)
        snapshot = session.stats.snapshot()
    return passes, answers, snapshot


def _scoped_eviction_costs():
    """Operator cost of re-running an unrelated probe around a write.

    Returns ``(warm_repeat_cost, after_write_cost)`` for a probe that reads
    only C_Order while the write lands on Customer: equality means the write
    evicted nothing the probe depends on.
    """
    example = build_paper_example()
    probe = _order_probe(example)
    with Session(
        example.database,
        example.mappings,
        links=example.links,
        policy=ExecutionPolicy(method="e-mqo"),
    ) as session:
        session.query(probe)  # populate the cache
        base = session.stats.totals.source_operators
        session.query(probe)  # warm repeat, no writes
        warm_repeat = session.stats.totals.source_operators - base
        example.database.append_rows("Customer", [_appended_row(99)])
        mid = session.stats.totals.source_operators
        session.query(probe)  # warm repeat across an unrelated write
        after_write = session.stats.totals.source_operators - mid
    return warm_repeat, after_write


def test_warm_writes(benchmark, report_writer):
    example = build_paper_example()
    probes = _probes(example)

    cold_passes, cold_answers = benchmark.pedantic(
        _run_cold, args=(probes,), rounds=1, iterations=1
    )
    warm_passes, warm_answers, session_snapshot = _run_warm(probes)
    warm_repeat_cost, after_write_cost = _scoped_eviction_costs()

    cold_ops = sum(entry["source_operators"] for entry in cold_passes)
    warm_ops = sum(entry["source_operators"] for entry in warm_passes)
    cold_seconds = sum(entry["seconds"] for entry in cold_passes)
    warm_seconds = sum(entry["seconds"] for entry in warm_passes)

    rows = [
        [
            f"after {cold_entry['writes_absorbed']} writes",
            round(cold_entry["seconds"], 4),
            cold_entry["source_operators"],
            round(warm_entry["seconds"], 4),
            warm_entry["source_operators"],
        ]
        for cold_entry, warm_entry in zip(cold_passes, warm_passes)
    ]
    rows.append(
        ["total", round(cold_seconds, 4), cold_ops, round(warm_seconds, 4), warm_ops]
    )
    text = (
        f"== Warm session vs cold across {K_WRITES} interleaved appends "
        f"({len(probes)}-query probe workload) ==\n\n"
        + format_table(
            ["checkpoint", "cold [s]", "cold ops", "warm [s]", "warm ops"], rows
        )
        + "\n\nsession: "
        + ", ".join(
            f"{key}={session_snapshot[key]}"
            for key in (
                "entries_patched",
                "entries_invalidated",
                "stats_refreshed_incrementally",
                "operators_saved",
            )
        )
        + f"\nscoped eviction: warm repeat={warm_repeat_cost} ops, "
        f"repeat across unrelated write={after_write_cost} ops\n"
        "(wall-clock reported, not gated: operator counts are the "
        "deterministic metric on 1-core CI)\n"
    )
    report_writer("warm_writes", text)

    payload = {
        "workload": {
            "probes": [probe.name for probe in probes],
            "interleaved_appends": K_WRITES,
            "rows_per_append": 1,
        },
        "series": {
            "cold": {
                "passes": cold_passes,
                "total_source_operators": cold_ops,
                "total_seconds": cold_seconds,
            },
            "warm": {
                "passes": warm_passes,
                "total_source_operators": warm_ops,
                "total_seconds": warm_seconds,
            },
        },
        "session": {
            key: session_snapshot[key]
            for key in (
                "entries_patched",
                "entries_invalidated",
                "stats_refreshed_incrementally",
                "operators_saved",
                "plan_cache",
            )
        },
        "gates": {
            "warm_ops_strictly_fewer_than_cold": warm_ops < cold_ops,
            "unrelated_write_keeps_entries": after_write_cost == warm_repeat_cost,
        },
    }
    write_bench_artifact("warm_writes", payload)

    # Byte-identity at every checkpoint: the delta path answers exactly what
    # a cold full recompute answers, write after write.
    for cold_checkpoint, warm_checkpoint in zip(cold_answers, warm_answers):
        assert cold_checkpoint == warm_checkpoint
    # Gate: absorbing K appends warm beats K+1 cold evaluations outright.
    assert warm_ops < cold_ops
    # Gate: the session actually patched entries rather than dropping them.
    assert session_snapshot["entries_patched"] > 0
    # Gate: a write to Customer does not evict entries that only read C_Order.
    assert after_write_cost == warm_repeat_cost
