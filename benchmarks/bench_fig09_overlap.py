"""Figure 9(a): overlap (o-ratio) of the possible mappings vs their number.

The paper reports o-ratios of 79% / 68% / 72% for the TPC-H ↔ Excel / Noris /
Paragon matchings and shows that the Excel o-ratio stays in the 73-79% band as
the number of mappings grows from 100 to 500.  The reproduction sweeps a
smaller range of mapping counts (the construction cost of Murty's enumeration
grows with h) and checks the same two facts: the o-ratio is high, and it is
stable in h.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.metrics import overlap_series

#: Mapping counts swept (the paper sweeps 100-500).
H_VALUES = (10, 20, 30, 40, 50, 60)


def test_fig09_overlap(benchmark, excel_bench, bench_scenarios, report_writer):
    def build():
        return overlap_series(excel_bench.mappings, H_VALUES)

    points = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [[point.h, round(point.o_ratio, 4)] for point in points]
    per_schema = [
        [name, round(scenario.mappings.o_ratio(), 4)]
        for name, scenario in bench_scenarios.items()
    ]
    text = (
        "== Figure 9(a): o-ratio vs number of mappings (Excel) ==\n\n"
        + format_table(["mappings", "o-ratio"], rows)
        + "\n\n== o-ratio per target schema (paper: Excel 0.79, Noris 0.68, Paragon 0.72) ==\n\n"
        + format_table(["schema", "o-ratio"], per_schema)
    )
    report_writer("fig09_overlap", text)

    # Shape checks mirroring the paper's observations.
    ratios = [point.o_ratio for point in points]
    assert all(ratio > 0.5 for ratio in ratios), "mappings should overlap heavily"
    assert max(ratios) - min(ratios) < 0.25, "o-ratio should be stable in h"
    assert all(ratio > 0.5 for _, ratio in per_schema)
