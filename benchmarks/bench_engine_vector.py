"""Vector vs columnar engine on the Figure 11(b) workload (Q4, Excel).

The NumPy vector engine's acceptance gate: it runs the Figure 11(b) setting
(Q4 over the Excel scenario, e-basic, unoptimized plans — the paper has no
cost-based optimizer) over a ladder of database scales on both engines, and
fails when

* the engines do not return *byte-identical* probabilistic answers (exact
  float equality) with identical operator counts — asserted at **every**
  size, unconditionally;
* the vector engine is not at least ``SPEEDUP_GATE`` times faster than the
  columnar engine at the **largest** size (the product/select-dominated
  regime the fused ``Select(Product)`` kernel targets).

The speedup gate only runs when NumPy is importable (the module skips
otherwise — ``engine="vector"`` cannot be constructed at all without NumPy;
that degradation path is pinned by ``tests/relational/test_vector.py`` and
exercised by the CI ``tests-no-numpy`` job).

``BENCH_engine_vector.json`` at the repo root records per-size wall-clock,
speedups and operator counts.  Wall-clock numbers are hardware-dependent;
the gate compares the two engines on the same machine within the same run.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy")

from repro.bench.reporting import format_table
from repro.core import evaluate
from repro.datagen.scenario import build_scenario
from repro.obs import write_bench_artifact
from repro.workloads.queries import PAPER_QUERIES

ENGINES = ("columnar", "vector")
SMOKE_H = 30
#: database-size ladder (datagen scale factors); the gate lands on the last.
SCALES = (0.02, 0.04, 0.06)
#: best-of rounds per scale — fewer at the sizes where columnar runs for
#: tens of seconds (variance there is far below the 2x gate margin).
ROUNDS = {0.02: 3, 0.04: 2, 0.06: 1}
SPEEDUP_GATE = 2.0


def _measure(engine, query, scenario, rounds):
    best, result = None, None
    for _ in range(rounds):
        started = time.perf_counter()
        result = evaluate(
            query,
            scenario.mappings,
            scenario.database,
            method="e-basic",
            links=scenario.links,
            engine=engine,
            optimize=False,
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_vector_engine_beats_columnar(benchmark, report_writer):
    series = []
    for scale in SCALES:
        scenario = build_scenario(target="Excel", h=SMOKE_H, scale=scale, seed=7)
        query = PAPER_QUERIES["Q4"].build(scenario.target_schema)
        timings, results = {}, {}
        for engine in ENGINES:
            timings[engine], results[engine] = _measure(
                engine, query, scenario, ROUNDS[scale]
            )

        # Byte-identical answers: same tuples, exactly the same floats.
        assert dict(results["columnar"].answers.items()) == dict(
            results["vector"].answers.items()
        ), f"scale={scale}: engines disagree on answer probabilities"
        assert (
            results["columnar"].answers.empty_probability
            == results["vector"].answers.empty_probability
        )
        # Identical work accounting: the fused Select(Product) path must
        # count exactly the operators the unfused pair counts.
        operators = results["columnar"].stats.snapshot()["operators"]
        assert operators == results["vector"].stats.snapshot()["operators"]
        assert (
            results["columnar"].stats.rows_scanned
            == results["vector"].stats.rows_scanned
        )
        assert (
            results["columnar"].stats.rows_output
            == results["vector"].stats.rows_output
        )

        series.append(
            {
                "scale": scale,
                "columnar_seconds": timings["columnar"],
                "vector_seconds": timings["vector"],
                "speedup": timings["columnar"] / timings["vector"],
                "operators": dict(operators),
            }
        )

    largest = series[-1]
    assert largest["speedup"] >= SPEEDUP_GATE, (
        f"vector engine is only {largest['speedup']:.2f}x faster than columnar "
        f"at scale {largest['scale']} (gate: {SPEEDUP_GATE}x)"
    )

    table = format_table(
        ["scale", "columnar [s]", "vector [s]", "speedup"],
        [
            [
                str(point["scale"]),
                f"{point['columnar_seconds']:.3f}",
                f"{point['vector_seconds']:.3f}",
                f"{point['speedup']:.2f}x",
            ]
            for point in series
        ],
    )
    report_writer(
        "engine_vector",
        "== Vector vs columnar engine (Q4, Excel, Figure 11(b) setting) ==\n\n"
        f"h={SMOKE_H}, e-basic, optimize=False, best-of rounds per scale\n\n"
        + table
        + "\n",
    )

    payload = {
        "workload": {
            "query": "Q4",
            "target": "Excel",
            "method": "e-basic",
            "h": SMOKE_H,
            "optimize": False,
        },
        "gates": {
            "byte_identity": "asserted at every size",
            "speedup_at_largest_size": SPEEDUP_GATE,
        },
        "series": series,
        "note": (
            "wall-clock is hardware-dependent; the gate compares both engines "
            "on the same machine within the same run"
        ),
    }
    write_bench_artifact("engine_vector", payload)

    # One pedantic round through pytest-benchmark for the timing artefact.
    smallest = build_scenario(target="Excel", h=SMOKE_H, scale=SCALES[0], seed=7)
    smallest_query = PAPER_QUERIES["Q4"].build(smallest.target_schema)
    benchmark.pedantic(
        lambda: evaluate(
            smallest_query,
            smallest.mappings,
            smallest.database,
            method="e-basic",
            links=smallest.links,
            engine="vector",
            optimize=False,
        ),
        rounds=1,
        iterations=1,
    )
