"""Figure 11(a): e-basic vs q-sharing vs o-sharing on the Table III queries.

The paper's observations: q-sharing improves on e-basic (it avoids rewriting
one source query per mapping), and o-sharing is the fastest overall because it
shares work at the operator level even when whole source queries differ.
"""

from __future__ import annotations

from repro.bench.harness import DEFAULT_METHODS, sweep_queries
from repro.bench.reporting import render_experiment
from repro.workloads.queries import PAPER_QUERIES


def _build_series(bench_scenarios):
    return sweep_queries(
        DEFAULT_METHODS,
        list(PAPER_QUERIES),
        bench_scenarios,
        title="Figure 11(a): time per Table III query",
        optimize=False,  # paper-faithful: the paper has no cost-based optimizer
    )


def test_fig11a_queries(benchmark, bench_scenarios, report_writer):
    series = benchmark.pedantic(_build_series, args=(bench_scenarios,), rounds=1, iterations=1)
    text = render_experiment(
        "Figure 11(a): e-basic / q-sharing / o-sharing per query (Q1-Q10)",
        series,
        metrics=("seconds", "source_operators", "reformulations"),
    )
    report_writer("fig11a_queries", text)

    queries = series.x_values()
    # q-sharing never rewrites more source queries than e-basic (it rewrites
    # one per representative mapping instead of one per mapping).
    for query_id in queries:
        assert series.value("q-sharing", query_id, "reformulations") <= series.value(
            "e-basic", query_id, "reformulations"
        )
    # o-sharing executes no more source operators than e-basic on every query,
    # and strictly fewer on most (operator-level sharing).
    fewer = 0
    for query_id in queries:
        o_ops = series.value("o-sharing", query_id, "source_operators")
        e_ops = series.value("e-basic", query_id, "source_operators")
        assert o_ops <= e_ops * 1.2 + 2
        if o_ops < e_ops:
            fewer += 1
    assert fewer >= len(queries) // 2
    # Aggregate wall-clock comparison: the sharing evaluators beat e-basic in total.
    total = {
        method: sum(series.value(method, query_id) for query_id in queries)
        for method in DEFAULT_METHODS
    }
    assert total["q-sharing"] <= total["e-basic"] * 1.1
    assert total["o-sharing"] <= total["e-basic"] * 1.1
