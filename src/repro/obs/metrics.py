"""Zero-dependency metrics: counters, gauges and bounded histograms.

A :class:`MetricsRegistry` is the session-level aggregation point the
scattered per-call counters (:class:`~repro.relational.stats.ExecutionStats`,
:class:`~repro.session.SessionStats`,
:class:`~repro.relational.plancache.PlanCacheStats`) feed into — it subsumes
them without replacing them: the legacy counters keep working exactly as
before, and :meth:`repro.session.Session.metrics` syncs their absolute values
into the registry at snapshot time (so nothing is ever double-counted).

Instruments are get-or-create by ``(name, labels)``; a disabled registry
hands out one shared no-op instrument, so instrumented code paths cost a
single ``enabled`` check when metrics are off.  Snapshots render to JSON and
to the Prometheus text exposition format (ready for a future serving
front end's ``/metrics`` endpoint — see ROADMAP.md).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram bounds (seconds) — sub-millisecond operators up to
#: multi-second workload passes, roughly log-spaced like Prometheus defaults.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically-increasing value (plus :meth:`set_total` for syncing).

    ``set_total`` exists because the engine's legacy counters are the source
    of truth for several totals (plan-cache hits, operators executed): the
    registry mirrors their absolute value at snapshot time instead of
    double-counting increments along both paths.
    """

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help: str = "", labels: dict[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (negative increments raise — counters only go up)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally-accumulated absolute total."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def series(self) -> dict[str, Any]:
        return {"labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (queue depth, cache entries, rates).

    A gauge can be *read-through*: :meth:`set_callback` registers a zero-arg
    callable evaluated at collection time, so every snapshot observes the
    live value instead of whatever the last explicit ``set()`` stored.  A
    worker-pool queue depth sampled only inside ``Session.metrics()`` would
    otherwise read stale between snapshots — the callback makes the scrape
    itself the sampling point.
    """

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_value", "_callback", "_lock")

    def __init__(self, name: str, help: str = "", labels: dict[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        self._value = 0.0
        self._callback: Any = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def set_callback(self, callback) -> None:
        """Make this gauge read-through: ``callback()`` supplies the value.

        Collection falls back to the last stored value if the callback
        raises (a dying pool must not take the whole scrape down with it).
        """
        with self._lock:
            self._callback = callback

    @property
    def value(self) -> float:
        with self._lock:
            callback = self._callback
            stored = self._value
        if callback is None:
            return stored
        try:
            return float(callback())
        except Exception:  # pragma: no cover - defensive scrape path
            return stored

    def series(self) -> dict[str, Any]:
        return {"labels": dict(self.labels), "value": self.value}


class Histogram:
    """A bounded-bucket distribution (Prometheus-style cumulative ``le``).

    Memory is fixed: one integer per bucket bound plus sum/count — an
    unbounded serving loop cannot grow a histogram.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)  # +1 = the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # bisect_left gives the first bound >= value: Prometheus ``le`` is
        # inclusive, so a value equal to a bound lands in that bucket.
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def series(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, observed = self._sum, self._count
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = observed
        return {
            "labels": dict(self.labels),
            "buckets": cumulative,
            "sum": total,
            "count": observed,
        }


class _NoopInstrument:
    """Shared stand-in when the registry is disabled (every method no-ops)."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def set_callback(self, callback) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP = _NoopInstrument()


class MetricsSnapshot:
    """A point-in-time, immutable copy of every instrument in a registry."""

    def __init__(self, data: dict[str, Any], enabled: bool = True):
        #: ``{metric name: {"type", "help", "series": [...]}}``
        self.data = data
        self.enabled = enabled

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(
            {"enabled": self.enabled, "metrics": self.data},
            indent=indent,
            sort_keys=True,
        )

    def to_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self.data):
            family = self.data[name]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['type']}")
            for series in family["series"]:
                labels = series["labels"]
                if family["type"] == "histogram":
                    for le, count in series["buckets"].items():
                        le_label = {**labels, "le": le}
                        lines.append(
                            f"{name}_bucket{_label_text(le_label)} {count}"
                        )
                    lines.append(f"{name}_sum{_label_text(labels)} {_number(series['sum'])}")
                    lines.append(f"{name}_count{_label_text(labels)} {series['count']}")
                else:
                    lines.append(f"{name}{_label_text(labels)} {_number(series['value'])}")
        return "\n".join(lines) + ("\n" if lines else "")

    def value(self, name: str, labels: dict[str, str] | None = None) -> Any:
        """One series' value (counters/gauges) or dict (histograms)."""
        family = self.data.get(name)
        if family is None:
            raise KeyError(f"no metric named {name!r}")
        wanted = dict(labels) if labels else {}
        for series in family["series"]:
            if series["labels"] == wanted:
                return series.get("value", series)
        raise KeyError(f"no series of {name!r} with labels {wanted!r}")

    def __contains__(self, name: object) -> bool:
        return name in self.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsSnapshot(metrics={len(self.data)}, enabled={self.enabled})"


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    parts = ", ".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + parts + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _number(value: float) -> str:
    """Render without a trailing ``.0`` on integral values (diff-friendly)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Get-or-create instrument registry with a disabled fast path.

    Instruments are keyed by ``(name, sorted labels)``; asking for an
    existing key returns the same instrument (help text and bucket bounds
    are fixed by the first creation).  Asking for an existing name with a
    different instrument kind raises — one name, one type, as Prometheus
    requires.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}

    # ------------------------------------------------------------------ #
    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter | _NoopInstrument:
        return self._get(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge | _NoopInstrument:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram | _NoopInstrument:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def _get(self, cls, name, help, labels, **kwargs):
        if not self.enabled:
            return _NOOP
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, help=help, labels=labels, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, cannot re-register as {cls.kind}"
                )
        return instrument

    # ------------------------------------------------------------------ #
    def snapshot(self) -> MetricsSnapshot:
        """An immutable snapshot of every instrument (empty when disabled)."""
        with self._lock:
            instruments = list(self._instruments.values())
        data: dict[str, Any] = {}
        for instrument in instruments:
            family = data.setdefault(
                instrument.name,
                {"type": instrument.kind, "help": instrument.help, "series": []},
            )
            family["series"].append(instrument.series())
        for family in data.values():
            family["series"].sort(key=lambda series: sorted(series["labels"].items()))
        return MetricsSnapshot(data, enabled=self.enabled)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({len(self)} instruments, {state})"
