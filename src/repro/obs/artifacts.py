"""Machine-readable perf artifacts: ``BENCH_<name>.json`` at the repo root.

Every CI-gated benchmark emits its measured series through one serializer so
the repo keeps an honest, diffable perf trajectory (the ROADMAP's
"machine-readable perf artifacts" item).  The envelope is deliberately
boring and stable::

    {
      "benchmark": "<name>",
      "schema": 1,
      ...benchmark-specific sections...
    }

No timestamps, hostnames or environment digests land in the payload: two
runs of the same code on the same inputs should produce a clean diff, and
the interesting deltas are the measured numbers themselves.  Wall-clock
values *are* included (they are the point of a perf artifact) — consumers
diffing across machines should read the deterministic counters (operators,
rows, cache hits) as the gating signal, exactly as CI does.

:func:`series_payload` serializes the bench harness's
:class:`~repro.bench.harness.ExperimentSeries`;
:func:`snapshot_payload` embeds a
:class:`~repro.obs.metrics.MetricsSnapshot`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "REPO_ROOT",
    "SCHEMA_VERSION",
    "write_bench_artifact",
    "series_payload",
    "point_payload",
    "snapshot_payload",
]

#: The repository root (``src/repro/obs/`` is three levels below it).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Bump when the envelope shape changes incompatibly.
SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` into plain JSON types (str fallback)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    return str(value)


def write_bench_artifact(
    name: str, payload: dict[str, Any], root: Path | str | None = None
) -> Path:
    """Write ``BENCH_<name>.json`` under ``root`` (repo root by default).

    ``payload`` supplies the benchmark-specific sections; the envelope keys
    (``benchmark``, ``schema``) are added here so every artifact is
    self-describing.  Returns the written path.
    """
    target = Path(root) if root is not None else REPO_ROOT
    document: dict[str, Any] = {"benchmark": name, "schema": SCHEMA_VERSION}
    for key, value in payload.items():
        if key not in ("benchmark", "schema"):
            document[key] = _jsonable(value)
    path = target / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def point_payload(point) -> dict[str, Any]:
    """One :class:`~repro.bench.harness.ExperimentPoint` as a JSON object."""
    return {
        "method": point.method,
        "x": _jsonable(point.x),
        "seconds": point.seconds,
        "source_operators": point.source_operators,
        "source_queries": point.source_queries,
        "answers": point.answers,
        "reformulations": point.reformulations,
        "details": _jsonable(point.details),
    }


def series_payload(series) -> dict[str, Any]:
    """One :class:`~repro.bench.harness.ExperimentSeries` as a JSON object."""
    return {
        "title": series.title,
        "x_label": series.x_label,
        "methods": series.methods(),
        "x_values": [_jsonable(x) for x in series.x_values()],
        "points": [point_payload(point) for point in series.points],
    }


def snapshot_payload(snapshot) -> dict[str, Any]:
    """A :class:`~repro.obs.metrics.MetricsSnapshot` as a JSON object."""
    return {"enabled": snapshot.enabled, "metrics": _jsonable(snapshot.data)}
