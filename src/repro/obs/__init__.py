"""Unified observability: tracing, metrics and machine-readable perf artifacts.

Three zero-dependency pieces, threaded through the whole engine:

* :mod:`repro.obs.trace` — per-query span trees with JSONL and Chrome
  trace-event exporters, a thread-local ambient tracer for deep layers, and
  a strict no-op fast path when disabled;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters, gauges
  and bounded histograms, snapshot-able to JSON and Prometheus text format;
* :mod:`repro.obs.artifacts` — the ``BENCH_*.json`` serializer every
  CI-gated benchmark emits its series through.

The pinned invariant (asserted by the differential harness and CI):
**instrumentation never changes answers or operator counts** — enabling
tracing and metrics is byte-identical to running without them, for every
evaluator on every engine.
"""

from repro.obs.artifacts import (
    REPO_ROOT,
    SCHEMA_VERSION,
    point_payload,
    series_payload,
    snapshot_payload,
    write_bench_artifact,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.trace import Span, Tracer, activate, current_tracer

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_LATENCY_BUCKETS",
    "REPO_ROOT",
    "SCHEMA_VERSION",
    "write_bench_artifact",
    "series_payload",
    "point_payload",
    "snapshot_payload",
]
