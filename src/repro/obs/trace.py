"""Zero-dependency tracing: per-query span trees with a strict no-op off path.

A :class:`Tracer` records one :class:`Span` tree per root operation (a
session ``query()`` call, usually): session → reformulate → optimize →
plan-cache lookup → execute → per-operator spans, each carrying attributes
(engine, rows in/out, cache hit/patch/miss, morsel/worker counts) and
point-in-time events.  The design constraints, in order:

1. **Instrumentation never changes answers or operator counts** — spans only
   observe; every call site guards on ``tracer is not None`` (or the ambient
   :func:`current_tracer`, which is one thread-local attribute read) so the
   disabled path stays within noise of uninstrumented code
   (``benchmarks/bench_observability.py`` gates this).
2. **Thread propagation** — each thread keeps its own span stack; worker
   threads adopt the submitting thread's current span via :meth:`Tracer.attach`
   (:func:`repro.relational.parallel.run_tasks` wires this), so morsel-level
   events nest under the operator span that scheduled them.  Process-pool
   tasks cannot carry a live tracer across the boundary; the scheduling side
   records the fan-out (kernel, morsels, workers, pool kind) instead.
3. **Bounded memory** — finished root spans land in a ``deque(maxlen=...)``;
   an unbounded serving loop cannot grow the trace without bound.

Exporters: :meth:`Tracer.export_jsonl` (one JSON object per span, with
parent links) and :meth:`Tracer.chrome_trace` (Chrome trace-event JSON,
loadable in ``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
]


def _jsonable(value: Any) -> Any:
    """``value`` if JSON-serializable scalar, else its ``str()`` form."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


class Span:
    """One timed node of a trace tree.

    ``attributes`` are set at creation (and may be refined while the span is
    open — the executor fills ``rows_out`` after the operator ran);
    ``events`` are point-in-time records (cache probes, kernel decisions)
    appended by :meth:`Tracer.event` while this span is innermost.
    """

    __slots__ = ("name", "attributes", "events", "children", "start", "duration")

    def __init__(self, name: str, attributes: dict[str, Any] | None = None):
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.events: list[dict[str, Any]] = []
        self.children: list["Span"] = []
        self.start = 0.0
        self.duration = 0.0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first (parents first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """The first span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        """A nested plain-dict rendering (tests, ad-hoc inspection)."""
        return {
            "name": self.name,
            "duration_ms": round(self.duration * 1e3, 6),
            "attributes": {k: _jsonable(v) for k, v in self.attributes.items()},
            "events": [
                {k: _jsonable(v) for k, v in event.items()} for event in self.events
            ],
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"children={len(self.children)}, events={len(self.events)})"
        )


class Tracer:
    """Per-thread span stacks feeding a bounded deque of finished root spans.

    One tracer serves one :class:`~repro.session.Session`; concurrent
    ``query()`` calls each build their own root (the stacks are
    thread-local), and finished roots are retained newest-last up to
    ``max_roots``.
    """

    def __init__(self, max_roots: int = 256):
        #: perf_counter origin all span timestamps are relative to
        self.epoch = time.perf_counter()
        #: finished root spans, oldest evicted first (bounded memory)
        self.roots: deque[Span] = deque(maxlen=max_roots)
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Span | None:
        """This thread's innermost open span (``None`` outside any span)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of this thread's current span (or a new root)."""
        span = Span(name, attributes)
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(span)
        span.start = time.perf_counter()
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - span.start
            stack.pop()
            if parent is not None:
                # list.append is atomic under the GIL: worker threads adopt a
                # parent via attach() and append children concurrently.
                parent.children.append(span)
            else:
                self.roots.append(span)

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event on this thread's current span.

        A no-op outside any span — events can therefore be emitted
        unconditionally from library code that may run untraced.
        """
        span = self.current()
        if span is not None:
            record: dict[str, Any] = {"name": name, "at": time.perf_counter() - self.epoch}
            record.update(attributes)
            span.events.append(record)

    @contextmanager
    def attach(self, parent: Span | None) -> Iterator[None]:
        """Adopt ``parent`` as this thread's current span (worker threads).

        The pool layer captures the scheduling thread's :meth:`current` span
        and attaches it inside each worker task, so spans and events the
        task records nest under the operator that fanned it out.
        """
        if parent is None:
            yield
            return
        stack = self._stack()
        stack.append(parent)
        try:
            yield
        finally:
            stack.pop()

    # ------------------------------------------------------------------ #
    # exporters
    # ------------------------------------------------------------------ #
    def export_jsonl(self) -> str:
        """One JSON object per span (parent-linked), newline-delimited.

        Ids are densely assigned in depth-first order per export; ``parent``
        is ``None`` on roots.  Suitable for ``jq``-style offline analysis.
        """
        rendered: list[str] = []
        next_id = 0
        for root in list(self.roots):
            pending: list[tuple[Span, int | None]] = [(root, None)]
            while pending:
                span, parent_id = pending.pop()
                span_id = next_id
                next_id += 1
                record = {
                    "id": span_id,
                    "parent": parent_id,
                    "name": span.name,
                    "start_us": round((span.start - self.epoch) * 1e6, 3),
                    "dur_us": round(span.duration * 1e6, 3),
                    "attributes": {k: _jsonable(v) for k, v in span.attributes.items()},
                    "events": [
                        {k: _jsonable(v) for k, v in event.items()}
                        for event in span.events
                    ],
                }
                rendered.append(json.dumps(record, sort_keys=True))
                pending.extend((child, span_id) for child in reversed(span.children))
        return "\n".join(rendered) + ("\n" if rendered else "")

    def chrome_trace(self) -> str:
        """The trace as Chrome trace-event JSON text (Perfetto-loadable).

        Complete-duration (``"ph": "X"``) events, microsecond timestamps
        relative to the tracer epoch; span attributes land in ``args``.
        Write the string to a ``.json`` file and load it in
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        events: list[dict[str, Any]] = []
        for tid, root in enumerate(list(self.roots), start=1):
            for span in root.walk():
                events.append(
                    {
                        "name": span.name,
                        "ph": "X",
                        "ts": round((span.start - self.epoch) * 1e6, 3),
                        "dur": round(span.duration * 1e6, 3),
                        "pid": 1,
                        "tid": tid,
                        "args": {
                            k: _jsonable(v) for k, v in span.attributes.items()
                        },
                    }
                )
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})

    def clear(self) -> None:
        """Drop every finished root span (open spans are unaffected)."""
        self.roots.clear()

    def __len__(self) -> int:
        return len(self.roots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(roots={len(self.roots)})"


# --------------------------------------------------------------------------- #
# ambient tracer
# --------------------------------------------------------------------------- #
# Deep layers (ExecutionStats.phase, the columnar/vector kernels) cannot be
# handed a tracer through every signature without churn; they read the
# *ambient* tracer instead — a thread-local the session sets around each
# serving call.  current_tracer() is one getattr with a default: the whole
# cost of disabled tracing at those call sites.
_ACTIVE = threading.local()


def current_tracer() -> Tracer | None:
    """The tracer active on this thread (``None`` when tracing is off)."""
    return getattr(_ACTIVE, "tracer", None)


@contextmanager
def activate(tracer: Tracer | None) -> Iterator[None]:
    """Make ``tracer`` the ambient tracer for this thread (restores on exit)."""
    previous = getattr(_ACTIVE, "tracer", None)
    _ACTIVE.tracer = tracer
    try:
        yield
    finally:
        _ACTIVE.tracer = previous
