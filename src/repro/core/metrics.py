"""Mapping-overlap metrics (Section VIII-B.1 of the paper).

The paper motivates its sharing algorithms by measuring how similar the
possible mappings are: the *o-ratio* of two mappings is the Jaccard overlap of
their correspondence sets, and the o-ratio of a mapping set is the average
over all pairs.  The paper reports o-ratios of 79%/68%/72% for its three
target schemas and shows (Figure 9a) that the ratio stays in the 73-79% band
as the number of mappings grows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.matching.mappings import Mapping, MappingSet


def o_ratio_pair(left: Mapping, right: Mapping) -> float:
    """The o-ratio of two mappings: ``|m_i ∩ m_j| / |m_i ∪ m_j|`` over correspondences."""
    return left.overlap(right)


def o_ratio(mappings: MappingSet | Sequence[Mapping]) -> float:
    """The average pairwise o-ratio of a mapping set."""
    if isinstance(mappings, MappingSet):
        return mappings.o_ratio()
    mappings = list(mappings)
    if len(mappings) < 2:
        return 1.0
    total = 0.0
    count = 0
    for left, right in itertools.combinations(mappings, 2):
        total += o_ratio_pair(left, right)
        count += 1
    return total / count


def pairwise_o_ratios(mappings: MappingSet | Sequence[Mapping]) -> list[float]:
    """All pairwise o-ratios (useful for distribution plots and tests)."""
    items = list(mappings)
    return [o_ratio_pair(left, right) for left, right in itertools.combinations(items, 2)]


def shared_correspondence_fraction(mappings: MappingSet) -> float:
    """Fraction of the largest mapping's correspondences shared by *all* mappings."""
    shared = mappings.shared_correspondences()
    largest = max(mapping.size for mapping in mappings)
    if largest == 0:
        return 1.0
    return len(shared) / largest


@dataclass(frozen=True)
class OverlapPoint:
    """One point of the o-ratio-versus-number-of-mappings series (Figure 9a)."""

    h: int
    o_ratio: float


def overlap_series(mappings: MappingSet, h_values: Sequence[int]) -> list[OverlapPoint]:
    """The o-ratio of the first ``h`` mappings for each ``h`` (Figure 9a's series)."""
    points = []
    for h in h_values:
        if h < 1:
            raise ValueError("h values must be positive")
        subset = mappings.subset(min(h, mappings.size))
        points.append(OverlapPoint(h=min(h, mappings.size), o_ratio=subset.o_ratio()))
    return points


def correspondence_frequencies(mappings: MappingSet) -> dict[tuple[str, str], int]:
    """How many mappings contain each correspondence pair.

    The paper's Figure 3 observation — ``(cname, pname)`` shared by four of
    five mappings — is this histogram.
    """
    counts: dict[tuple[str, str], int] = {}
    for mapping in mappings:
        for pair in mapping.pairs:
            counts[pair] = counts.get(pair, 0) + 1
    return counts
