"""Target queries: relational-algebra plans over a *target* schema.

A :class:`TargetQuery` wraps a plan tree (:mod:`repro.relational.algebra`)
whose scans name relations of the target schema ``T`` and whose column
references use target attributes.  It adds everything the paper's algorithms
need to know about the query:

* which target attributes the query references (the partitioning attributes
  of q-sharing, Section IV),
* which attributes each scan alias needs from its target relation (used by
  operator reformulation, Section VI-B),
* the query's *output attributes*, which define the shape of an answer tuple
  (Section III's answer semantics), and
* the alias → target relation map needed to interpret self-joins
  (``PO1 × PO2`` in the paper's Q4).

Column references are normalised at construction time so that every reference
carries an explicit alias qualifier; downstream code never has to re-resolve
ambiguous names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.relational.algebra import Aggregate, Join, PlanNode, Project, Scan, Select, Union
from repro.relational.expressions import ColumnRef
from repro.relational.schema import DatabaseSchema


class TargetQueryError(ValueError):
    """Raised when a target query does not type-check against its schema."""


@dataclass(frozen=True)
class TargetAttribute:
    """One referenced target attribute: a scan alias plus an attribute name."""

    alias: str
    relation: str
    name: str

    @property
    def qualified(self) -> str:
        """The schema-level identity ``relation.name`` (mapping correspondences key)."""
        return f"{self.relation}.{self.name}"

    @property
    def display(self) -> str:
        """The query-level identity ``alias.name``."""
        return f"{self.alias}.{self.name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.display


class TargetQuery:
    """A probabilistic query issued against the target schema."""

    def __init__(self, plan: PlanNode, schema: DatabaseSchema, name: str = ""):
        self.schema = schema
        self.name = name or "target-query"
        self._aliases = self._collect_aliases(plan)
        self.plan = self._normalize(plan)
        self._referenced = self._collect_referenced(self.plan)
        self._validate()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _collect_aliases(self, plan: PlanNode) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for scan in plan.walk():
            if not isinstance(scan, Scan):
                continue
            if not self.schema.has_relation(scan.relation):
                raise TargetQueryError(
                    f"query scans unknown target relation {scan.relation!r} "
                    f"(schema {self.schema.name!r})"
                )
            if scan.label in aliases:
                raise TargetQueryError(f"duplicate scan alias {scan.label!r} in target query")
            aliases[scan.label] = scan.relation
        if not aliases:
            raise TargetQueryError("a target query must scan at least one target relation")
        return aliases

    def _normalize(self, plan: PlanNode) -> PlanNode:
        """Rewrite the plan so every column reference carries an alias qualifier."""

        def qualify(ref: ColumnRef) -> ColumnRef:
            if ref.qualifier is not None:
                if ref.qualifier not in self._aliases:
                    raise TargetQueryError(
                        f"column reference {ref.display!r} uses unknown alias "
                        f"{ref.qualifier!r}; known aliases: {sorted(self._aliases)}"
                    )
                return ref
            owners = [
                alias
                for alias, relation in self._aliases.items()
                if self.schema.relation(relation).has_attribute(ref.name)
            ]
            if not owners:
                raise TargetQueryError(
                    f"column reference {ref.name!r} does not match any scanned target relation"
                )
            if len(owners) > 1:
                raise TargetQueryError(
                    f"column reference {ref.name!r} is ambiguous between aliases {owners}; "
                    "qualify it explicitly"
                )
            return ColumnRef(name=ref.name, qualifier=owners[0])

        def rewrite(node: PlanNode) -> PlanNode:
            # Rebuild the nodes that carry column references.
            if isinstance(node, Select):
                return Select(node.child, node.predicate.rename(qualify))
            if isinstance(node, Join):
                return Join(node.left, node.right, node.predicate.rename(qualify))
            if isinstance(node, Project):
                return Project(node.child, [qualify(ref) for ref in node.columns], node.distinct)
            if isinstance(node, Aggregate):
                argument = node.argument.rename(qualify) if node.argument is not None else None
                group_by = [qualify(ref) for ref in node.group_by]
                return Aggregate(node.child, node.function, argument, group_by)
            return node

        return plan.transform(rewrite)

    def _collect_referenced(self, plan: PlanNode) -> list[TargetAttribute]:
        seen: set[tuple[str, str]] = set()
        ordered: list[TargetAttribute] = []
        for ref in plan.subtree_columns():
            key = (ref.qualifier, ref.name)
            if key in seen:
                continue
            seen.add(key)
            ordered.append(self.resolve(ref))
        return ordered

    def _validate(self) -> None:
        for attribute in self._referenced:
            relation = self.schema.relation(attribute.relation)
            if not relation.has_attribute(attribute.name):
                raise TargetQueryError(
                    f"target relation {attribute.relation!r} has no attribute {attribute.name!r}"
                )

    # ------------------------------------------------------------------ #
    # alias / attribute introspection
    # ------------------------------------------------------------------ #
    @property
    def aliases(self) -> dict[str, str]:
        """Scan alias → target relation name."""
        return dict(self._aliases)

    def alias_relation(self, alias: str) -> str:
        """Target relation scanned under ``alias``."""
        try:
            return self._aliases[alias]
        except KeyError:
            raise KeyError(f"query has no scan alias {alias!r}") from None

    def resolve(self, ref: ColumnRef) -> TargetAttribute:
        """Resolve a (normalised) column reference into a :class:`TargetAttribute`."""
        if ref.qualifier is None:
            raise TargetQueryError(
                f"column reference {ref.name!r} is not qualified; "
                "resolve() must be called on a normalised query"
            )
        return TargetAttribute(
            alias=ref.qualifier,
            relation=self.alias_relation(ref.qualifier),
            name=ref.name,
        )

    @property
    def referenced_attributes(self) -> list[TargetAttribute]:
        """Distinct referenced target attributes, in first-use order."""
        return list(self._referenced)

    def attributes_for_alias(self, alias: str) -> list[TargetAttribute]:
        """Referenced attributes belonging to one scan alias."""
        return [attribute for attribute in self._referenced if attribute.alias == alias]

    def needed_attributes(self, alias: str) -> list[TargetAttribute]:
        """Attributes a reformulated scan of ``alias`` must cover (Section VI-B).

        These are the attributes the query references through the alias; when
        the query never references the alias (a bare cross-product operand,
        like ``Order`` in the paper's q2), *all* attributes of the scanned
        target relation are needed, mirroring Case 3 of the paper's binary
        operator reformulation.
        """
        referenced = self.attributes_for_alias(alias)
        if referenced:
            return referenced
        relation = self.alias_relation(alias)
        return [
            TargetAttribute(alias=alias, relation=relation, name=attribute.name)
            for attribute in self.schema.relation(relation)
        ]

    @property
    def partition_attributes(self) -> list[str]:
        """Qualified referenced target attributes, de-duplicated in a stable order."""
        seen: set[str] = set()
        ordered: list[str] = []
        for attribute in self._referenced:
            if attribute.qualified not in seen:
                seen.add(attribute.qualified)
                ordered.append(attribute.qualified)
        return ordered

    @property
    def partition_keys(self) -> list:
        """The partition keys q-sharing groups the mappings on (Section IV).

        Two mappings that agree on every key produce the same source query:
        they must assign the same source attribute to every *referenced*
        target attribute, and for every alias the query never constrains (a
        bare cross-product operand) they must cover it with the same set of
        source relations.
        """
        from repro.core.partition_tree import CoverKey

        keys: list = list(self.partition_attributes)
        for alias in self._aliases:
            if not self.attributes_for_alias(alias):
                needed = tuple(attribute.qualified for attribute in self.needed_attributes(alias))
                keys.append(CoverKey(alias=alias, attributes=needed))
        return keys

    # ------------------------------------------------------------------ #
    # output semantics
    # ------------------------------------------------------------------ #
    @property
    def _output_root(self) -> PlanNode:
        """The node that defines the answer shape.

        For a UNION root the output adopts the left branch's shape (and the
        executor produces the left branch's column labels), so the search
        descends into left children of unions.
        """
        node = self.plan
        while isinstance(node, Union):
            node = node.left
        return node

    @property
    def is_aggregate(self) -> bool:
        """True when the query's answers are aggregate values."""
        return isinstance(self._output_root, Aggregate)

    @property
    def output_attributes(self) -> list[TargetAttribute]:
        """The target attributes whose values form an answer tuple.

        * projection root → the projected attributes, in projection order;
        * aggregate root → empty (the answer is the aggregate value itself);
        * union root → the output attributes of the union's left branch;
        * otherwise → every referenced attribute, in first-use order.
        """
        root = self._output_root
        if isinstance(root, Aggregate):
            return []
        if isinstance(root, Project):
            return [self.resolve(ref) for ref in root.columns]
        return list(self._referenced)

    # ------------------------------------------------------------------ #
    # plan introspection
    # ------------------------------------------------------------------ #
    @property
    def operator_count(self) -> int:
        """Number of operators (non-leaf nodes) in the target plan."""
        return len(self.plan.operators())

    @property
    def attribute_count(self) -> int:
        """Number of distinct referenced target attributes (the paper's ``l``)."""
        return len(self._referenced)

    def operator_attributes(self, operator: PlanNode) -> list[TargetAttribute]:
        """Distinct target attributes referenced by one operator of the plan."""
        seen: set[tuple[str | None, str]] = set()
        ordered: list[TargetAttribute] = []
        for ref in operator.referenced_columns():
            key = (ref.qualifier, ref.name)
            if key in seen:
                continue
            seen.add(key)
            ordered.append(self.resolve(ref))
        return ordered

    def describe(self) -> str:
        """A one-line description used by examples and benchmark output."""
        return f"{self.name}: {self.plan.canonical()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TargetQuery(name={self.name!r}, schema={self.schema.name!r}, "
            f"operators={self.operator_count}, attributes={self.attribute_count})"
        )


def target_attribute_names(attributes: Iterable[TargetAttribute]) -> list[str]:
    """Qualified names of a sequence of target attributes (order preserved)."""
    return [attribute.qualified for attribute in attributes]
