"""The paper's contribution: probabilistic query evaluation over possible mappings.

The package is organised around the concepts of the paper:

* :mod:`repro.core.answer` — probabilistic answers ``(t, Pr(t))``.
* :mod:`repro.core.target_query` — target queries and their attributes.
* :mod:`repro.core.links` / :mod:`repro.core.reformulation` — target-to-source
  query and operator reformulation (Section VI-B).
* :mod:`repro.core.partition_tree` — mapping partitioning (Algorithm 3).
* :mod:`repro.core.eunit` — e-units and the u-trace (Section V).
* :mod:`repro.core.operator_selection` — Random / SNF / SEF (Section VI-A).
* :mod:`repro.core.metrics` — mapping-overlap metrics (Section VIII-B.1).
* :mod:`repro.core.evaluators` — basic, e-basic, e-MQO, q-sharing, o-sharing
  and top-k evaluation algorithms.

The :func:`evaluate` and :func:`evaluate_top_k` helpers are the one-call entry
points used by the examples and benchmarks.
"""

from __future__ import annotations

from repro.core.answer import ProbabilisticAnswer, RankedAnswer
from repro.core.evaluators import (
    EVALUATORS,
    BatchEvaluator,
    BatchResult,
    EvaluationResult,
    Evaluator,
    evaluate_many,
    make_evaluator,
)
from repro.core.evaluators.topk import TopKEvaluator
from repro.core.links import RelationLink, SchemaLinks
from repro.core.metrics import o_ratio, overlap_series
from repro.core.operator_selection import STRATEGIES, make_strategy
from repro.core.partition_tree import partition, partition_and_represent, represent
from repro.core.reformulation import (
    UnmatchedAttributeError,
    extract_answers,
    reformulate_operator,
    reformulate_query,
)
from repro.core.target_query import TargetAttribute, TargetQuery, TargetQueryError


def evaluate(
    query: TargetQuery,
    mappings,
    database,
    method: str = "o-sharing",
    links: SchemaLinks | None = None,
    **options,
) -> EvaluationResult:
    """Evaluate a probabilistic query with the named algorithm.

    Parameters
    ----------
    query:
        The target query.
    mappings:
        The set of possible mappings (a :class:`~repro.matching.mappings.MappingSet`).
    database:
        The source instance ``D``.
    method:
        One of ``"basic"``, ``"e-basic"``, ``"e-mqo"``, ``"q-sharing"``,
        ``"o-sharing"`` (default) or ``"batch"``.
    links:
        Optional source-schema join links shared by all reformulations.
    options:
        Forwarded to the evaluator constructor.  Common switches:

        * ``engine=`` — ``"columnar"`` (default), ``"row"`` for the
          tuple-at-a-time reference interpreter, or ``"parallel"`` for the
          morsel-driven sharded engine (answers are byte-identical on every
          engine);
        * ``parallel=`` — a
          :class:`~repro.relational.parallel.ParallelConfig` tuning the
          parallel engine (worker count, thread vs process pool, sharding
          threshold); the process-wide default applies when omitted;
        * ``optimize=False`` — execute source plans exactly as reformulation
          produced them instead of running them through the cost-based
          optimizer first (identical answers, more operators);
        * ``strategy="snf"`` / ``"sef"`` / ``"random"`` — o-sharing's
          operator-selection strategy.

    Returns an :class:`EvaluationResult`: the probabilistic ``answers``, the
    :class:`~repro.relational.stats.ExecutionStats` collected while
    evaluating, and evaluator-specific ``details``.
    """
    evaluator = make_evaluator(method, links=links, **options)
    return evaluator.evaluate(query, mappings, database)


def evaluate_top_k(
    query: TargetQuery,
    mappings,
    database,
    k: int,
    links: SchemaLinks | None = None,
    **options,
) -> EvaluationResult:
    """Evaluate a probabilistic top-k query (Section VII)."""
    evaluator = TopKEvaluator(k=k, links=links, **options)
    return evaluator.evaluate(query, mappings, database)


__all__ = [
    "ProbabilisticAnswer",
    "RankedAnswer",
    "BatchEvaluator",
    "BatchResult",
    "evaluate_many",
    "EVALUATORS",
    "EvaluationResult",
    "Evaluator",
    "make_evaluator",
    "TopKEvaluator",
    "RelationLink",
    "SchemaLinks",
    "o_ratio",
    "overlap_series",
    "STRATEGIES",
    "make_strategy",
    "partition",
    "partition_and_represent",
    "represent",
    "UnmatchedAttributeError",
    "extract_answers",
    "reformulate_operator",
    "reformulate_query",
    "TargetAttribute",
    "TargetQuery",
    "TargetQueryError",
    "evaluate",
    "evaluate_top_k",
]
