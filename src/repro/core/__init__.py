"""The paper's contribution: probabilistic query evaluation over possible mappings.

The package is organised around the concepts of the paper:

* :mod:`repro.core.answer` — probabilistic answers ``(t, Pr(t))``.
* :mod:`repro.core.target_query` — target queries and their attributes.
* :mod:`repro.core.links` / :mod:`repro.core.reformulation` — target-to-source
  query and operator reformulation (Section VI-B).
* :mod:`repro.core.partition_tree` — mapping partitioning (Algorithm 3).
* :mod:`repro.core.eunit` — e-units and the u-trace (Section V).
* :mod:`repro.core.operator_selection` — Random / SNF / SEF (Section VI-A).
* :mod:`repro.core.metrics` — mapping-overlap metrics (Section VIII-B.1).
* :mod:`repro.core.evaluators` — basic, e-basic, e-MQO, q-sharing, o-sharing
  and top-k evaluation algorithms.

The :func:`evaluate` and :func:`evaluate_top_k` one-call helpers remain as
**deprecated** shims over a throwaway :class:`repro.session.Session`; new
code should hold a session (``repro.Session`` / ``repro.connect``) so the
plan cache, statistics catalog, optimizer memo and worker pools survive
between queries.
"""

from __future__ import annotations

import warnings

from repro.core.answer import ProbabilisticAnswer, RankedAnswer
from repro.core.evaluators import (
    EVALUATORS,
    BatchEvaluator,
    BatchResult,
    EvaluationResult,
    Evaluator,
    evaluate_many,
    make_evaluator,
)
from repro.core.evaluators.topk import TopKEvaluator
from repro.core.links import RelationLink, SchemaLinks
from repro.core.metrics import o_ratio, overlap_series
from repro.core.operator_selection import STRATEGIES, make_strategy
from repro.core.partition_tree import partition, partition_and_represent, represent
from repro.core.reformulation import (
    UnmatchedAttributeError,
    extract_answers,
    reformulate_operator,
    reformulate_query,
)
from repro.core.target_query import TargetAttribute, TargetQuery, TargetQueryError


def _deprecated_one_shot(name: str, replacement: str) -> None:
    warnings.warn(
        f"{name}() is deprecated: it rebuilds every cache and pool per call. "
        f"Hold a repro.Session (or repro.connect(scenario)) and use "
        f"{replacement} so cross-query state survives between calls.",
        DeprecationWarning,
        stacklevel=3,
    )


def evaluate(
    query: TargetQuery,
    mappings,
    database,
    method: str = "o-sharing",
    links: SchemaLinks | None = None,
    **options,
) -> EvaluationResult:
    """Evaluate one probabilistic query (deprecated one-shot entry point).

    .. deprecated::
        Use :class:`repro.Session` / :func:`repro.connect` —
        ``session.query(query)`` — so the plan cache, statistics catalog,
        optimizer memo and worker pools persist across queries.  This shim
        runs a throwaway session per call: answers are byte-identical, the
        amortisation is lost.

    ``method`` is one of ``"basic"``, ``"e-basic"``, ``"e-mqo"``,
    ``"q-sharing"``, ``"o-sharing"`` (default), ``"batch"`` or ``"top-k"``
    (requires ``k=``); ``options`` are :class:`repro.ExecutionPolicy` fields
    (``engine=``, ``optimize=``, ``parallel=``, ``strategy=``, ...), and an
    unknown method or option name raises ``ValueError`` listing the valid
    choices.  Returns an :class:`EvaluationResult`.
    """
    _deprecated_one_shot("evaluate", "session.query(query)")
    from repro.policy import ExecutionPolicy
    from repro.session import Session
    from repro.relational.parallel import default_manager

    policy = ExecutionPolicy.from_options(method=method, **options)
    # Throwaway session on the process-wide pools: a loop of one-shot calls
    # keeps reusing warm workers, exactly as the pre-session API did.
    with Session(
        database, mappings, links=links, policy=policy, pools=default_manager()
    ) as session:
        return session.query(query)


def evaluate_top_k(
    query: TargetQuery,
    mappings,
    database,
    k: int,
    links: SchemaLinks | None = None,
    **options,
) -> EvaluationResult:
    """Evaluate a probabilistic top-k query (deprecated one-shot entry point).

    .. deprecated::
        Use :class:`repro.Session` / :func:`repro.connect` —
        ``session.top_k(query, k)`` — for the same answers on warm caches.
    """
    _deprecated_one_shot("evaluate_top_k", "session.top_k(query, k)")
    from repro.policy import ExecutionPolicy
    from repro.session import Session
    from repro.relational.parallel import default_manager

    policy = ExecutionPolicy.from_options(method="top-k", k=k, **options)
    with Session(
        database, mappings, links=links, policy=policy, pools=default_manager()
    ) as session:
        return session.top_k(query)


__all__ = [
    "ProbabilisticAnswer",
    "RankedAnswer",
    "BatchEvaluator",
    "BatchResult",
    "evaluate_many",
    "EVALUATORS",
    "EvaluationResult",
    "Evaluator",
    "make_evaluator",
    "TopKEvaluator",
    "RelationLink",
    "SchemaLinks",
    "o_ratio",
    "overlap_series",
    "STRATEGIES",
    "make_strategy",
    "partition",
    "partition_and_represent",
    "represent",
    "UnmatchedAttributeError",
    "extract_answers",
    "reformulate_operator",
    "reformulate_query",
    "TargetAttribute",
    "TargetQuery",
    "TargetQueryError",
    "evaluate",
    "evaluate_top_k",
]
