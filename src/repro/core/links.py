"""Join links between source relations.

When a mapping sends the attributes of one target relation into *several*
source relations, the reformulated scan must combine those source relations
(Cases 2 and 3 of Section VI-B).  The paper combines them with a Cartesian
product; real reformulation systems additionally use the key/foreign-key
constraints of the source schema to turn the combination into a join (the
mapping-generation literature the paper builds on, e.g. Popa et al., produces
such join conditions).  :class:`SchemaLinks` carries those constraints: when a
link exists between two source relations the combination becomes an equi-join,
and when no link exists the combination falls back to the paper's Cartesian
product — which is exactly what happens in the paper's own running example
(``C_Order × Nation`` in Figure 8(d)).

All evaluators share the same :class:`SchemaLinks` instance, so the answer
semantics stay identical across evaluation strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.relational.algebra import Join, PlanNode, Product, Scan
from repro.relational.expressions import ColumnRef
from repro.relational.predicates import Comparison, conjunction


@dataclass(frozen=True)
class RelationLink:
    """A key/foreign-key style join link between two source relations."""

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str

    @property
    def reversed(self) -> "RelationLink":
        """The same link read in the other direction."""
        return RelationLink(
            left_relation=self.right_relation,
            left_attribute=self.right_attribute,
            right_relation=self.left_relation,
            right_attribute=self.left_attribute,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.left_relation}.{self.left_attribute} = "
            f"{self.right_relation}.{self.right_attribute}"
        )


class SchemaLinks:
    """A catalogue of :class:`RelationLink` between source relations."""

    def __init__(self, links: Iterable[RelationLink] = ()):
        self._links: dict[tuple[str, str], list[RelationLink]] = {}
        for link in links:
            self.add(link)

    @classmethod
    def empty(cls) -> "SchemaLinks":
        """A catalogue with no links (every combination is a Cartesian product)."""
        return cls()

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[str, str, str, str]]
    ) -> "SchemaLinks":
        """Build from ``(left_relation, left_attr, right_relation, right_attr)`` tuples."""
        return cls(RelationLink(*pair) for pair in pairs)

    # ------------------------------------------------------------------ #
    def add(self, link: RelationLink) -> None:
        """Register one link (both directions become queryable)."""
        for directed in (link, link.reversed):
            key = (directed.left_relation, directed.right_relation)
            self._links.setdefault(key, []).append(directed)

    def between(self, left_relation: str, right_relation: str) -> list[RelationLink]:
        """Links joining ``left_relation`` to ``right_relation`` (possibly empty)."""
        return list(self._links.get((left_relation, right_relation), ()))

    def linked_to_any(self, relation: str, others: Iterable[str]) -> list[RelationLink]:
        """Links from ``relation`` to any relation in ``others``."""
        found: list[RelationLink] = []
        for other in others:
            found.extend(self.between(relation, other))
        return found

    def __len__(self) -> int:
        return sum(len(links) for links in self._links.values()) // 2

    def __iter__(self) -> Iterator[RelationLink]:
        seen: set[tuple[str, str, str, str]] = set()
        for links in self._links.values():
            for link in links:
                key = tuple(
                    sorted(
                        [
                            (link.left_relation, link.left_attribute),
                            (link.right_relation, link.right_attribute),
                        ]
                    )
                )
                flattened = (key[0][0], key[0][1], key[1][0], key[1][1])
                if flattened not in seen:
                    seen.add(flattened)
                    yield link

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SchemaLinks({len(self)} links)"


def scan_alias(alias: str, source_relation: str) -> str:
    """The alias under which a source relation is scanned for a target alias.

    Keeping the target alias in the label keeps self-joins (``PO1``/``PO2``)
    apart even though both reformulate into the same source relations.
    """
    return f"{alias}@{source_relation}"


def combine_cover(
    alias: str,
    relations: Sequence[str],
    links: SchemaLinks | None,
) -> PlanNode:
    """Combine the source relations covering one target alias into a plan.

    The relations are combined left-deep; each new relation is joined to the
    already-combined ones through a schema link when one exists, and crossed
    in with a Cartesian product otherwise (the paper's default).
    """
    if not relations:
        raise ValueError("cannot combine an empty source-relation cover")
    links = links or SchemaLinks.empty()
    ordered = _link_aware_order(relations, links)
    plan: PlanNode = Scan(ordered[0], alias=scan_alias(alias, ordered[0]))
    included = [ordered[0]]
    for relation in ordered[1:]:
        scan = Scan(relation, alias=scan_alias(alias, relation))
        plan = attach_with_links(plan, included, alias, relation, scan, links)
        included.append(relation)
    return plan


def attach_with_links(
    base_plan: PlanNode,
    base_relations: Sequence[str],
    alias: str,
    relation: str,
    relation_plan: PlanNode,
    links: SchemaLinks | None,
    available_columns: Iterable[str] | None = None,
) -> PlanNode:
    """Attach one more source relation to an existing plan for the same alias.

    Used both by :func:`combine_cover` and by the operator reformulation's
    Case 2, where an intermediate relation lacks some of the source attributes
    an operator needs.  When ``available_columns`` is given (the labels of an
    already-materialised intermediate), links whose base-side column is no
    longer present fall back to a Cartesian product.
    """
    links = links or SchemaLinks.empty()
    usable = links.linked_to_any(relation, base_relations)
    if available_columns is not None:
        present = set(available_columns)
        usable = [
            link
            for link in usable
            if f"{scan_alias(alias, link.right_relation)}.{link.right_attribute}" in present
        ]
    if not usable:
        return Product(base_plan, relation_plan)
    conditions = [
        Comparison(
            ColumnRef(name=link.right_attribute, qualifier=scan_alias(alias, link.right_relation)),
            "=",
            ColumnRef(name=link.left_attribute, qualifier=scan_alias(alias, link.left_relation)),
        )
        for link in usable
    ]
    return Join(base_plan, relation_plan, conjunction(conditions))


def _link_aware_order(relations: Sequence[str], links: SchemaLinks) -> list[str]:
    """Order relations so that linked relations are adjacent where possible.

    The order is deterministic for a given input order (stable greedy pick),
    which keeps the canonical form of reformulated plans stable — e-basic and
    e-MQO rely on canonical equality to detect identical source queries.
    """
    remaining = list(dict.fromkeys(relations))
    if len(remaining) <= 1:
        return remaining
    ordered = [remaining.pop(0)]
    while remaining:
        linked_index = next(
            (
                index
                for index, candidate in enumerate(remaining)
                if links.linked_to_any(candidate, ordered)
            ),
            0,
        )
        ordered.append(remaining.pop(linked_index))
    return ordered
