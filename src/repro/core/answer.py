"""Probabilistic query answers (Section III of the paper).

The answer of a probabilistic target query is a set of pairs ``(t, Pr(t))``
where ``t`` is an answer tuple and ``Pr(t)`` is the probability that ``t`` is
correct — the total probability of the possible mappings under which the
reformulated source query returns ``t``.  Mappings whose source query returns
*nothing* contribute their probability to a separate *null answer* (the
paper's ``θ`` tuple), which is reported as :attr:`ProbabilisticAnswer.empty_probability`
rather than as a regular tuple.

Every evaluator in :mod:`repro.core.evaluators` produces a
:class:`ProbabilisticAnswer`; the cross-evaluator equivalence tests compare
these objects directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping as TMapping

#: Probabilities within this tolerance are considered equal when comparing
#: answers across evaluators (they are sums of the same floats in different
#: orders).
PROBABILITY_TOLERANCE = 1e-9

AnswerTuple = tuple


@dataclass(frozen=True)
class RankedAnswer:
    """One answer tuple together with its probability and rank (1-based)."""

    rank: int
    values: AnswerTuple
    probability: float


class ProbabilisticAnswer:
    """A set of answer tuples with probabilities, plus the null-answer mass.

    The container behaves like a mapping from answer tuple to probability and
    supports the aggregation the paper performs: probabilities of duplicate
    tuples obtained under different mappings are summed.
    """

    def __init__(self) -> None:
        self._probabilities: dict[AnswerTuple, float] = {}
        #: total probability of mappings whose source query returned no tuple
        self.empty_probability: float = 0.0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[AnswerTuple, float]]) -> "ProbabilisticAnswer":
        """Build an answer from ``(tuple, probability)`` pairs (duplicates summed)."""
        answer = cls()
        for values, probability in pairs:
            answer.add(values, probability)
        return answer

    def add(self, values: Iterable[Any], probability: float) -> None:
        """Add probability mass to one answer tuple."""
        if probability < 0:
            raise ValueError(f"probability must be non-negative, got {probability}")
        key = tuple(values)
        self._probabilities[key] = self._probabilities.get(key, 0.0) + probability

    def add_tuples(self, tuples: Iterable[Iterable[Any]], probability: float) -> None:
        """Add the same probability mass to several distinct answer tuples.

        This is the per-mapping (or per-mapping-group) aggregation step: all
        distinct tuples returned by one source query share the probability of
        the mapping (group) that produced them.
        """
        for values in tuples:
            self.add(values, probability)

    def add_empty(self, probability: float) -> None:
        """Record that mappings with this total probability produced no tuple."""
        if probability < 0:
            raise ValueError(f"probability must be non-negative, got {probability}")
        self.empty_probability += probability

    def merge(self, other: "ProbabilisticAnswer") -> None:
        """Fold another answer into this one (probabilities summed)."""
        for values, probability in other.items():
            self.add(values, probability)
        self.empty_probability += other.empty_probability

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def probability(self, values: Iterable[Any]) -> float:
        """Probability of one answer tuple (0 when absent)."""
        return self._probabilities.get(tuple(values), 0.0)

    def items(self) -> Iterator[tuple[AnswerTuple, float]]:
        """All ``(tuple, probability)`` pairs, in insertion order."""
        return iter(self._probabilities.items())

    @property
    def tuples(self) -> list[AnswerTuple]:
        """The distinct answer tuples, in insertion order."""
        return list(self._probabilities)

    @property
    def total_probability(self) -> float:
        """Total probability mass, including the null answer (should be ~1)."""
        return sum(self._probabilities.values()) + self.empty_probability

    def ranked(self) -> list[RankedAnswer]:
        """All answers sorted by decreasing probability (ties broken by value)."""
        ordered = sorted(
            self._probabilities.items(), key=lambda item: (-item[1], _sort_key(item[0]))
        )
        return [
            RankedAnswer(rank=rank, values=values, probability=probability)
            for rank, (values, probability) in enumerate(ordered, start=1)
        ]

    def top_k(self, k: int) -> list[RankedAnswer]:
        """The ``k`` answers with the highest probabilities (Section VII).

        Only answers with a non-zero probability are returned, so fewer than
        ``k`` answers may come back.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        return [answer for answer in self.ranked() if answer.probability > 0][:k]

    def above_threshold(self, threshold: float) -> list[RankedAnswer]:
        """All answers whose probability is at least ``threshold``.

        This is the probability-threshold variant of a confidence-restricted
        query (the paper's Section VII motivates top-k with users "only
        interested in the answers with sufficiently high confidence"; a
        threshold is the other common way to express that).
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        return [answer for answer in self.ranked() if answer.probability >= threshold]

    # ------------------------------------------------------------------ #
    # comparison
    # ------------------------------------------------------------------ #
    def equals(
        self,
        other: "ProbabilisticAnswer",
        tolerance: float = PROBABILITY_TOLERANCE,
    ) -> bool:
        """True when both answers contain the same tuples with equal probabilities."""
        if set(self._probabilities) != set(other._probabilities):
            return False
        if abs(self.empty_probability - other.empty_probability) > tolerance:
            return False
        return all(
            abs(probability - other._probabilities[values]) <= tolerance
            for values, probability in self._probabilities.items()
        )

    def difference(
        self,
        other: "ProbabilisticAnswer",
        tolerance: float = PROBABILITY_TOLERANCE,
    ) -> list[str]:
        """Human-readable description of how two answers differ (for test output)."""
        problems = []
        for values in set(self._probabilities) - set(other._probabilities):
            problems.append(f"tuple {values!r} missing from the other answer")
        for values in set(other._probabilities) - set(self._probabilities):
            problems.append(f"tuple {values!r} only present in the other answer")
        for values in set(self._probabilities) & set(other._probabilities):
            mine, theirs = self._probabilities[values], other._probabilities[values]
            if abs(mine - theirs) > tolerance:
                problems.append(f"tuple {values!r}: {mine} != {theirs}")
        if abs(self.empty_probability - other.empty_probability) > tolerance:
            problems.append(
                f"empty probability {self.empty_probability} != {other.empty_probability}"
            )
        return problems

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._probabilities)

    def __contains__(self, values: object) -> bool:
        if not isinstance(values, tuple):
            return False
        return values in self._probabilities

    def __iter__(self) -> Iterator[AnswerTuple]:
        return iter(self._probabilities)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProbabilisticAnswer({len(self)} tuples, "
            f"empty={self.empty_probability:.3f}, total={self.total_probability:.3f})"
        )

    def pretty(self, limit: int = 20) -> str:
        """A small rendering used by the examples."""
        lines = []
        for answer in self.ranked()[:limit]:
            rendered = ", ".join(str(value) for value in answer.values)
            lines.append(f"  #{answer.rank:<3d} ({rendered})  p={answer.probability:.4f}")
        if len(self) > limit:
            lines.append(f"  ... ({len(self) - limit} more answers)")
        if self.empty_probability > 0:
            lines.append(f"  (no answer) p={self.empty_probability:.4f}")
        return "\n".join(lines) if lines else "  (no answers)"


def _sort_key(values: AnswerTuple) -> tuple:
    """A total order over heterogeneous answer tuples (ties in ranked())."""
    return tuple((type(value).__name__, str(value)) for value in values)
