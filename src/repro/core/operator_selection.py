"""Operator selection strategies for o-sharing (Section VI-A).

Given an e-unit, o-sharing must decide which of the valid target operators to
execute next.  The paper studies three strategies:

* **Random** — pick uniformly among the valid operators.  Ignores all mapping
  information, so it tends to pick operators that split the mapping set into
  many partitions (many source operators executed).
* **SNF** (*Smallest Number of partitions First*) — pick the operator whose
  partitioning of the e-unit's mapping set has the fewest partitions.
* **SEF** (*Smallest Entropy First*) — pick the operator whose partitioning
  has the lowest entropy (Definition 1), i.e. whose mappings are concentrated
  in few, large partitions.  This is the strategy the paper recommends.

A strategy returns an :class:`OperatorChoice`, which also carries the mapping
partitions with respect to the chosen operator so that the evaluator does not
have to re-partition.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.eunit import CandidateOperator, EUnit
from repro.core.partition_tree import CoverKey, PartitionKey, partition
from repro.core.target_query import TargetQuery, target_attribute_names
from repro.matching.mappings import Mapping
from repro.relational.algebra import Scan


@dataclass(frozen=True)
class OperatorChoice:
    """The operator selected for execution, with its mapping partitions."""

    candidate: CandidateOperator
    #: partition keys the grouping was computed on
    attributes: tuple[PartitionKey, ...]
    partitions: tuple[tuple[Mapping, ...], ...]

    @property
    def partition_count(self) -> int:
        """Number of mapping partitions (source operators to execute)."""
        return len(self.partitions)


def _cover_key(query: TargetQuery, alias: str) -> CoverKey:
    """A cover key over the attributes a scan of ``alias`` must provide."""
    needed = tuple(attribute.qualified for attribute in query.needed_attributes(alias))
    return CoverKey(alias=alias, attributes=needed)


def _scan_keys(query: TargetQuery, alias: str) -> list[PartitionKey]:
    """Partition keys describing how a target scan of ``alias`` reformulates.

    A *referenced* alias is covered by the source relations of its referenced
    attributes, and a mapping that leaves any of them unmatched cannot answer
    the query at all — so the referenced attributes themselves are the keys
    (they distinguish both the cover and unmatchedness).  A *bare* alias (no
    referenced attributes) is covered by whatever its attributes map to, so
    the cover-relation set is the key.
    """
    referenced = query.attributes_for_alias(alias)
    if referenced:
        return list(target_attribute_names(referenced))
    return [_cover_key(query, alias)]


def partition_attributes(
    query: TargetQuery, candidate: CandidateOperator
) -> list[PartitionKey]:
    """The partition keys that determine how an operator reformulates.

    Two mappings reformulate the operator identically when they assign the
    same source attributes to the attributes the operator references, and —
    for every child that is still an (unreformulated) target scan — cover that
    scan with the same set of source relations (Section VI-B, Case 3).
    """
    if isinstance(candidate.operator, Scan):
        # Degenerate case: a bare target scan treated as the operator itself.
        return _scan_keys(query, candidate.operator.label)
    keys: list[PartitionKey] = list(
        target_attribute_names(query.operator_attributes(candidate.operator))
    )
    if len(candidate.operator.children()) == 2:
        # Binary operators replace each still-unreformulated scan child with
        # the source relations covering that alias, so how that scan
        # reformulates decides how the operator reformulates.  Unary operators
        # over a scan only cover the attributes they reference, which are
        # already in the keys.
        for child in candidate.operator.children():
            if isinstance(child, Scan):
                keys.extend(_scan_keys(query, child.label))
    elif not keys and isinstance(candidate.effective_leaf, Scan):
        # e.g. COUNT(*) directly over a target scan: the reformulated input is
        # the scan's cover, so partition on it.
        keys.extend(_scan_keys(query, candidate.effective_leaf.label))
    seen: set[PartitionKey] = set()
    ordered: list[PartitionKey] = []
    for key in keys:
        if key not in seen:
            seen.add(key)
            ordered.append(key)
    return ordered


def partition_for(
    query: TargetQuery,
    candidate: CandidateOperator,
    mappings: Sequence[Mapping],
) -> OperatorChoice:
    """Partition a mapping set with respect to one candidate operator."""
    attributes = partition_attributes(query, candidate)
    groups = partition(attributes, mappings)
    return OperatorChoice(
        candidate=candidate,
        attributes=tuple(attributes),
        partitions=tuple(tuple(group) for group in groups),
    )


def entropy(choice: OperatorChoice) -> float:
    """The entropy of a mapping partitioning (Definition 1 of the paper).

    ``E = - sum_j (|P_j| / |M|) * log2(|P_j| / |M|)`` where ``P_1..P_g`` are
    the partitions of the e-unit's mapping set ``M``.
    """
    total = sum(len(group) for group in choice.partitions)
    if total == 0:
        return 0.0
    value = 0.0
    for group in choice.partitions:
        fraction = len(group) / total
        if fraction > 0:
            value -= fraction * math.log2(fraction)
    return value


class SelectionStrategy(Protocol):
    """Interface of an operator selection strategy (the ``next`` routine)."""

    name: str

    def choose(
        self,
        unit: EUnit,
        candidates: Sequence[CandidateOperator],
        query: TargetQuery,
    ) -> OperatorChoice:
        """Pick the next operator among the valid candidates."""
        ...  # pragma: no cover - protocol


class RandomStrategy:
    """Pick a valid operator uniformly at random (seeded for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(
        self,
        unit: EUnit,
        candidates: Sequence[CandidateOperator],
        query: TargetQuery,
    ) -> OperatorChoice:
        candidate = self._rng.choice(list(candidates))
        return partition_for(query, candidate, unit.mappings)


class SNFStrategy:
    """Smallest Number of partitions First."""

    name = "snf"

    def choose(
        self,
        unit: EUnit,
        candidates: Sequence[CandidateOperator],
        query: TargetQuery,
    ) -> OperatorChoice:
        choices = [partition_for(query, candidate, unit.mappings) for candidate in candidates]
        return min(
            choices,
            key=lambda choice: (choice.partition_count, choice.candidate.operator.canonical()),
        )


class SEFStrategy:
    """Smallest Entropy First (Definition 1) — the paper's recommended strategy."""

    name = "sef"

    def choose(
        self,
        unit: EUnit,
        candidates: Sequence[CandidateOperator],
        query: TargetQuery,
    ) -> OperatorChoice:
        choices = [partition_for(query, candidate, unit.mappings) for candidate in candidates]
        return min(
            choices,
            key=lambda choice: (entropy(choice), choice.candidate.operator.canonical()),
        )


#: Strategy registry used by the o-sharing evaluator and the benchmarks.
STRATEGIES = {
    "random": RandomStrategy,
    "snf": SNFStrategy,
    "sef": SEFStrategy,
}


def make_strategy(name: str, seed: int = 0) -> SelectionStrategy:
    """Instantiate a strategy by (case-insensitive) name."""
    key = name.lower()
    if key not in STRATEGIES:
        raise KeyError(f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}")
    if key == "random":
        return RandomStrategy(seed=seed)
    return STRATEGIES[key]()
