"""Common interface of the probabilistic-query evaluators.

Every algorithm in the paper — *basic*, *e-basic*, *e-MQO*, *q-sharing*,
*o-sharing* and the *top-k* variant — takes the same inputs (a target query,
a set of possible mappings, a source instance) and produces a
:class:`~repro.core.answer.ProbabilisticAnswer`.  The evaluators also report
the execution statistics the paper's figures are built from (phase timings,
number of source queries/operators executed, number of reformulations).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.core.answer import ProbabilisticAnswer
from repro.core.links import SchemaLinks
from repro.core.target_query import TargetQuery
from repro.matching.mappings import MappingSet
from repro.relational.database import Database
from repro.relational.executor import DEFAULT_ENGINE, ENGINES
from repro.relational.stats import ExecutionStats

#: Names of the timing phases every evaluator records.
PHASE_REWRITING = "rewriting"
PHASE_EVALUATION = "evaluation"
PHASE_AGGREGATION = "aggregation"
PHASE_PLANNING = "planning"
PHASE_ANYTIME = "anytime"


@dataclass
class SharedState:
    """Long-lived cross-query state a :class:`~repro.session.Session` injects.

    One-shot evaluation rebuilds everything per call; a session instead hands
    every evaluator it constructs the same:

    * ``plan_cache`` — one bounded
      :class:`~repro.relational.plancache.PlanCache` (already attached to the
      session's database) that e-MQO and the batch evaluator look shared
      subexpressions up in, so materializations survive *between* calls;
    * ``optimizer`` — one :class:`~repro.relational.optimizer.Optimizer`
      whose canonical-fingerprint memo persists across calls (the session's
      database supplies the statistics catalog);
    * ``inflight`` — one
      :class:`~repro.relational.parallel.InflightComputations` registry so
      the batch evaluator's concurrently running workload queries compute
      each shared materialization exactly once;
    * ``pools`` — the session-owned
      :class:`~repro.relational.parallel.PoolManager` whose worker pools are
      started lazily and shut down by ``Session.close()``.

    All fields are optional; an evaluator constructed without shared state
    behaves exactly as the one-shot API always did.  ``database`` pins the
    state to the database it serves: plan-cache keys are database-agnostic
    canonical fingerprints (and the inflight registry shares live results),
    so injected state must never leak across databases — a session always
    sets it, and evaluators ignore the state when evaluated against any
    other database.  With ``database=None`` (hand-built state) the explicit
    pin is off, but each component still guards itself: the plan cache is
    only reused for databases it is attached to
    (:meth:`~repro.relational.plancache.PlanCache.serves`), the optimizer
    only for its own database, and the inflight registry only alongside the
    attached plan cache it deduplicates for.
    """

    plan_cache: Any = None
    optimizer: Any = None
    inflight: Any = None
    pools: Any = None
    database: Any = None
    #: optional :class:`~repro.obs.trace.Tracer` recording per-operator span
    #: trees for every executor the session's evaluators construct (``None``
    #: keeps the executor on its strict no-op path).
    tracer: Any = None


@dataclass
class EvaluationResult:
    """The outcome of evaluating one probabilistic query."""

    evaluator: str
    query: TargetQuery
    answers: ProbabilisticAnswer
    stats: ExecutionStats
    #: evaluator-specific counters (distinct source queries, e-units created, ...)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock time across all recorded phases."""
        return self.stats.total_seconds

    @property
    def source_operators(self) -> int:
        """Number of source operators executed (Table IV's metric)."""
        return self.stats.source_operators

    def summary(self) -> dict[str, Any]:
        """A flat summary dict used by the benchmark reporting layer."""
        return {
            "evaluator": self.evaluator,
            "query": self.query.name,
            "answers": len(self.answers),
            "empty_probability": self.answers.empty_probability,
            "seconds": self.elapsed_seconds,
            "source_queries": self.stats.source_queries,
            "source_operators": self.stats.source_operators,
            "reformulations": self.stats.reformulations,
            "plan_cache_hits": self.stats.plan_cache_hits,
            "operators_saved": self.stats.operators_saved,
            "phase_seconds": dict(self.stats.phase_seconds),
            **self.details,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvaluationResult({self.evaluator}, query={self.query.name!r}, "
            f"answers={len(self.answers)}, seconds={self.elapsed_seconds:.3f})"
        )


class Evaluator(abc.ABC):
    """Base class of every query-evaluation algorithm.

    ``engine`` selects the relational execution engine every executor the
    evaluator creates will use: ``"columnar"`` (default), ``"row"`` for the
    tuple-at-a-time interpreter, or ``"parallel"`` for the morsel-driven
    sharded engine (tunable via ``parallel``, a
    :class:`~repro.relational.parallel.ParallelConfig`; the process-wide
    default applies when omitted).  Answers are identical on every engine,
    which the differential test harness asserts for every evaluator.

    ``optimize`` (default on) runs every source plan through the cost-based
    optimizer (:mod:`repro.relational.optimizer`) before execution: predicate
    pushdown, Select+Product→Join conversion, projection pruning, constant
    folding, empty-relation short-circuit and cost-based join ordering.
    Answers are byte-identical with the optimizer off — also asserted by the
    differential harness — only the executed operator and row counts change.
    """

    #: human-readable algorithm name used in reports and figures
    name: str = "evaluator"

    def __init__(
        self,
        links: SchemaLinks | None = None,
        engine: str = DEFAULT_ENGINE,
        optimize: bool = True,
        parallel=None,
        shared: SharedState | None = None,
    ):
        self.links = links
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; available: {ENGINES}")
        self.engine = engine
        self.optimize = optimize
        #: optional :class:`~repro.relational.parallel.ParallelConfig` handed
        #: to every executor when ``engine="parallel"`` (ignored otherwise).
        self.parallel = parallel
        #: optional :class:`SharedState` a session injects so caches, the
        #: optimizer memo and worker pools outlive this one evaluation.
        self.shared = shared

    def _optimizer(self, database: Database):
        """The optimizer to plan with, or ``None`` when disabled.

        With injected session state the session's long-lived optimizer is
        reused (its fingerprint memo then spans *calls*, not just this
        evaluation) as long as it serves the same database; otherwise a
        per-evaluation instance is built.  Either way the optimizer memoizes
        per canonical fingerprint (guarded by data versions) and reads the
        database's lazily collected, version-keyed statistics catalog.
        """
        if not self.optimize:
            return None
        shared = self._shared_state(database)
        if (
            shared is not None
            and shared.optimizer is not None
            and shared.optimizer.database is database
        ):
            return shared.optimizer
        from repro.relational.optimizer import Optimizer

        return Optimizer(database)

    def _shared_state(self, database: Database) -> SharedState | None:
        """The injected session state, when it serves ``database``."""
        if self.shared is None:
            return None
        if self.shared.database is not None and self.shared.database is not database:
            return None
        return self.shared

    def _shared_cache(self, database: Database):
        """The session-owned plan cache, when one serves this database.

        Belt and braces: besides the shared state's database pin, the cache
        itself must be attached to this database's mutation hooks
        (:meth:`~repro.relational.plancache.PlanCache.serves`) — cache keys
        are database-agnostic fingerprints, so an unattached cache could
        serve another database's materializations.
        """
        shared = self._shared_state(database)
        if shared is None or shared.plan_cache is None:
            return None
        if not shared.plan_cache.serves(database):
            return None
        return shared.plan_cache

    def _executor(self, database: Database, stats: ExecutionStats, **kwargs):
        """An executor wired with this evaluator's engine/optimizer/parallel config.

        ``kwargs`` forward to :class:`~repro.relational.executor.Executor`
        (``cache=``, ``policy=``, ``inflight=``...); pass ``optimizer=None``
        explicitly to skip per-plan optimization (the MQO evaluators optimize
        up front, before their shared-subexpression analysis).  Injected
        session state supplies the worker-pool manager.
        """
        from repro.relational.executor import Executor

        kwargs.setdefault("optimizer", self._optimizer(database))
        shared = self._shared_state(database)
        if shared is not None:
            kwargs.setdefault("pools", shared.pools)
            kwargs.setdefault("tracer", shared.tracer)
        return Executor(
            database, stats, engine=self.engine, parallel=self.parallel, **kwargs
        )

    @abc.abstractmethod
    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> EvaluationResult:
        """Evaluate the probabilistic query and return its answers and statistics."""

    def _result(
        self,
        query: TargetQuery,
        answers: ProbabilisticAnswer,
        stats: ExecutionStats,
        **details: Any,
    ) -> EvaluationResult:
        """Assemble an :class:`EvaluationResult` (shared helper)."""
        merged = dict(details)
        merged.setdefault("engine", self.engine)
        merged.setdefault("optimize", self.optimize)
        return EvaluationResult(
            evaluator=self.name,
            query=query,
            answers=answers,
            stats=stats,
            details=merged,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
