"""Common interface of the probabilistic-query evaluators.

Every algorithm in the paper — *basic*, *e-basic*, *e-MQO*, *q-sharing*,
*o-sharing* and the *top-k* variant — takes the same inputs (a target query,
a set of possible mappings, a source instance) and produces a
:class:`~repro.core.answer.ProbabilisticAnswer`.  The evaluators also report
the execution statistics the paper's figures are built from (phase timings,
number of source queries/operators executed, number of reformulations).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.core.answer import ProbabilisticAnswer
from repro.core.links import SchemaLinks
from repro.core.target_query import TargetQuery
from repro.matching.mappings import MappingSet
from repro.relational.database import Database
from repro.relational.executor import DEFAULT_ENGINE, ENGINES
from repro.relational.stats import ExecutionStats

#: Names of the timing phases every evaluator records.
PHASE_REWRITING = "rewriting"
PHASE_EVALUATION = "evaluation"
PHASE_AGGREGATION = "aggregation"
PHASE_PLANNING = "planning"


@dataclass
class EvaluationResult:
    """The outcome of evaluating one probabilistic query."""

    evaluator: str
    query: TargetQuery
    answers: ProbabilisticAnswer
    stats: ExecutionStats
    #: evaluator-specific counters (distinct source queries, e-units created, ...)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock time across all recorded phases."""
        return self.stats.total_seconds

    @property
    def source_operators(self) -> int:
        """Number of source operators executed (Table IV's metric)."""
        return self.stats.source_operators

    def summary(self) -> dict[str, Any]:
        """A flat summary dict used by the benchmark reporting layer."""
        return {
            "evaluator": self.evaluator,
            "query": self.query.name,
            "answers": len(self.answers),
            "empty_probability": self.answers.empty_probability,
            "seconds": self.elapsed_seconds,
            "source_queries": self.stats.source_queries,
            "source_operators": self.stats.source_operators,
            "reformulations": self.stats.reformulations,
            "plan_cache_hits": self.stats.plan_cache_hits,
            "operators_saved": self.stats.operators_saved,
            "phase_seconds": dict(self.stats.phase_seconds),
            **self.details,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvaluationResult({self.evaluator}, query={self.query.name!r}, "
            f"answers={len(self.answers)}, seconds={self.elapsed_seconds:.3f})"
        )


class Evaluator(abc.ABC):
    """Base class of every query-evaluation algorithm.

    ``engine`` selects the relational execution engine every executor the
    evaluator creates will use: ``"columnar"`` (default), ``"row"`` for the
    tuple-at-a-time interpreter, or ``"parallel"`` for the morsel-driven
    sharded engine (tunable via ``parallel``, a
    :class:`~repro.relational.parallel.ParallelConfig`; the process-wide
    default applies when omitted).  Answers are identical on every engine,
    which the differential test harness asserts for every evaluator.

    ``optimize`` (default on) runs every source plan through the cost-based
    optimizer (:mod:`repro.relational.optimizer`) before execution: predicate
    pushdown, Select+Product→Join conversion, projection pruning, constant
    folding, empty-relation short-circuit and cost-based join ordering.
    Answers are byte-identical with the optimizer off — also asserted by the
    differential harness — only the executed operator and row counts change.
    """

    #: human-readable algorithm name used in reports and figures
    name: str = "evaluator"

    def __init__(
        self,
        links: SchemaLinks | None = None,
        engine: str = DEFAULT_ENGINE,
        optimize: bool = True,
        parallel=None,
    ):
        self.links = links
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; available: {ENGINES}")
        self.engine = engine
        self.optimize = optimize
        #: optional :class:`~repro.relational.parallel.ParallelConfig` handed
        #: to every executor when ``engine="parallel"`` (ignored otherwise).
        self.parallel = parallel

    def _optimizer(self, database: Database):
        """A per-evaluation optimizer instance, or ``None`` when disabled.

        The optimizer memoizes per canonical fingerprint (guarded by data
        versions) and reads the database's lazily collected, version-keyed
        statistics catalog, so repeated identical source queries are planned
        once per evaluation.
        """
        if not self.optimize:
            return None
        from repro.relational.optimizer import Optimizer

        return Optimizer(database)

    def _executor(self, database: Database, stats: ExecutionStats, **kwargs):
        """An executor wired with this evaluator's engine/optimizer/parallel config.

        ``kwargs`` forward to :class:`~repro.relational.executor.Executor`
        (``cache=``, ``policy=``, ``inflight=``...); pass ``optimizer=None``
        explicitly to skip per-plan optimization (the MQO evaluators optimize
        up front, before their shared-subexpression analysis).
        """
        from repro.relational.executor import Executor

        kwargs.setdefault("optimizer", self._optimizer(database))
        return Executor(
            database, stats, engine=self.engine, parallel=self.parallel, **kwargs
        )

    @abc.abstractmethod
    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> EvaluationResult:
        """Evaluate the probabilistic query and return its answers and statistics."""

    def _result(
        self,
        query: TargetQuery,
        answers: ProbabilisticAnswer,
        stats: ExecutionStats,
        **details: Any,
    ) -> EvaluationResult:
        """Assemble an :class:`EvaluationResult` (shared helper)."""
        merged = dict(details)
        merged.setdefault("engine", self.engine)
        merged.setdefault("optimize", self.optimize)
        return EvaluationResult(
            evaluator=self.name,
            query=query,
            answers=answers,
            stats=stats,
            details=merged,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
