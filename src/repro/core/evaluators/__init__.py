"""Evaluation algorithms for probabilistic queries over possible mappings.

========== =========================================================
name       algorithm
========== =========================================================
basic      one source query per mapping (Section III-B.1)
e-basic    one source query per *distinct* reformulation (III-B.2)
e-mqo      multiple-query optimisation over the distinct queries (III-B.3)
q-sharing  partition-tree grouping + basic over representatives (IV)
o-sharing  operator-level sharing over the u-trace (V-VI)
top-k      bound-pruned top-k on top of o-sharing (VII)
batch      shared execution across a workload of target queries
anytime    budgeted o-sharing with sound probability intervals
========== =========================================================
"""

from repro.core.evaluators.anytime import AnytimeEvaluator
from repro.core.evaluators.base import (
    PHASE_AGGREGATION,
    PHASE_ANYTIME,
    PHASE_EVALUATION,
    PHASE_PLANNING,
    PHASE_REWRITING,
    EvaluationResult,
    Evaluator,
    SharedState,
)
from repro.core.evaluators.basic import BasicEvaluator
from repro.core.evaluators.batch import BatchEvaluator, BatchResult, evaluate_many
from repro.core.evaluators.ebasic import EBasicEvaluator, cluster_source_queries
from repro.core.evaluators.emqo import EMQOEvaluator, MemoizingExecutor, build_global_plan
from repro.core.evaluators.osharing import OSharingEvaluator
from repro.core.evaluators.qsharing import QSharingEvaluator
from repro.core.evaluators.topk import TopKEvaluator

#: Registry of the exact-answer evaluators, keyed by their public name.
EVALUATORS = {
    BasicEvaluator.name: BasicEvaluator,
    EBasicEvaluator.name: EBasicEvaluator,
    EMQOEvaluator.name: EMQOEvaluator,
    QSharingEvaluator.name: QSharingEvaluator,
    OSharingEvaluator.name: OSharingEvaluator,
    BatchEvaluator.name: BatchEvaluator,
    AnytimeEvaluator.name: AnytimeEvaluator,
}


def make_evaluator(name: str, links=None, **options) -> Evaluator:
    """Instantiate an exact-answer evaluator by its public name.

    An unknown name raises ``ValueError`` listing the valid choices (with a
    did-you-mean suggestion) — the same boundary validation
    :class:`~repro.policy.ExecutionPolicy` applies.
    """
    from repro.policy import validate_choice

    key = validate_choice("method", name, EVALUATORS)
    return EVALUATORS[key](links=links, **options)


__all__ = [
    "PHASE_AGGREGATION",
    "PHASE_ANYTIME",
    "PHASE_EVALUATION",
    "PHASE_PLANNING",
    "PHASE_REWRITING",
    "AnytimeEvaluator",
    "EvaluationResult",
    "Evaluator",
    "SharedState",
    "BasicEvaluator",
    "BatchEvaluator",
    "BatchResult",
    "evaluate_many",
    "EBasicEvaluator",
    "cluster_source_queries",
    "EMQOEvaluator",
    "MemoizingExecutor",
    "build_global_plan",
    "OSharingEvaluator",
    "QSharingEvaluator",
    "TopKEvaluator",
    "EVALUATORS",
    "make_evaluator",
]
