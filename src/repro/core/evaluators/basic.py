"""The *basic* evaluator (Section III-B.1 of the paper).

For every possible mapping, the target query is reformulated into a source
query and executed against the source instance.  Every tuple obtained through
mapping ``m_i`` carries probability ``Pr(m_i)``; finally, duplicate answer
tuples obtained through different mappings have their probabilities summed.

This is the reference algorithm: everything else in the paper is an
optimisation that must return exactly the same probabilistic answer.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.answer import ProbabilisticAnswer
from repro.core.evaluators.base import (
    PHASE_AGGREGATION,
    PHASE_EVALUATION,
    PHASE_REWRITING,
    EvaluationResult,
    Evaluator,
)
from repro.core.reformulation import (
    UnmatchedAttributeError,
    extract_answers,
    reformulate_query,
)
from repro.core.target_query import TargetQuery
from repro.matching.mappings import Mapping, MappingSet
from repro.relational.database import Database
from repro.relational.stats import ExecutionStats


class BasicEvaluator(Evaluator):
    """Evaluate the query once per possible mapping (the paper's ``basic``)."""

    name = "basic"

    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> EvaluationResult:
        return self.evaluate_mappings(query, mappings, database)

    def evaluate_mappings(
        self,
        query: TargetQuery,
        mappings: Iterable[Mapping],
        database: Database,
    ) -> EvaluationResult:
        """Evaluate over an explicit list of mappings.

        q-sharing reuses this entry point with its representative mappings
        (Step 3 of Algorithm 1), which is why it accepts any iterable rather
        than only a :class:`~repro.matching.mappings.MappingSet`.
        """
        stats = ExecutionStats()
        executor = self._executor(database, stats)
        answers = ProbabilisticAnswer()
        evaluated_queries = 0

        for mapping in mappings:
            with stats.phase(PHASE_REWRITING):
                try:
                    source_query = reformulate_query(query, mapping, self.links)
                except UnmatchedAttributeError:
                    source_query = None
                stats.count_reformulation()
            if source_query is None:
                with stats.phase(PHASE_AGGREGATION):
                    answers.add_empty(mapping.probability)
                continue
            with stats.phase(PHASE_EVALUATION):
                result = executor.execute_query(source_query)
                evaluated_queries += 1
            with stats.phase(PHASE_AGGREGATION):
                tuples = extract_answers(query, mapping, result)
                if tuples:
                    answers.add_tuples(tuples, mapping.probability)
                else:
                    answers.add_empty(mapping.probability)

        return self._result(
            query,
            answers,
            stats,
            evaluated_source_queries=evaluated_queries,
        )
