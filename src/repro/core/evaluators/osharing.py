"""The *o-sharing* evaluator (Sections V-VI, Algorithm 2 of the paper).

o-sharing interleaves query rewriting and operator execution.  The state of a
partially executed query is an *e-unit* (plan + mapping set); executing the
e-unit's next operator once per mapping *partition* — rather than once per
mapping — lets groups of mappings share the result of a source operator even
when their full source queries differ.  The tree of e-units explored this way
is the *u-trace*.

The operator to execute next is chosen by a pluggable selection strategy
(Random / SNF / SEF, Section VI-A); the chosen operator is reformulated with
the rules of Section VI-B and executed, and its result replaces it in the
plan of the child e-units.
"""

from __future__ import annotations

from repro.core.answer import ProbabilisticAnswer
from repro.core.evaluators.base import (
    PHASE_AGGREGATION,
    PHASE_EVALUATION,
    PHASE_REWRITING,
    EvaluationResult,
    Evaluator,
)
from repro.core.eunit import CandidateOperator, EUnit, UTrace, apply_execution, candidate_operators
from repro.core.links import SchemaLinks
from repro.core.operator_selection import SelectionStrategy, make_strategy, partition_for
from repro.core.partition_tree import partition, represent
from repro.core.reformulation import (
    UnmatchedAttributeError,
    build_scan_plan,
    extract_answers,
    reformulate_operator,
)
from repro.core.target_query import TargetQuery
from repro.matching.mappings import Mapping, MappingSet
from repro.relational.algebra import Materialized, Scan
from repro.relational.database import Database
from repro.relational.executor import DEFAULT_ENGINE, Executor
from repro.relational.relation import Relation
from repro.relational.stats import ExecutionStats


class OSharingEvaluator(Evaluator):
    """Operator-level sharing over the u-trace (the paper's ``o-sharing``)."""

    name = "o-sharing"

    def __init__(
        self,
        links: SchemaLinks | None = None,
        strategy: str | SelectionStrategy = "sef",
        seed: int = 0,
        prune_empty: bool = True,
        engine: str = DEFAULT_ENGINE,
        optimize: bool = True,
        parallel=None,
        shared=None,
    ):
        super().__init__(
            links, engine=engine, optimize=optimize, parallel=parallel, shared=shared
        )
        self.strategy = make_strategy(strategy, seed) if isinstance(strategy, str) else strategy
        #: the empty-intermediate shortcut (Case 2 of ``run_qt``); disabling it
        #: is only useful for the ablation benchmark.
        self.prune_empty = prune_empty

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> EvaluationResult:
        stats = ExecutionStats()
        executor = self._executor(database, stats)
        answers = ProbabilisticAnswer()

        # Steps 1-3 of Algorithm 2: partition, represent, initialise the u-trace.
        with stats.phase(PHASE_REWRITING):
            partitions = partition(query.partition_keys, mappings)
            stats.count_partitions(len(partitions))
            representatives = represent(partitions)
        root = EUnit(plan=query.plan, mappings=representatives)
        trace = UTrace(root)

        # Step 4: recursive evaluation of the u-trace.
        self._run_qt(root, query, executor, answers, stats, trace)

        stats.count_eunits(
            created=trace.units_created,
            pruned=trace.units_pruned_empty,
            mappings=trace.mappings_evaluated,
        )
        return self._result(
            query,
            answers,
            stats,
            strategy=self.strategy.name,
            representative_mappings=len(representatives),
            **trace.snapshot(),
        )

    # ------------------------------------------------------------------ #
    def _run_qt(
        self,
        unit: EUnit,
        query: TargetQuery,
        executor: Executor,
        answers: ProbabilisticAnswer,
        stats: ExecutionStats,
        trace: UTrace,
    ) -> None:
        """The recursive ``run_qt`` routine of Algorithm 2."""
        # Case 1: the plan is a single relation — emit its tuples as answers.
        if unit.is_fully_evaluated:
            with stats.phase(PHASE_AGGREGATION):
                self._emit(unit, query, answers, trace)
            return

        # Case 2: an intermediate relation is empty — the answer is empty for
        # every mapping of the unit.
        if self.prune_empty and unit.has_empty_intermediate():
            with stats.phase(PHASE_AGGREGATION):
                answers.add_empty(unit.probability)
            trace.pruned(unit)
            return

        # Case 3: pick the next operator, execute it once per mapping
        # partition and recurse into the child e-units.
        for child in self._expand(unit, query, executor, answers, stats, trace):
            self._run_qt(child, query, executor, answers, stats, trace)

    def _expand(
        self,
        unit: EUnit,
        query: TargetQuery,
        executor: Executor,
        answers: ProbabilisticAnswer,
        stats: ExecutionStats,
        trace: UTrace,
    ) -> list[EUnit]:
        """Execute the chosen next operator and build the child e-units."""
        children: list[EUnit] = []
        with stats.phase(PHASE_REWRITING):
            choice = self._choose(unit, query)
            stats.count_partitions(choice.partition_count)
        unit.next_op = choice.candidate

        for group in choice.partitions:
            representative = group[0]
            with stats.phase(PHASE_REWRITING):
                try:
                    source_plan = self._reformulate(query, representative, choice)
                except UnmatchedAttributeError:
                    source_plan = None
                stats.count_reformulation()
            if source_plan is None:
                with stats.phase(PHASE_AGGREGATION):
                    answers.add_empty(sum(mapping.probability for mapping in group))
                continue
            with stats.phase(PHASE_EVALUATION):
                result = executor.execute(source_plan)
            child_plan = self._next_plan(unit, query, choice, result)
            child = unit.spawn(child_plan, group)
            trace.created(child)
            children.append(child)
        return children

    # ------------------------------------------------------------------ #
    def _choose(self, unit: EUnit, query: TargetQuery):
        candidates = candidate_operators(unit.plan, query)
        if candidates:
            return self.strategy.choose(unit, candidates, query)
        # Degenerate plan: a bare target scan with no operators left.  Treat
        # the scan itself as the "operator" so that evaluation can finish.
        if isinstance(unit.plan, Scan):
            return partition_for(query, CandidateOperator(operator=unit.plan), unit.mappings)
        raise RuntimeError(
            f"no executable operator found in plan {unit.plan.canonical()!r}"
        )

    def _reformulate(self, query: TargetQuery, mapping: Mapping, choice):
        operator = choice.candidate.operator
        if isinstance(operator, Scan):
            return build_scan_plan(query, mapping, operator.label, self.links)
        return reformulate_operator(
            query,
            mapping,
            operator,
            self.links,
            pushdown_leaf=choice.candidate.pushdown_leaf,
        )

    def _next_plan(self, unit: EUnit, query: TargetQuery, choice, result: Relation):
        materialized = Materialized(result, label=f"u{unit.unit_id}")
        if isinstance(choice.candidate.operator, Scan):
            return unit.plan.replace(choice.candidate.operator, materialized)
        return apply_execution(unit.plan, choice.candidate, materialized)

    def _emit(
        self,
        unit: EUnit,
        query: TargetQuery,
        answers: ProbabilisticAnswer,
        trace: UTrace,
    ) -> None:
        """Case 1: turn a fully evaluated e-unit into probabilistic answers."""
        relation = unit.result.relation
        tuples = extract_answers(query, unit.mappings[0], relation)
        if tuples:
            answers.add_tuples(tuples, unit.probability)
            trace.answered(unit)
        else:
            answers.add_empty(unit.probability)
            trace.pruned(unit)
