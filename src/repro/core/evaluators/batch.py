"""Batch evaluation: amortise work across a *workload* of target queries.

The paper's Figure 11(a) runs each Table III query independently; a serving
deployment instead sees a stream of target queries over one mapping set and
one source instance, with heavy repetition and heavy overlap between the
reformulated source queries.  :class:`BatchEvaluator` exploits both:

* **reformulation/clustering is amortised** — a target query that appears
  several times in the workload is reformulated and clustered once;
* **planning is global** — one MQO shared-subexpression analysis runs over
  the source queries of the *entire* workload (linear-time occurrence
  counting by default, rather than e-MQO's deliberately quadratic pairwise
  confirmation), so subexpressions common to *different* target queries are
  shared too;
* **execution is shared** — a single bounded
  :class:`~repro.relational.plancache.PlanCache`, attached to the database's
  invalidation hooks, serves every query in the workload;
* **execution is concurrent** — with ``engine="parallel"``, independent
  queries of the workload run at the same time on a dedicated thread pool
  (one executor and one stats object per query), while shared
  materializations selected by the global plan are computed exactly once
  behind a future (:class:`~repro.relational.parallel.InflightComputations`):
  the first query to reach a shared sub-plan executes it, every concurrent
  query waiting on it receives the finished relation and accounts it as a
  plan-cache hit.

Answers are identical to running ``e-basic``/``e-MQO`` per query — the batch
engine is an optimisation, not a new semantics — which the cross-evaluator
equivalence tests assert within ``PROBABILITY_TOLERANCE``.  Under concurrent
execution the answers and the workload-total operator counts are unchanged;
only scheduling-dependent attribution varies: which query a cache hit lands
on, and the plan-cache snapshot's lookup count (a query served by another
query's in-flight future records its hit in executor stats without probing
the cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.core.answer import ProbabilisticAnswer
from repro.core.evaluators.base import (
    PHASE_AGGREGATION,
    PHASE_EVALUATION,
    PHASE_PLANNING,
    PHASE_REWRITING,
    EvaluationResult,
    Evaluator,
)
from repro.core.evaluators.ebasic import DistinctSourceQuery, cluster_source_queries
from repro.core.evaluators.emqo import build_global_plan
from repro.core.reformulation import extract_answers
from repro.core.target_query import TargetQuery
from repro.matching.mappings import MappingSet
from repro.relational.database import Database
from repro.relational.executor import DEFAULT_ENGINE
from repro.relational.plancache import PlanCache
from repro.relational.stats import ExecutionStats


@dataclass
class BatchResult:
    """The outcome of evaluating a workload of target queries together."""

    #: one :class:`EvaluationResult` per workload query, in workload order
    results: list[EvaluationResult]
    #: aggregate statistics across the whole workload (planning included)
    stats: ExecutionStats
    #: plan-cache effectiveness snapshot (hits, misses, evictions, hit rate)
    plan_cache: dict[str, Any]
    #: workload-level counters (distinct queries, shared subexpressions, ...)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across all recorded phases."""
        return self.stats.total_seconds

    @property
    def source_operators(self) -> int:
        """Total source operators executed for the workload."""
        return self.stats.source_operators

    def summary(self) -> dict[str, Any]:
        """A flat summary dict used by the benchmark reporting layer."""
        return {
            "queries": len(self.results),
            "seconds": self.total_seconds,
            "source_queries": self.stats.source_queries,
            "source_operators": self.stats.source_operators,
            "reformulations": self.stats.reformulations,
            "plan_cache_hits": self.stats.plan_cache_hits,
            "plan_cache_misses": self.stats.plan_cache_misses,
            "operators_saved": self.stats.operators_saved,
            "plan_cache": dict(self.plan_cache),
            **self.details,
        }

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[EvaluationResult]:
        return iter(self.results)


class BatchEvaluator(Evaluator):
    """Shared-execution evaluation of many target queries (``evaluate_many``).

    Parameters
    ----------
    links:
        Optional source-schema join links shared by all reformulations.
    cache_size:
        Bound of the shared :class:`PlanCache` (entries, LRU-evicted).
    exhaustive_planning:
        Use e-MQO's quadratic pairwise confirmation instead of linear
        occurrence counting when building the workload's global plan.  Only
        useful to study planning cost; the selected shared set is the same.
    """

    name = "batch"

    def __init__(
        self,
        links=None,
        cache_size: int = 4096,
        exhaustive_planning: bool = False,
        engine: str = DEFAULT_ENGINE,
        optimize: bool = True,
        parallel=None,
        shared=None,
    ):
        super().__init__(
            links, engine=engine, optimize=optimize, parallel=parallel, shared=shared
        )
        self.cache_size = cache_size
        self.exhaustive_planning = exhaustive_planning

    def _parallel_config(self):
        """The effective :class:`ParallelConfig` (explicit, else process default)."""
        if self.parallel is not None:
            return self.parallel
        from repro.relational.parallel import default_config

        return default_config()

    def _query_workers(self, queries: int) -> int:
        """Concurrent queries to run (1 unless ``engine="parallel"``)."""
        if self.engine != "parallel" or queries <= 1:
            return 1
        return max(1, min(self._parallel_config().resolved_workers(), queries))

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> EvaluationResult:
        """Single-query entry point (a workload of one)."""
        return self.evaluate_many([query], mappings, database).results[0]

    def evaluate_many(
        self,
        queries: Sequence[TargetQuery],
        mappings: MappingSet,
        database: Database,
    ) -> BatchResult:
        """Evaluate every query of the workload with shared execution.

        A session-owned plan cache (injected shared state) persists *across*
        ``evaluate_many`` calls — a repeated workload is answered from the
        shared materializations the first pass stored.  One-shot use builds
        a throwaway cache wired to the database's invalidation hooks for
        exactly this call.
        """
        queries = list(queries)
        cache = self._shared_cache(database)
        if cache is not None:
            return self._evaluate_many(queries, mappings, database, cache)
        cache = PlanCache(maxsize=self.cache_size)
        cache.attach(database)
        try:
            return self._evaluate_many(queries, mappings, database, cache)
        finally:
            cache.detach(database)

    # ------------------------------------------------------------------ #
    def _evaluate_many(
        self,
        queries: list[TargetQuery],
        mappings: MappingSet,
        database: Database,
        cache: PlanCache,
    ) -> BatchResult:
        batch_stats = ExecutionStats()
        # Per-call plan-cache reporting even on a long-lived session cache:
        # hits/misses/savings come from this call's own ExecutionStats
        # (attributed per executor, so concurrent query_many calls on one
        # session cannot contaminate each other); only eviction/invalidation
        # counts — which live on the cache alone — use a since-entry delta.
        cache_since = cache.stats.snapshot()

        # Phase 1 — rewriting, amortised: cluster once per *distinct* target
        # query; repeated queries reuse the clustering without re-reformulating.
        clusters: dict[str, tuple[list[DistinctSourceQuery], float]] = {}
        first_stats: dict[str, ExecutionStats] = {}
        keys: list[str] = []
        for query in queries:
            key = self._query_key(query)
            keys.append(key)
            if key not in clusters:
                stats = ExecutionStats()
                with stats.phase(PHASE_REWRITING):
                    clusters[key] = cluster_source_queries(
                        query, mappings, self.links, stats
                    )
                first_stats[key] = stats

        # Phase 2 — one global plan over the whole workload.  Plans are
        # optimized first (the optimizer memo deduplicates identical source
        # queries across the workload) and collected with workload
        # multiplicity so that a repeated target query's entire source
        # queries count as shared subexpressions *of the optimized form*.
        planning = ExecutionStats()
        with planning.phase(PHASE_PLANNING):
            optimizer = self._optimizer(database)
            optimized: dict[str, list] = {}
            for key, (distinct, _) in clusters.items():
                if optimizer is not None:
                    optimized[key] = [
                        optimizer.optimize(entry.plan, planning) for entry in distinct
                    ]
                else:
                    optimized[key] = [entry.plan for entry in distinct]
            plans = []
            for key in keys:
                plans.extend(optimized[key])
            global_plan = build_global_plan(plans, exhaustive=self.exhaustive_planning)
            policy = global_plan.materialization_policy()
        batch_stats.merge(planning)

        # Phase 3 — shared execution through one plan cache.  Serial engines
        # reuse one executor (swapping the per-query stats); the parallel
        # engine runs the workload's queries concurrently on a dedicated
        # thread pool, one executor and one stats object per query, with
        # shared materializations computed once behind a future.  (The
        # inter-query pool is distinct from the morsel pool the executors
        # submit operator shards to, so the two levels cannot deadlock.)
        per_query_stats = [
            first_stats.pop(key, None) or ExecutionStats() for key in keys
        ]

        def evaluate_one(query, key, stats, executor) -> EvaluationResult:
            distinct, unmatched_probability = clusters[key]
            answers = ProbabilisticAnswer()
            if unmatched_probability:
                answers.add_empty(unmatched_probability)
            for source_query, plan in zip(distinct, optimized[key]):
                with stats.phase(PHASE_EVALUATION):
                    result = executor.execute_query(plan)
                with stats.phase(PHASE_AGGREGATION):
                    tuples = extract_answers(query, source_query.representative, result)
                    if tuples:
                        answers.add_tuples(tuples, source_query.probability)
                    else:
                        answers.add_empty(source_query.probability)
            return self._result(
                query,
                answers,
                stats,
                distinct_source_queries=len(distinct),
                plan_cache_hits=stats.plan_cache_hits,
                plan_cache_misses=stats.plan_cache_misses,
                operators_saved=stats.operators_saved,
            )

        workers = self._query_workers(len(queries))
        if workers > 1:
            from repro.relational.parallel import InflightComputations
            from repro.relational.parallel.pool import map_ordered

            # The cross-call inflight registry is only shared alongside the
            # session cache it deduplicates for: its keys are
            # database-agnostic fingerprints, so sharing it without the
            # attached cache could hand one database's materialization to
            # another's query.
            shared = self._shared_state(database)
            if (
                shared is not None
                and shared.inflight is not None
                and self._shared_cache(database) is cache
            ):
                inflight = shared.inflight
            else:
                inflight = InflightComputations()

            def job(index: int) -> EvaluationResult:
                executor = self._executor(
                    database,
                    per_query_stats[index],
                    cache=cache,
                    policy=policy,
                    optimizer=None,
                    inflight=inflight,
                )
                return evaluate_one(
                    queries[index], keys[index], per_query_stats[index], executor
                )

            pools = shared.pools if shared is not None else None
            pool_cap = workers
            if pools is not None:
                # Key the long-lived inter-query pool at the config's full
                # worker count, not at min(workers, len(queries)): workloads
                # of varying size then share ONE pool per session instead of
                # accumulating one idle pool per distinct size (threads grow
                # lazily, so a wide pool serving few queries costs nothing).
                pool_cap = self._parallel_config().resolved_workers()
            results = map_ordered(pool_cap, job, range(len(queries)), pools=pools)
        else:
            executor = self._executor(
                database, ExecutionStats(), cache=cache, policy=policy, optimizer=None
            )
            results = []
            for query, key, stats in zip(queries, keys, per_query_stats):
                executor.stats = stats
                results.append(evaluate_one(query, key, stats, executor))
        for result in results:
            batch_stats.merge(result.stats)

        details = {
            "queries": len(queries),
            "distinct_target_queries": len(clusters),
            "shared_subexpressions": global_plan.materialisation_points,
            "plan_comparisons": global_plan.comparisons,
            "engine": self.engine,
            "optimize": self.optimize,
        }
        if workers > 1:
            details["query_workers"] = workers
        lookups = batch_stats.plan_cache_hits + batch_stats.plan_cache_misses
        plan_cache = {
            "hits": batch_stats.plan_cache_hits,
            "misses": batch_stats.plan_cache_misses,
            "evictions": cache.stats.evictions - cache_since["evictions"],
            "invalidations": cache.stats.invalidations - cache_since["invalidations"],
            "operators_saved": batch_stats.operators_saved,
            "hit_rate": round(batch_stats.plan_cache_hits / lookups, 4) if lookups else 0.0,
        }
        return BatchResult(
            results=results,
            stats=batch_stats,
            plan_cache=plan_cache,
            details=details,
        )

    @staticmethod
    def _query_key(query: TargetQuery) -> str:
        """Clustering memo key: two queries with one key reformulate alike."""
        return f"{query.schema.name}::{query.plan.canonical()}"


def evaluate_many(
    queries: Sequence[TargetQuery],
    mappings: MappingSet,
    database: Database,
    links=None,
    **options: Any,
) -> BatchResult:
    """Evaluate a workload with shared execution (deprecated one-shot entry).

    .. deprecated::
        Use :class:`repro.Session` / :func:`repro.connect` —
        ``session.query_many(queries)`` — so the plan cache the workload
        warms keeps serving the *next* workload too.  This shim runs a
        throwaway session per call: answers are byte-identical, the
        cross-call amortisation is lost.

    Reformulation/clustering is amortised across repeated queries, one MQO
    global plan covers the whole workload, and a single bounded plan cache
    serves every query.  With ``engine="parallel"`` the workload's queries
    additionally run concurrently (inter-query parallelism) with shared
    materializations computed once behind a future.  ``options`` are
    :class:`repro.ExecutionPolicy` fields (``cache_size=``, ``engine=``,
    ``optimize=``, ``parallel=``, ``exhaustive_planning=``); unknown names
    raise ``ValueError`` listing the valid choices.  Returns a
    :class:`BatchResult` with one
    :class:`~repro.core.evaluators.base.EvaluationResult` per query in
    workload order plus workload-aggregate statistics and a plan-cache
    snapshot.
    """
    from repro.core import _deprecated_one_shot

    _deprecated_one_shot("evaluate_many", "session.query_many(queries)")
    from repro.policy import ExecutionPolicy
    from repro.relational.parallel import default_manager
    from repro.session import Session

    policy = ExecutionPolicy.from_options(method="batch", **options)
    with Session(
        database, mappings, links=links, policy=policy, pools=default_manager()
    ) as session:
        return session.query_many(queries)
