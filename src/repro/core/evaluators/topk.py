"""The probabilistic top-k evaluator (Section VII, Algorithm 4 of the paper).

A probabilistic top-k query returns the ``k`` answer tuples with the highest
probabilities among those with non-zero probability.  Rather than computing
every answer's exact probability with o-sharing and sorting, the top-k
algorithm expands the u-trace only partially: every answer tuple carries a
lower bound (``lb`` — probability mass already confirmed) and an upper bound
(``ub`` — the most it could still reach), and two global bounds are kept:

* ``LB`` — the lower bound of the tuple currently ranked ``k``-th, and
* ``UB`` — the maximum probability any tuple *not yet seen* could attain.

As soon as every tuple ranked below ``k`` has ``ub <= LB`` and ``UB <= LB``,
the remaining e-units cannot change the top-k answer set and the traversal
stops (the paper's Table II walk-through).

Partitions are visited in decreasing order of probability mass, which makes
the bounds tighten as fast as possible; the paper leaves the visiting order
unspecified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.answer import ProbabilisticAnswer, _sort_key
from repro.core.evaluators.base import (
    PHASE_AGGREGATION,
    PHASE_EVALUATION,
    PHASE_REWRITING,
    EvaluationResult,
    Evaluator,
)
from repro.core.eunit import CandidateOperator, EUnit, UTrace, apply_execution, candidate_operators
from repro.core.links import SchemaLinks
from repro.core.operator_selection import SelectionStrategy, make_strategy, partition_for
from repro.core.partition_tree import partition, represent
from repro.core.reformulation import (
    UnmatchedAttributeError,
    build_scan_plan,
    extract_answers,
    reformulate_operator,
)
from repro.core.target_query import TargetQuery
from repro.matching.mappings import Mapping, MappingSet
from repro.relational.algebra import Materialized, Scan
from repro.relational.database import Database
from repro.relational.executor import DEFAULT_ENGINE, Executor
from repro.relational.relation import Relation
from repro.relational.stats import ExecutionStats


@dataclass
class BoundedTuple:
    """One candidate answer tuple with its probability bounds."""

    values: tuple
    lb: float
    ub: float


class TopKEvaluator(Evaluator):
    """Bound-pruned top-k evaluation over the u-trace (Algorithm 4)."""

    name = "top-k"

    def __init__(
        self,
        k: int,
        links: SchemaLinks | None = None,
        strategy: str | SelectionStrategy = "sef",
        seed: int = 0,
        engine: str = DEFAULT_ENGINE,
        optimize: bool = True,
        parallel=None,
        shared=None,
    ):
        super().__init__(
            links, engine=engine, optimize=optimize, parallel=parallel, shared=shared
        )
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.strategy = make_strategy(strategy, seed) if isinstance(strategy, str) else strategy

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> EvaluationResult:
        stats = ExecutionStats()
        executor = self._executor(database, stats)

        with stats.phase(PHASE_REWRITING):
            partitions = partition(query.partition_keys, mappings)
            stats.count_partitions(len(partitions))
            representatives = represent(partitions)
        root = EUnit(plan=query.plan, mappings=representatives)
        trace = UTrace(root)

        state = _TopKState(k=self.k, ub=sum(m.probability for m in representatives))
        stopped_early = self._run_qt_topk(root, query, executor, stats, trace, state)

        answers = ProbabilisticAnswer()
        for entry in state.top_k():
            answers.add(entry.values, entry.lb)

        stats.count_eunits(
            created=trace.units_created,
            pruned=trace.units_pruned_empty,
            mappings=trace.mappings_evaluated,
        )
        return self._result(
            query,
            answers,
            stats,
            strategy=self.strategy.name,
            k=self.k,
            stopped_early=stopped_early,
            candidate_tuples=len(state.entries),
            representative_mappings=len(representatives),
            **trace.snapshot(),
        )

    # ------------------------------------------------------------------ #
    def _run_qt_topk(
        self,
        unit: EUnit,
        query: TargetQuery,
        executor: Executor,
        stats: ExecutionStats,
        trace: UTrace,
        state: "_TopKState",
    ) -> bool:
        """The recursive ``run_qt_topk`` routine; True means the top-k set is final."""
        # Case 1: the plan is a single relation.
        if unit.is_fully_evaluated:
            with stats.phase(PHASE_AGGREGATION):
                tuples = extract_answers(query, unit.mappings[0], unit.result.relation)
                done = state.decide(unit.probability, tuples)
            trace.answered(unit)
            return done

        # Case 2: an intermediate relation is empty — no tuple from this unit.
        if unit.has_empty_intermediate():
            with stats.phase(PHASE_AGGREGATION):
                done = state.decide(unit.probability, [])
            trace.pruned(unit)
            return done

        # Case 3: execute the next operator partition by partition, recursing
        # into each child; stop as soon as the top-k set is final.
        with stats.phase(PHASE_REWRITING):
            choice = self._choose(unit, query)
            stats.count_partitions(choice.partition_count)
        unit.next_op = choice.candidate

        groups = sorted(
            choice.partitions,
            key=lambda group: -sum(mapping.probability for mapping in group),
        )
        for group in groups:
            representative = group[0]
            with stats.phase(PHASE_REWRITING):
                try:
                    source_plan = self._reformulate(query, representative, choice)
                except UnmatchedAttributeError:
                    source_plan = None
                stats.count_reformulation()
            if source_plan is None:
                probability = sum(mapping.probability for mapping in group)
                with stats.phase(PHASE_AGGREGATION):
                    if state.decide(probability, []):
                        return True
                continue
            with stats.phase(PHASE_EVALUATION):
                result = executor.execute(source_plan)
            child = unit.spawn(self._next_plan(unit, choice, result), group)
            trace.created(child)
            if self._run_qt_topk(child, query, executor, stats, trace, state):
                return True
        return False

    # ------------------------------------------------------------------ #
    def _choose(self, unit: EUnit, query: TargetQuery):
        candidates = candidate_operators(unit.plan, query)
        if candidates:
            return self.strategy.choose(unit, candidates, query)
        if isinstance(unit.plan, Scan):
            return partition_for(query, CandidateOperator(operator=unit.plan), unit.mappings)
        raise RuntimeError(f"no executable operator found in plan {unit.plan.canonical()!r}")

    def _reformulate(self, query: TargetQuery, mapping: Mapping, choice):
        operator = choice.candidate.operator
        if isinstance(operator, Scan):
            return build_scan_plan(query, mapping, operator.label, self.links)
        return reformulate_operator(
            query,
            mapping,
            operator,
            self.links,
            pushdown_leaf=choice.candidate.pushdown_leaf,
        )

    def _next_plan(self, unit: EUnit, choice, result: Relation):
        materialized = Materialized(result, label=f"u{unit.unit_id}")
        if isinstance(choice.candidate.operator, Scan):
            return unit.plan.replace(choice.candidate.operator, materialized)
        return apply_execution(unit.plan, choice.candidate, materialized)


class _TopKState:
    """The heap, LB and UB bookkeeping of Algorithm 4."""

    def __init__(self, k: int, ub: float):
        self.k = k
        self.LB = 0.0
        self.UB = ub
        self.entries: dict[tuple, BoundedTuple] = {}

    # -- the decide_result routine --------------------------------------- #
    def decide(self, probability: float, tuples: list[tuple]) -> bool:
        """Fold one e-unit's result into the bounds; True when top-k is final."""
        for values in tuples:
            entry = self.entries.get(values)
            if entry is not None:
                entry.lb += probability
            elif self.UB > self.LB:
                self.entries[values] = BoundedTuple(values=values, lb=probability, ub=self.UB)
        self.UB -= probability
        ranked = self.ranked()
        if len(ranked) >= self.k:
            self.LB = ranked[self.k - 1].lb
        else:
            self.LB = 0.0
        return self._finished(ranked)

    def _finished(self, ranked: list[BoundedTuple]) -> bool:
        if self.UB > self.LB + 1e-12:
            return False
        if len(ranked) < self.k:
            # Fewer than k candidates seen so far; only finished when no more
            # probability mass remains to discover new tuples.
            return self.UB <= 1e-12
        beyond_k = ranked[self.k :]
        # A candidate's probability can only grow by mass not yet processed,
        # so its effective upper bound is min(recorded ub, lb + UB).  Using it
        # stops the traversal earlier than the recorded (static) ub alone.
        return all(
            min(entry.ub, entry.lb + self.UB) <= self.LB + 1e-12 for entry in beyond_k
        )

    # ------------------------------------------------------------------ #
    def ranked(self) -> list[BoundedTuple]:
        """Candidate tuples ordered by decreasing lower bound.

        Equal-probability ties break on the canonical tuple sort key (the
        same ``_sort_key`` :meth:`ProbabilisticAnswer.ranked` uses), not on
        ``str(values)`` — ``("b",)`` and ``(2,)`` stringify ambiguously, and
        the anytime ranked prefix must be replay-stable under serial_replay.
        """
        return sorted(
            self.entries.values(), key=lambda entry: (-entry.lb, _sort_key(entry.values))
        )

    def top_k(self) -> list[BoundedTuple]:
        """The current top-k candidates (non-zero lower bound only)."""
        return [entry for entry in self.ranked() if entry.lb > 0][: self.k]
