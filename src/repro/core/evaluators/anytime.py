"""The anytime evaluator: budgeted o-sharing with sound probability intervals.

``method="anytime"`` explores the same u-trace as o-sharing (Algorithm 2) —
same partitioning, same operator-selection strategy, same reformulations,
same executions — but schedules partition groups through the priority
frontier of :mod:`repro.anytime.progress` (highest probability mass first)
instead of depth-first recursion, and checkpoints a
:class:`~repro.anytime.budget.Budget` between operator executions.

Two properties follow:

* **No budget ⇒ byte-identical to o-sharing.**  Exploration order cannot
  change what each e-unit computes (strategy choice and partitioning depend
  only on the unit and query; engine results are order-independent), and the
  contribution log's replay keys reproduce o-sharing's exact accumulation
  order — so a drained frontier yields the exact evaluator's answer float
  for float, with identical operator/reformulation/partition counters.
* **Any budget ⇒ sound, tightening intervals.**  Mass moves only from the
  frontier to the contribution log, so every tuple's ``[lb, lb + U]``
  interval contains its exact probability and both bounds improve
  monotonically across :meth:`~repro.anytime.progress.AnytimeResult.resume`
  steps — which continue from the saved frontier without repeating work
  (the session-incremental refinement the ROADMAP asks for).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.evaluators.base import (
    PHASE_AGGREGATION,
    PHASE_ANYTIME,
    PHASE_EVALUATION,
    PHASE_REWRITING,
    Evaluator,
)
from repro.core.eunit import CandidateOperator, EUnit, UTrace, apply_execution, candidate_operators
from repro.core.links import SchemaLinks
from repro.core.operator_selection import SelectionStrategy, make_strategy, partition_for
from repro.core.partition_tree import partition, represent
from repro.core.reformulation import (
    UnmatchedAttributeError,
    build_scan_plan,
    extract_answers,
    reformulate_operator,
)
from repro.core.target_query import TargetQuery
from repro.matching.mappings import Mapping, MappingSet
from repro.relational.algebra import Materialized, Scan
from repro.relational.database import Database
from repro.relational.executor import DEFAULT_ENGINE, Executor
from repro.relational.relation import Relation
from repro.relational.stats import ExecutionStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.anytime.budget import Budget, BudgetMeter
    from repro.anytime.progress import (
        AnytimeContinuation,
        AnytimeResult,
        FrontierTask,
        ProgressState,
    )

# repro.anytime.progress subclasses EvaluationResult (this package), so the
# evaluator imports repro.anytime lazily inside its methods — a module-level
# import would close the cycle during whichever package is imported first.


class AnytimeEvaluator(Evaluator):
    """Priority-frontier o-sharing with budgets and interval answers."""

    name = "anytime"

    def __init__(
        self,
        links: SchemaLinks | None = None,
        strategy: str | SelectionStrategy = "sef",
        seed: int = 0,
        budget: Budget | dict | None = None,
        engine: str = DEFAULT_ENGINE,
        optimize: bool = True,
        parallel=None,
        shared=None,
    ):
        from repro.anytime.budget import Budget

        super().__init__(
            links, engine=engine, optimize=optimize, parallel=parallel, shared=shared
        )
        self.strategy = make_strategy(strategy, seed) if isinstance(strategy, str) else strategy
        self.budget = Budget() if budget is None else Budget.from_spec(budget)

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> AnytimeResult:
        from repro.anytime.progress import (
            AnytimeContinuation,
            AnytimeResult,
            ProgressState,
        )

        stats = ExecutionStats()
        executor = self._executor(database, stats)

        # Same initialisation as o-sharing (Algorithm 2, steps 1-3).
        with stats.phase(PHASE_REWRITING):
            partitions = partition(query.partition_keys, mappings)
            stats.count_partitions(len(partitions))
            representatives = represent(partitions)
        root = EUnit(plan=query.plan, mappings=representatives)
        trace = UTrace(root)

        state = ProgressState()
        meter = self.budget.meter()
        # Classifying/expanding the root executes no operator, so it always
        # happens — even under a zero budget the frontier is populated and
        # the unexplored mass is the whole query.
        self._schedule_unit(root, (), query, executor, state, stats, trace)
        self._drive(query, executor, state, stats, trace, meter)

        continuation = AnytimeContinuation(self, query, database, state, trace)
        continuation.representative_mappings = len(representatives)
        answers, intervals, unexplored, exhausted, converged, details = self._finalize(
            query, stats, continuation, self.budget
        )
        continuation.totals.merge(stats)
        return AnytimeResult(
            evaluator=self.name,
            query=query,
            answers=answers,
            stats=stats,
            details=details,
            intervals=intervals,
            unexplored_mass=unexplored,
            exhausted=exhausted,
            converged=converged,
            continuation=continuation,
        )

    def resume(self, continuation: AnytimeContinuation, budget: Budget) -> AnytimeResult:
        """One more drive over the saved frontier (no work is repeated).

        ``stats`` on the returned result is *cumulative* across the initial
        evaluation and every resume, so a resume-to-completion reports
        exactly the operator totals the exact evaluator would have.
        """
        from repro.anytime.progress import AnytimeResult

        step_stats = ExecutionStats()
        executor = self._executor(continuation.database, step_stats)
        meter = budget.meter()
        self._drive(
            continuation.query, executor, continuation.state, step_stats,
            continuation.trace, meter,
        )
        answers, intervals, unexplored, exhausted, converged, details = self._finalize(
            continuation.query, step_stats, continuation, budget
        )
        continuation.totals.merge(step_stats)
        cumulative = ExecutionStats()
        cumulative.merge(continuation.totals)
        result = AnytimeResult(
            evaluator=self.name,
            query=continuation.query,
            answers=answers,
            stats=cumulative,
            details=details,
            intervals=intervals,
            unexplored_mass=unexplored,
            exhausted=exhausted,
            converged=converged,
            continuation=continuation,
        )
        if continuation.observer is not None:
            continuation.observer(step_stats, result)
        return result

    # ------------------------------------------------------------------ #
    # the drive loop: budget checkpoints between operator executions
    # ------------------------------------------------------------------ #
    def _drive(
        self,
        query: TargetQuery,
        executor: Executor,
        state: ProgressState,
        stats: ExecutionStats,
        trace: UTrace,
        meter: BudgetMeter,
    ) -> None:
        while True:
            task = state.peek()
            if task is None:
                return
            if meter.expired():
                return
            # Conservative deterministic checkpoint: stop before the next
            # highest-mass group if charging it could break a limit.  Lower
            # priority groups are not considered instead — the schedule must
            # stay strictly decreasing-mass to be replayable.
            if meter.would_exceed(mappings=len(task.group), eunits=1):
                return
            state.pop()
            self._process(task, query, executor, state, stats, trace, meter)

    def _process(
        self,
        task: FrontierTask,
        query: TargetQuery,
        executor: Executor,
        state: ProgressState,
        stats: ExecutionStats,
        trace: UTrace,
        meter: BudgetMeter,
    ) -> None:
        """Reformulate + execute one partition group (o-sharing's expand body)."""
        representative = task.group[0]
        with stats.phase(PHASE_REWRITING):
            try:
                source_plan = self._reformulate(query, representative, task.choice)
            except UnmatchedAttributeError:
                source_plan = None
            stats.count_reformulation()
        if source_plan is None:
            with stats.phase(PHASE_AGGREGATION):
                state.contribute_empty(
                    task.empty_key,
                    sum(mapping.probability for mapping in task.group),
                )
            return
        with stats.phase(PHASE_EVALUATION):
            result = executor.execute(source_plan)
        meter.charge(mappings=len(task.group), eunits=1)
        child = task.unit.spawn(
            self._next_plan(task.unit, task.choice, result), task.group
        )
        trace.created(child)
        self._schedule_unit(child, task.child_key, query, executor, state, stats, trace)

    def _schedule_unit(
        self,
        unit: EUnit,
        key: tuple,
        query: TargetQuery,
        executor: Executor,
        state: ProgressState,
        stats: ExecutionStats,
        trace: UTrace,
    ) -> None:
        """Settle a unit (Cases 1-2 of ``run_qt``) or expand it onto the frontier."""
        # Case 1: fully evaluated — contribute its tuples (or empty mass).
        if unit.is_fully_evaluated:
            with stats.phase(PHASE_AGGREGATION):
                tuples = extract_answers(query, unit.mappings[0], unit.result.relation)
                if tuples:
                    state.contribute_tuples(key, tuples, unit.probability)
                    trace.answered(unit)
                else:
                    state.contribute_empty(key, unit.probability)
                    trace.pruned(unit)
            return

        # Case 2: an intermediate relation is empty — empty for every mapping.
        if unit.has_empty_intermediate():
            with stats.phase(PHASE_AGGREGATION):
                state.contribute_empty(key, unit.probability)
            trace.pruned(unit)
            return

        # Case 3: choose the next operator and schedule one frontier task per
        # mapping partition.  Choosing and partitioning execute no operator,
        # so this is budget-free — the budget gates the executions.
        with stats.phase(PHASE_REWRITING):
            choice = self._choose(unit, query)
            stats.count_partitions(choice.partition_count)
        unit.next_op = choice.candidate
        for index, group in enumerate(choice.partitions):
            state.push(key, index, unit, choice, group)

    # ------------------------------------------------------------------ #
    # finalization: replay + intervals (the phase:anytime bookkeeping)
    # ------------------------------------------------------------------ #
    def _finalize(
        self,
        query: TargetQuery,
        step_stats: ExecutionStats,
        continuation: AnytimeContinuation,
        budget: Budget,
    ):
        from repro.anytime.progress import ranking_converged

        state, trace = continuation.state, continuation.trace
        with step_stats.phase(PHASE_ANYTIME):
            answers = state.replay()
            unexplored = state.unexplored_mass()
            intervals = state.intervals(answers, unexplored)
            exhausted = state.exhausted
            converged = ranking_converged(intervals, unexplored, exhausted)
            # u-trace counters land in ExecutionStats as *deltas* so resumed
            # drives never double-count into session lifetime totals.
            snapshot = trace.snapshot()
            recorded = state.trace_recorded
            step_stats.count_eunits(
                created=snapshot["units_created"] - recorded.get("units_created", 0),
                pruned=snapshot["units_pruned_empty"]
                - recorded.get("units_pruned_empty", 0),
                mappings=snapshot["mappings_evaluated"]
                - recorded.get("mappings_evaluated", 0),
            )
            state.trace_recorded = snapshot
        details = {
            "strategy": self.strategy.name,
            "representative_mappings": continuation.representative_mappings,
            "budget": budget.describe(),
            "pending_tasks": state.pending_tasks,
            "engine": self.engine,
            "optimize": self.optimize,
            **snapshot,
        }
        return answers, intervals, unexplored, exhausted, converged, details

    # ------------------------------------------------------------------ #
    # o-sharing's per-unit machinery, shared verbatim
    # ------------------------------------------------------------------ #
    def _choose(self, unit: EUnit, query: TargetQuery):
        candidates = candidate_operators(unit.plan, query)
        if candidates:
            return self.strategy.choose(unit, candidates, query)
        if isinstance(unit.plan, Scan):
            return partition_for(query, CandidateOperator(operator=unit.plan), unit.mappings)
        raise RuntimeError(f"no executable operator found in plan {unit.plan.canonical()!r}")

    def _reformulate(self, query: TargetQuery, mapping: Mapping, choice):
        operator = choice.candidate.operator
        if isinstance(operator, Scan):
            return build_scan_plan(query, mapping, operator.label, self.links)
        return reformulate_operator(
            query,
            mapping,
            operator,
            self.links,
            pushdown_leaf=choice.candidate.pushdown_leaf,
        )

    def _next_plan(self, unit: EUnit, choice, result: Relation):
        materialized = Materialized(result, label=f"u{unit.unit_id}")
        if isinstance(choice.candidate.operator, Scan):
            return unit.plan.replace(choice.candidate.operator, materialized)
        return apply_execution(unit.plan, choice.candidate, materialized)
