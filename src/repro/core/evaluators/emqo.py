"""The *e-MQO* evaluator (Section III-B.3 of the paper).

e-MQO starts like e-basic — it reformulates every mapping and keeps the
distinct source queries — but instead of executing the distinct queries
independently it first builds a *global query plan* with a multiple-query
optimisation (MQO) algorithm in the spirit of Roy et al. / Zhou et al.: common
subexpressions across the source queries are identified and each is evaluated
only once.  The resulting plan executes the minimal number of source
operators, which is why the paper uses e-MQO as the operator-count yardstick
in Table IV; the price is an expensive plan-generation phase that grows
quickly with the number of distinct source queries (Figure 10(c)).

The implementation here reproduces both behaviours:

* plan generation enumerates every subexpression of every distinct source
  query, compares all subexpression pairs (across queries *and* within one
  query — self-join branches and union arms repeat subexpressions too) to
  find sharing opportunities, and greedily selects materialisation points by
  estimated benefit — a genuinely quadratic search, which is what makes
  e-MQO slower than e-basic on large mapping sets;
* execution materialises exactly the subexpressions the global plan selected
  through a :class:`~repro.relational.plancache.PlanCache`, so each shared
  subexpression is evaluated once and the executed-operator count is minimal.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.answer import ProbabilisticAnswer
from repro.core.evaluators.base import (
    PHASE_AGGREGATION,
    PHASE_EVALUATION,
    PHASE_PLANNING,
    PHASE_REWRITING,
    EvaluationResult,
    Evaluator,
)
from repro.core.evaluators.ebasic import cluster_source_queries
from repro.core.reformulation import extract_answers
from repro.core.target_query import TargetQuery
from repro.matching.mappings import MappingSet
from repro.relational.algebra import Materialized, PlanNode
from repro.relational.database import Database
from repro.relational.executor import DEFAULT_ENGINE, Executor
from repro.relational.plancache import (
    MaterializeAll,
    MaterializeSelected,
    PlanCache,
    plan_cost,
)
from repro.relational.stats import ExecutionStats


@dataclass(frozen=True)
class SharedSubexpression:
    """A subexpression shared by several distinct source queries."""

    canonical: str
    operator_count: int
    occurrences: int

    @property
    def benefit(self) -> int:
        """Estimated saving: operators avoided by evaluating the expression once."""
        return self.operator_count * (self.occurrences - 1)


@dataclass
class GlobalPlan:
    """The MQO global plan: queries plus the shared subexpressions to materialise."""

    queries: list[PlanNode]
    shared: list[SharedSubexpression]
    comparisons: int

    @property
    def materialisation_points(self) -> int:
        """Number of shared subexpressions selected for materialisation."""
        return len(self.shared)

    def selected_canonicals(self) -> frozenset[str]:
        """Fingerprints of the subexpressions selected for materialisation."""
        return frozenset(expression.canonical for expression in self.shared)

    def materialization_policy(self) -> MaterializeSelected:
        """The executor policy that materialises exactly the selected set."""
        return MaterializeSelected(self.selected_canonicals())


def _plan_signatures(queries: list[PlanNode]) -> list[list[tuple[str, int]]]:
    """Per query, the (fingerprint, operator cost) of every candidate node.

    Every non-:class:`Materialized` node — scans included, since the executor
    counts scans as operators too — is a candidate materialisation point.
    """
    per_query: list[list[tuple[str, int]]] = []
    for plan in queries:
        signatures = []
        for node in plan.walk():
            if not isinstance(node, Materialized):
                signatures.append((node.canonical(), plan_cost(node)))
        per_query.append(signatures)
    return per_query


def build_global_plan(queries: list[PlanNode], exhaustive: bool = True) -> GlobalPlan:
    """Identify the common subexpressions of a set of source query plans.

    The search follows the classical MQO recipe: enumerate candidate
    subexpressions per query, compare candidate pairs to confirm sharing, and
    greedily keep the candidates with the highest benefit.  Pairs are drawn
    across queries *and* within a single query, so a subexpression repeated
    inside one source query (self-join branches, union arms) is shared too.

    With ``exhaustive=True`` (e-MQO's faithful mode) the pairwise
    confirmation step is retained — it is the cost that makes e-MQO's
    planning phase expensive.  ``exhaustive=False`` computes the same shared
    set in linear time via occurrence counting; the batch serving engine uses
    it to keep planning cheap over large workloads.
    """
    per_query = _plan_signatures(queries)

    occurrences: dict[str, int] = {}
    operator_counts: dict[str, int] = {}
    comparisons = 0
    if exhaustive:
        for i, left in enumerate(per_query):
            for j in range(i, len(per_query)):
                right = per_query[j]
                for k, (left_canonical, left_size) in enumerate(left):
                    for l, (right_canonical, _) in enumerate(right):
                        if i == j and l <= k:
                            continue
                        comparisons += 1
                        if left_canonical == right_canonical:
                            occurrences.setdefault(left_canonical, 1)
                            operator_counts[left_canonical] = left_size
        # Count exact occurrences of each confirmed-shared subexpression.
        for canonical in occurrences:
            total = 0
            for signatures in per_query:
                total += sum(1 for candidate, _ in signatures if candidate == canonical)
            occurrences[canonical] = total
    else:
        totals: Counter = Counter()
        for signatures in per_query:
            for canonical, size in signatures:
                totals[canonical] += 1
                operator_counts.setdefault(canonical, size)
        occurrences = {canonical: n for canonical, n in totals.items() if n > 1}

    shared = sorted(
        (
            SharedSubexpression(
                canonical=canonical,
                operator_count=operator_counts[canonical],
                occurrences=count,
            )
            for canonical, count in occurrences.items()
            if count > 1
        ),
        key=lambda expression: (-expression.benefit, expression.canonical),
    )
    return GlobalPlan(queries=list(queries), shared=shared, comparisons=comparisons)


class MemoizingExecutor(Executor):
    """An executor that evaluates each distinct subexpression only once.

    Results are cached by canonical plan fingerprint; cache hits execute no
    operator.  Kept as the blind-memoisation baseline: e-MQO proper now
    materialises only what its global plan selected, which executes the same
    operator count without caching results that can never be reused.
    """

    def __init__(
        self,
        database: Database,
        stats: ExecutionStats | None = None,
        engine: str = DEFAULT_ENGINE,
    ):
        super().__init__(
            database,
            stats,
            cache=PlanCache(maxsize=None),
            policy=MaterializeAll(),
            engine=engine,
        )

    @property
    def cache_size(self) -> int:
        """Number of distinct subexpressions evaluated so far."""
        return len(self.cache)


class EMQOEvaluator(Evaluator):
    """Multiple-query optimisation over the distinct source queries (``e-MQO``)."""

    name = "e-mqo"

    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> EvaluationResult:
        stats = ExecutionStats()
        answers = ProbabilisticAnswer()

        with stats.phase(PHASE_REWRITING):
            distinct, unmatched_probability = cluster_source_queries(
                query, mappings, self.links, stats
            )
        if unmatched_probability:
            answers.add_empty(unmatched_probability)

        with stats.phase(PHASE_PLANNING):
            # The cost-based optimizer runs *before* the MQO analysis so that
            # shared subexpressions are detected on the plans that actually
            # execute; its per-fingerprint memo keeps repeated subplans cheap.
            optimizer = self._optimizer(database)
            if optimizer is not None:
                plans = [optimizer.optimize(entry.plan, stats) for entry in distinct]
            else:
                plans = [entry.plan for entry in distinct]
            global_plan = build_global_plan(plans)
            policy = global_plan.materialization_policy()
            # A session-owned plan cache (injected shared state) lets the
            # shared subexpressions of *previous* calls answer this one;
            # one-shot use keeps the per-evaluation cache sized to the plan.
            cache = self._shared_cache(database)
            if cache is None:
                cache = PlanCache(maxsize=max(1, global_plan.materialisation_points))

        executor = self._executor(
            database, stats, cache=cache, policy=policy, optimizer=None
        )
        for source_query, plan in zip(distinct, plans):
            with stats.phase(PHASE_EVALUATION):
                result = executor.execute_query(plan)
            with stats.phase(PHASE_AGGREGATION):
                tuples = extract_answers(query, source_query.representative, result)
                if tuples:
                    answers.add_tuples(tuples, source_query.probability)
                else:
                    answers.add_empty(source_query.probability)

        return self._result(
            query,
            answers,
            stats,
            distinct_source_queries=len(distinct),
            shared_subexpressions=global_plan.materialisation_points,
            plan_comparisons=global_plan.comparisons,
            plan_cache_hits=stats.plan_cache_hits,
            plan_cache_misses=stats.plan_cache_misses,
            operators_saved=stats.operators_saved,
        )
