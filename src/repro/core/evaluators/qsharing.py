"""The *q-sharing* evaluator (Section IV, Algorithm 1 of the paper).

q-sharing avoids reformulating the target query once per mapping.  It first
*partitions* the mapping set on the target attributes the query uses — all
mappings of a partition produce the same source query — using the partition
tree of Algorithm 3.  One *representative* mapping per partition, carrying the
partition's total probability, is then handed to the *basic* evaluator, so the
target query is rewritten and executed only once per distinct source query.
"""

from __future__ import annotations

from repro.core.evaluators.base import PHASE_REWRITING, EvaluationResult, Evaluator
from repro.core.evaluators.basic import BasicEvaluator
from repro.core.partition_tree import partition, represent
from repro.core.target_query import TargetQuery
from repro.matching.mappings import MappingSet
from repro.relational.database import Database
from repro.relational.stats import ExecutionStats


class QSharingEvaluator(Evaluator):
    """Partition the mappings, then evaluate one source query per partition."""

    name = "q-sharing"

    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> EvaluationResult:
        partition_stats = ExecutionStats()
        with partition_stats.phase(PHASE_REWRITING):
            partitions = partition(query.partition_keys, mappings)
            partition_stats.count_partitions(len(partitions))
            representatives = represent(partitions)

        # Step 3 of Algorithm 1: run basic over the representative mappings.
        basic = BasicEvaluator(
            links=self.links,
            engine=self.engine,
            optimize=self.optimize,
            parallel=self.parallel,
        )
        inner = basic.evaluate_mappings(query, representatives, database)

        stats = partition_stats
        stats.merge(inner.stats)
        return self._result(
            query,
            inner.answers,
            stats,
            partitions=len(partitions),
            representative_mappings=len(representatives),
        )
