"""The *e-basic* evaluator (Section III-B.2 of the paper).

e-basic improves on *basic* by clustering identical source queries: the target
query is still reformulated once per mapping, but each *distinct* source query
is executed only once, carrying the total probability of the mappings that
produced it.  The rewriting effort is unchanged — that is the weakness
q-sharing later removes — but the evaluation effort drops sharply when the
mappings overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.answer import ProbabilisticAnswer
from repro.core.evaluators.base import (
    PHASE_AGGREGATION,
    PHASE_EVALUATION,
    PHASE_REWRITING,
    EvaluationResult,
    Evaluator,
)
from repro.core.reformulation import (
    UnmatchedAttributeError,
    extract_answers,
    reformulate_query,
)
from repro.core.target_query import TargetQuery
from repro.matching.mappings import Mapping, MappingSet
from repro.relational.algebra import PlanNode
from repro.relational.database import Database
from repro.relational.stats import ExecutionStats


@dataclass
class DistinctSourceQuery:
    """One distinct source query with the mappings (and probability) it serves."""

    plan: PlanNode
    representative: Mapping
    probability: float
    mapping_count: int


def cluster_source_queries(
    query: TargetQuery,
    mappings: MappingSet,
    links,
    stats: ExecutionStats,
) -> tuple[list[DistinctSourceQuery], float]:
    """Reformulate every mapping and group identical source queries.

    Returns the distinct source queries plus the total probability of mappings
    that could not be reformulated (unmatched attributes → null answer).
    Shared by e-basic and e-MQO.
    """
    distinct: dict[str, DistinctSourceQuery] = {}
    unmatched_probability = 0.0
    for mapping in mappings:
        try:
            plan = reformulate_query(query, mapping, links)
        except UnmatchedAttributeError:
            unmatched_probability += mapping.probability
            stats.count_reformulation()
            continue
        stats.count_reformulation()
        key = plan.canonical()
        existing = distinct.get(key)
        if existing is None:
            distinct[key] = DistinctSourceQuery(
                plan=plan,
                representative=mapping,
                probability=mapping.probability,
                mapping_count=1,
            )
        else:
            existing.probability += mapping.probability
            existing.mapping_count += 1
    return list(distinct.values()), unmatched_probability


class EBasicEvaluator(Evaluator):
    """Evaluate each *distinct* source query once (the paper's ``e-basic``)."""

    name = "e-basic"

    def evaluate(
        self,
        query: TargetQuery,
        mappings: MappingSet,
        database: Database,
    ) -> EvaluationResult:
        stats = ExecutionStats()
        executor = self._executor(database, stats)
        answers = ProbabilisticAnswer()

        with stats.phase(PHASE_REWRITING):
            distinct, unmatched_probability = cluster_source_queries(
                query, mappings, self.links, stats
            )
        if unmatched_probability:
            answers.add_empty(unmatched_probability)

        for source_query in distinct:
            with stats.phase(PHASE_EVALUATION):
                result = executor.execute_query(source_query.plan)
            with stats.phase(PHASE_AGGREGATION):
                tuples = extract_answers(query, source_query.representative, result)
                if tuples:
                    answers.add_tuples(tuples, source_query.probability)
                else:
                    answers.add_empty(source_query.probability)

        return self._result(
            query,
            answers,
            stats,
            distinct_source_queries=len(distinct),
        )
