"""Reformulating target queries and operators into source queries.

Two levels of reformulation are provided, matching the two families of
evaluation algorithms in the paper:

* :func:`reformulate_query` rewrites a whole target query through one mapping
  into a source query; this is the rewriting step of *basic*, *e-basic*,
  *e-MQO* and *q-sharing* (Section III-B / IV).
* :func:`reformulate_operator` rewrites a single target operator through one
  mapping, handling materialised intermediate results; this is
  ``reformulate_op`` of *o-sharing* (Section VI-B, Cases 1-3 for unary and
  binary operators).

Both levels share the same labelling convention — the source relations that
serve a target scan alias ``A`` are scanned under ``A@<source relation>`` so
that self-joins stay disjoint — and the same :class:`~repro.core.links.SchemaLinks`
combination rule, which guarantees that every evaluator computes the same
probabilistic answer.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.links import (
    SchemaLinks,
    attach_with_links,
    combine_cover,
    scan_alias,
)
from repro.core.target_query import TargetAttribute, TargetQuery
from repro.matching.mappings import Mapping
from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    PlanNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.expressions import ColumnRef
from repro.relational.relation import Relation


class UnmatchedAttributeError(LookupError):
    """Raised when a mapping does not match a target attribute the query needs.

    The paper's mappings are *partial*; a mapping that does not cover a
    required attribute cannot answer the query, so the evaluators convert this
    error into the null answer (the mapping's probability goes to
    :attr:`~repro.core.answer.ProbabilisticAnswer.empty_probability`).
    """

    def __init__(self, attribute: TargetAttribute, mapping: Mapping):
        self.attribute = attribute
        self.mapping = mapping
        super().__init__(
            f"mapping m{mapping.mapping_id} has no correspondence for "
            f"target attribute {attribute.qualified}"
        )


# --------------------------------------------------------------------------- #
# attribute-level translation
# --------------------------------------------------------------------------- #
def source_attribute(mapping: Mapping, attribute: TargetAttribute) -> tuple[str, str]:
    """The ``(source relation, source attribute)`` matched to a target attribute."""
    qualified = mapping.source_for(attribute.qualified)
    if qualified is None:
        raise UnmatchedAttributeError(attribute, mapping)
    relation, _, name = qualified.partition(".")
    return relation, name


def source_reference(mapping: Mapping, attribute: TargetAttribute) -> ColumnRef:
    """The source-level column reference replacing a target attribute reference."""
    relation, name = source_attribute(mapping, attribute)
    return ColumnRef(name=name, qualifier=scan_alias(attribute.alias, relation))


def source_label(mapping: Mapping, attribute: TargetAttribute) -> str:
    """The column label under which a target attribute's values appear."""
    reference = source_reference(mapping, attribute)
    return f"{reference.qualifier}.{reference.name}"


def cover_relations(
    query: TargetQuery,
    mapping: Mapping,
    alias: str,
    attributes: Sequence[TargetAttribute] | None = None,
) -> list[str]:
    """The source relations that must be scanned to serve one target alias.

    ``attributes`` restricts the cover to specific attributes (operator-level
    reformulation, Case 3 for unary operators); otherwise the query's needed
    attributes for the alias are used.  Attributes the query references must
    be matched by the mapping; for a bare (never-referenced) alias, unmatched
    attributes are simply skipped, but at least one attribute must be matched.
    """
    strict = attributes is not None or bool(query.attributes_for_alias(alias))
    needed = list(attributes) if attributes is not None else query.needed_attributes(alias)
    relations: list[str] = []
    last_unmatched: TargetAttribute | None = None
    for attribute in needed:
        qualified = mapping.source_for(attribute.qualified)
        if qualified is None:
            if strict:
                raise UnmatchedAttributeError(attribute, mapping)
            last_unmatched = attribute
            continue
        relation = qualified.partition(".")[0]
        if relation not in relations:
            relations.append(relation)
    if not relations:
        raise UnmatchedAttributeError(last_unmatched or needed[0], mapping)
    return relations


def build_scan_plan(
    query: TargetQuery,
    mapping: Mapping,
    alias: str,
    links: SchemaLinks | None,
    attributes: Sequence[TargetAttribute] | None = None,
) -> PlanNode:
    """The source plan replacing one target scan (Case 3 of Section VI-B)."""
    relations = cover_relations(query, mapping, alias, attributes)
    return combine_cover(alias, relations, links)


# --------------------------------------------------------------------------- #
# whole-query reformulation (basic / e-basic / e-MQO / q-sharing)
# --------------------------------------------------------------------------- #
def reformulate_query(
    query: TargetQuery,
    mapping: Mapping,
    links: SchemaLinks | None = None,
) -> PlanNode:
    """Rewrite the whole target query into a source query through ``mapping``.

    Raises :class:`UnmatchedAttributeError` when the mapping does not cover
    an attribute the query needs.
    """

    def rewrite_ref(ref: ColumnRef) -> ColumnRef:
        return source_reference(mapping, query.resolve(ref))

    def rewrite(node: PlanNode) -> PlanNode:
        if isinstance(node, Scan):
            return build_scan_plan(query, mapping, node.label, links)
        if isinstance(node, Select):
            return Select(node.child, node.predicate.rename(rewrite_ref))
        if isinstance(node, Join):
            return Join(node.left, node.right, node.predicate.rename(rewrite_ref))
        if isinstance(node, Project):
            return Project(node.child, [rewrite_ref(ref) for ref in node.columns], node.distinct)
        if isinstance(node, Aggregate):
            argument = node.argument.rename(rewrite_ref) if node.argument is not None else None
            group_by = [rewrite_ref(ref) for ref in node.group_by]
            return Aggregate(node.child, node.function, argument, group_by)
        return node

    return query.plan.transform(rewrite)


# --------------------------------------------------------------------------- #
# operator-level reformulation (o-sharing, Section VI-B)
# --------------------------------------------------------------------------- #
def reformulate_operator(
    query: TargetQuery,
    mapping: Mapping,
    operator: PlanNode,
    links: SchemaLinks | None = None,
    pushdown_leaf: PlanNode | None = None,
) -> PlanNode:
    """Rewrite one target operator into an executable source plan.

    ``operator`` must have leaf children (scans or materialised intermediate
    results); for a selection that has been reordered below a chain of other
    selections, ``pushdown_leaf`` names the leaf the selection is evaluated
    against directly (the paper's ``reorder_op``).

    The returned plan consists of the reformulated operator applied to the
    appropriate inputs (Cases 1-3 of Section VI-B); executing it yields the
    intermediate relation that replaces the operator in the e-unit's plan.
    """

    def rewrite_ref(ref: ColumnRef) -> ColumnRef:
        return source_reference(mapping, query.resolve(ref))

    if isinstance(operator, (Select, Project, Aggregate)):
        leaf = pushdown_leaf if pushdown_leaf is not None else operator.children()[0]
        needed = query.operator_attributes(operator)
        input_plan = _unary_input(query, mapping, operator, leaf, needed, links)
        if isinstance(operator, Select):
            return Select(input_plan, operator.predicate.rename(rewrite_ref))
        if isinstance(operator, Project):
            return Project(
                input_plan, [rewrite_ref(ref) for ref in operator.columns], operator.distinct
            )
        argument = (
            operator.argument.rename(rewrite_ref) if operator.argument is not None else None
        )
        group_by = [rewrite_ref(ref) for ref in operator.group_by]
        return Aggregate(input_plan, operator.function, argument, group_by)

    if isinstance(operator, (Product, Join, Union)):
        if pushdown_leaf is not None:
            raise ValueError("pushdown_leaf only applies to unary operators")
        left, right = operator.children()
        needed = query.operator_attributes(operator)
        left_plan = _binary_input(query, mapping, left, needed, links)
        right_plan = _binary_input(query, mapping, right, needed, links)
        if isinstance(operator, Product):
            return Product(left_plan, right_plan)
        if isinstance(operator, Union):
            return Union(left_plan, right_plan, operator.distinct)
        return Join(left_plan, right_plan, operator.predicate.rename(rewrite_ref))

    raise TypeError(f"cannot reformulate operator of type {type(operator).__name__}")


def _unary_input(
    query: TargetQuery,
    mapping: Mapping,
    operator: PlanNode,
    leaf: PlanNode,
    needed: Sequence[TargetAttribute],
    links: SchemaLinks | None,
) -> PlanNode:
    """Input plan of a unary operator (Cases 1-3 of Section VI-B)."""
    if isinstance(leaf, Materialized):
        return _extend_materialized(query, mapping, leaf, needed, links)
    if isinstance(leaf, Scan):
        attributes: Sequence[TargetAttribute] | None = needed
        if not needed:
            # e.g. COUNT(*) directly over a target scan — cover the scan's
            # needed attributes instead of an (empty) operator attribute set.
            attributes = None
        return build_scan_plan(query, mapping, leaf.label, links, attributes)
    raise TypeError(f"operator input must be a leaf, got {type(leaf).__name__}")


def _binary_input(
    query: TargetQuery,
    mapping: Mapping,
    leaf: PlanNode,
    needed: Sequence[TargetAttribute],
    links: SchemaLinks | None,
) -> PlanNode:
    """Input plan of one side of a binary operator (Cases 1-3 of Section VI-B)."""
    if isinstance(leaf, Materialized):
        return _extend_materialized(query, mapping, leaf, needed, links)
    if isinstance(leaf, Scan):
        return build_scan_plan(query, mapping, leaf.label, links)
    raise TypeError(f"binary operator input must be a leaf, got {type(leaf).__name__}")


def _covered_by(leaf: Materialized, mapping: Mapping, attribute: TargetAttribute) -> bool:
    """True when the materialised relation already holds the attribute's source column."""
    qualified = mapping.source_for(attribute.qualified)
    if qualified is None:
        return False
    relation, _, name = qualified.partition(".")
    return leaf.relation.has_column(f"{scan_alias(attribute.alias, relation)}.{name}")


def _aliases_of(leaf: Materialized) -> set[str]:
    """Target aliases whose columns appear in a materialised relation."""
    aliases: set[str] = set()
    for label in leaf.relation.columns:
        qualifier = label.rsplit(".", 1)[0]
        alias = qualifier.split("@", 1)[0]
        if alias:
            aliases.add(alias)
    return aliases


def _extend_materialized(
    query: TargetQuery,
    mapping: Mapping,
    leaf: Materialized,
    needed: Sequence[TargetAttribute],
    links: SchemaLinks | None,
) -> PlanNode:
    """Case 1/2: use the materialised relation, joining in missing source relations."""
    plan: PlanNode = leaf
    base_relations = _source_relations_of(leaf)
    columns = list(leaf.relation.columns)
    attached: list[tuple[str, str]] = []
    for attribute in needed:
        if attribute.alias not in _aliases_of(leaf):
            # The attribute belongs to a different scan alias that is still a
            # separate leaf of the e-unit's plan; it is not this input's job
            # to provide it.
            continue
        if _covered_by(leaf, mapping, attribute):
            continue
        relation, _ = source_attribute(mapping, attribute)
        key = (attribute.alias, relation)
        if key in attached:
            continue
        scan = Scan(relation, alias=scan_alias(attribute.alias, relation))
        plan = attach_with_links(
            plan,
            base_relations,
            attribute.alias,
            relation,
            scan,
            links,
            available_columns=columns,
        )
        attached.append(key)
        base_relations.append(relation)
    return plan


def _source_relations_of(leaf: Materialized) -> list[str]:
    """Source relations whose columns appear in a materialised relation."""
    relations: list[str] = []
    for label in leaf.relation.columns:
        qualifier = label.rsplit(".", 1)[0]
        if "@" in qualifier:
            relation = qualifier.split("@", 1)[1]
            if relation not in relations:
                relations.append(relation)
    return relations


# --------------------------------------------------------------------------- #
# answer extraction
# --------------------------------------------------------------------------- #
def extract_answers(
    query: TargetQuery,
    mapping: Mapping,
    relation: Relation,
) -> list[tuple]:
    """Project a source result onto the query's output attributes.

    Returns the *distinct* answer tuples, in first-occurrence order; an empty
    list means the mapping produced no answer (the null answer).  For
    aggregate queries the relation's rows are the answers themselves.
    """
    if relation.is_empty:
        return []
    if query.is_aggregate:
        return _distinct(relation.rows)
    positions = []
    for attribute in query.output_attributes:
        reference = source_reference(mapping, attribute)
        positions.append(relation.resolve(reference.name, reference.qualifier))
    projected = [tuple(row[position] for position in positions) for row in relation.rows]
    return _distinct(projected)


def _distinct(rows: Iterable[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    unique: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique
