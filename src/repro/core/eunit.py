"""Execution units and the u-trace (Section V of the paper).

An *e-unit* captures the state of a partially executed target query:

* ``plan`` — the target query plan in which already-executed operators have
  been replaced by :class:`~repro.relational.algebra.Materialized` results;
* ``mappings`` — the possible mappings that share every correspondence used
  by the operators executed so far; and
* ``next_op`` — the operator chosen (by an operator-selection strategy) to be
  executed next.

The *u-trace* is the tree of e-units produced while o-sharing interleaves
query rewriting with operator execution.  The evaluator explores it
depth-first via recursion; the :class:`UTrace` object tracks bookkeeping the
benchmarks report (how many e-units were created, how many were pruned by the
empty-relation shortcut).

This module also hosts the *candidate operator* enumeration: which operators
of an e-unit's plan may be chosen as ``next_op`` (the "correctness" criterion
of Section VI-A), including the ``reorder_op`` rule that pushes a selection
below other selections so it can run directly against a leaf.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.target_query import TargetQuery
from repro.matching.mappings import Mapping
from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    PlanNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)

_EUNIT_IDS = itertools.count(1)


@dataclass(frozen=True)
class CandidateOperator:
    """A target operator that may legally be executed next.

    ``pushdown_leaf`` is set for selections that sit above a chain of other
    selections: the selection is valid because it can be reordered to apply
    directly to ``pushdown_leaf`` (the paper's ``reorder_op``); it is ``None``
    when the operator's children are already leaves.
    """

    operator: PlanNode
    pushdown_leaf: PlanNode | None = None

    @property
    def effective_leaf(self) -> PlanNode:
        """The leaf the operator will be evaluated against (unary operators)."""
        if self.pushdown_leaf is not None:
            return self.pushdown_leaf
        return self.operator.children()[0]


@dataclass
class EUnit:
    """One execution unit of the u-trace."""

    plan: PlanNode
    mappings: list[Mapping]
    unit_id: int = field(default_factory=lambda: next(_EUNIT_IDS))
    depth: int = 0
    next_op: CandidateOperator | None = None

    @property
    def probability(self) -> float:
        """Total probability of the e-unit's mapping set."""
        return sum(mapping.probability for mapping in self.mappings)

    @property
    def is_fully_evaluated(self) -> bool:
        """Case 1 of ``run_qt``: the plan is a single materialised relation."""
        return isinstance(self.plan, Materialized)

    @property
    def result(self) -> Materialized:
        """The final materialised result (only valid when fully evaluated)."""
        if not isinstance(self.plan, Materialized):
            raise ValueError("e-unit is not fully evaluated")
        return self.plan

    def has_empty_intermediate(self) -> bool:
        """Case 2 of ``run_qt``: some materialised leaf is empty.

        The shortcut is only taken when no aggregate and no union operator
        remains in the plan: an aggregate over an empty input still produces a
        row (COUNT returns 0), and a union with one empty input still returns
        the other input's tuples, so pruning either would change the answer.
        """
        if any(isinstance(node, (Aggregate, Union)) for node in self.plan.walk()):
            return False
        return any(
            isinstance(node, Materialized) and node.is_empty for node in self.plan.walk()
        )

    def spawn(self, plan: PlanNode, mappings: Sequence[Mapping]) -> "EUnit":
        """Create a child e-unit (one level deeper in the u-trace)."""
        return EUnit(plan=plan, mappings=list(mappings), depth=self.depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EUnit(id={self.unit_id}, depth={self.depth}, "
            f"mappings={len(self.mappings)}, p={self.probability:.3f})"
        )


class UTrace:
    """Bookkeeping for the tree of e-units explored by o-sharing."""

    def __init__(self, root: EUnit):
        self.root = root
        self.units_created = 1
        self.units_pruned_empty = 0
        self.units_answered = 0
        self.mappings_evaluated = len(root.mappings)
        self.max_depth = 0

    def created(self, unit: EUnit) -> None:
        """Record the creation of a child e-unit."""
        self.units_created += 1
        self.mappings_evaluated += len(unit.mappings)
        self.max_depth = max(self.max_depth, unit.depth)

    def pruned(self, unit: EUnit) -> None:
        """Record an e-unit discarded through the empty-relation shortcut."""
        self.units_pruned_empty += 1

    def answered(self, unit: EUnit) -> None:
        """Record an e-unit that contributed answer tuples."""
        self.units_answered += 1

    def snapshot(self) -> dict:
        """Counters for the benchmark reporting layer."""
        return {
            "units_created": self.units_created,
            "units_pruned_empty": self.units_pruned_empty,
            "units_answered": self.units_answered,
            "mappings_evaluated": self.mappings_evaluated,
            "max_depth": self.max_depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UTrace(created={self.units_created}, pruned={self.units_pruned_empty}, "
            f"answered={self.units_answered}, max_depth={self.max_depth})"
        )


# --------------------------------------------------------------------------- #
# candidate (valid) operator enumeration — the correctness criterion of VI-A
# --------------------------------------------------------------------------- #
def is_leaf(node: PlanNode) -> bool:
    """True for plan leaves (target scans and materialised intermediates)."""
    return isinstance(node, (Scan, Materialized))


def candidate_operators(plan: PlanNode, query: TargetQuery) -> list[CandidateOperator]:
    """All operators of ``plan`` that may correctly be executed next.

    * a selection is valid when the nodes between it and a leaf are all
      selections (it can be reordered down to the leaf);
    * a projection is valid when its child is a leaf and no remaining ancestor
      references a column the projection would drop;
    * an aggregate is valid when its child is a leaf;
    * a product, join or union is valid when both children are leaves.
    """
    parents = _parent_map(plan)
    candidates: list[CandidateOperator] = []
    for node in plan.walk():
        if isinstance(node, Select):
            leaf = _selection_pushdown_leaf(node)
            if leaf is not None:
                pushdown = None if node.children()[0] is leaf else leaf
                candidates.append(CandidateOperator(operator=node, pushdown_leaf=pushdown))
        elif isinstance(node, Project):
            if is_leaf(node.child) and _projection_keeps_needed_columns(node, parents):
                candidates.append(CandidateOperator(operator=node))
        elif isinstance(node, Aggregate):
            if is_leaf(node.child):
                candidates.append(CandidateOperator(operator=node))
        elif isinstance(node, (Product, Join, Union)):
            if all(is_leaf(child) for child in node.children()):
                candidates.append(CandidateOperator(operator=node))
    return candidates


def _selection_pushdown_leaf(node: Select) -> PlanNode | None:
    """The leaf a selection can be pushed down to, or ``None`` when invalid."""
    current: PlanNode = node.child
    while isinstance(current, Select):
        current = current.child
    return current if is_leaf(current) else None


def _projection_keeps_needed_columns(node: Project, parents: dict[int, PlanNode]) -> bool:
    """True when no ancestor of the projection references a dropped column."""
    kept = {(ref.qualifier, ref.name) for ref in node.columns}
    ancestor = parents.get(id(node))
    while ancestor is not None:
        for ref in ancestor.referenced_columns():
            if (ref.qualifier, ref.name) not in kept:
                return False
        ancestor = parents.get(id(ancestor))
    return True


def _parent_map(plan: PlanNode) -> dict[int, PlanNode]:
    """Map from node identity to its parent node."""
    parents: dict[int, PlanNode] = {}
    for node in plan.walk():
        for child in node.children():
            parents[id(child)] = node
    return parents


# --------------------------------------------------------------------------- #
# plan surgery used after executing an operator
# --------------------------------------------------------------------------- #
def splice_out(plan: PlanNode, operator: PlanNode) -> PlanNode:
    """Remove a unary operator from the plan, reconnecting its child."""
    children = operator.children()
    if len(children) != 1:
        raise ValueError("only unary operators can be spliced out")
    return plan.replace(operator, children[0])


def apply_execution(
    plan: PlanNode,
    candidate: CandidateOperator,
    result: Materialized,
) -> PlanNode:
    """Replace an executed operator (and the leaf it consumed) with its result.

    * binary operators and leaf-adjacent unary operators are replaced as a
      whole subtree;
    * a pushed-down selection is spliced out of its original position and the
      leaf it was evaluated against is replaced by the result.
    """
    operator = candidate.operator
    if candidate.pushdown_leaf is None:
        return plan.replace(operator, result)
    without_selection = splice_out(plan, operator)
    return without_selection.replace(candidate.pushdown_leaf, result)


def iter_materialized(plan: PlanNode) -> Iterator[Materialized]:
    """All materialised leaves of a plan."""
    for node in plan.walk():
        if isinstance(node, Materialized):
            yield node
