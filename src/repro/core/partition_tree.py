"""Mapping partitioning with a partition tree (Section IV-A, Algorithm 3).

q-sharing groups the possible mappings so that every group produces the same
source query for a given target query.  Two mappings land in the same group
exactly when they assign the same source attribute (possibly "unmatched") to
every target attribute the query uses.  The partition tree makes this grouping
a single pass over the mappings: level ``k`` of the tree branches on the
source attribute matched to the ``k``-th target attribute, and each leaf
bucket is one partition.

``partition_naive`` implements the obvious alternative — pairwise signature
comparison — and exists for the ablation benchmark that quantifies what the
tree buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Union

from repro.matching.mappings import Mapping

#: Edge label used when a mapping leaves a target attribute unmatched.
UNMATCHED = "<unmatched>"


@dataclass(frozen=True)
class AttributeKey:
    """Partition on the source attribute matched to one target attribute.

    Two mappings take the same branch exactly when they map the attribute to
    the same source attribute (or both leave it unmatched).
    """

    attribute: str

    def label(self, mapping: Mapping) -> str:
        """The branch label of ``mapping`` for this key."""
        return mapping.source_for(self.attribute) or UNMATCHED


@dataclass(frozen=True)
class CoverKey:
    """Partition on the *source relations* covering one target alias.

    Used for scan operands whose attributes are not constrained by any
    operator (a bare cross-product side, like ``Order`` in the paper's q2):
    two mappings produce the same reformulated scan exactly when the set of
    source relations covering the alias is the same, regardless of which
    individual attributes map where.
    """

    alias: str
    attributes: tuple[str, ...]

    def label(self, mapping: Mapping) -> str:
        """The branch label: the sorted source-relation cover of the alias."""
        relations = {
            source.partition(".")[0]
            for source in (mapping.source_for(attribute) for attribute in self.attributes)
            if source is not None
        }
        if not relations:
            return UNMATCHED
        return ",".join(sorted(relations))


#: A partition key: either a qualified target attribute name (shorthand for
#: :class:`AttributeKey`) or an explicit key object.
PartitionKey = Union[str, AttributeKey, CoverKey]


def _as_key(key: PartitionKey) -> AttributeKey | CoverKey:
    """Normalise a partition key specification into a key object."""
    if isinstance(key, str):
        return AttributeKey(key)
    return key


@dataclass
class PartitionNode:
    """One node of the partition tree.

    Interior nodes branch on the source attribute matched to the node's
    target attribute; leaf nodes are buckets holding one partition.
    """

    level: int
    #: outgoing edges: source attribute (or UNMATCHED) -> child node
    children: dict[str, "PartitionNode"] = field(default_factory=dict)
    #: mappings deposited here (leaf nodes only)
    bucket: list[Mapping] = field(default_factory=list)

    @property
    def is_bucket(self) -> bool:
        """True for leaf buckets."""
        return not self.children and self.level >= 0

    def edge_count(self) -> int:
        """Number of outgoing edges."""
        return len(self.children)


class PartitionTree:
    """The partition tree of Algorithm 3."""

    def __init__(self, attributes: Sequence[PartitionKey]):
        if not attributes:
            raise ValueError("a partition tree needs at least one target attribute")
        self.attributes = [_as_key(key) for key in attributes]
        self.root = PartitionNode(level=0)
        self._node_count = 1

    # ------------------------------------------------------------------ #
    def put(self, mapping: Mapping) -> None:
        """Insert one mapping (the recursive ``put`` routine of Algorithm 3)."""
        node = self.root
        for level, attribute in enumerate(self.attributes):
            label = attribute.label(mapping)
            child = node.children.get(label)
            if child is None:
                child = PartitionNode(level=level + 1)
                node.children[label] = child
                self._node_count += 1
            node = child
        node.bucket.append(mapping)

    def extend(self, mappings: Iterable[Mapping]) -> None:
        """Insert many mappings."""
        for mapping in mappings:
            self.put(mapping)

    # ------------------------------------------------------------------ #
    def buckets(self) -> list[list[Mapping]]:
        """All non-empty leaf buckets (the partitions), in insertion order."""
        found: list[list[Mapping]] = []
        self._collect(self.root, found)
        return found

    def _collect(self, node: PartitionNode, found: list[list[Mapping]]) -> None:
        if node.bucket:
            found.append(list(node.bucket))
        for label in node.children:
            self._collect(node.children[label], found)

    @property
    def node_count(self) -> int:
        """Number of nodes in the tree (used by the ablation benchmark)."""
        return self._node_count

    @property
    def depth(self) -> int:
        """Number of levels (target attributes) plus the bucket level."""
        return len(self.attributes) + 1

    def __iter__(self) -> Iterator[list[Mapping]]:
        return iter(self.buckets())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionTree(attributes={len(self.attributes)}, nodes={self._node_count}, "
            f"partitions={len(self.buckets())})"
        )


# --------------------------------------------------------------------------- #
# the partition / represent routines used by the evaluators
# --------------------------------------------------------------------------- #
def partition(
    attributes: Sequence[PartitionKey],
    mappings: Iterable[Mapping],
) -> list[list[Mapping]]:
    """Group mappings that agree on every partition key.

    This is the ``partition`` routine of Algorithms 1-4; ``attributes`` are
    qualified target attribute names (``relation.attribute``) or explicit
    :class:`AttributeKey` / :class:`CoverKey` objects.
    """
    mappings = list(mappings)
    if not attributes:
        return [mappings] if mappings else []
    tree = PartitionTree(attributes)
    tree.extend(mappings)
    return tree.buckets()


def partition_naive(
    attributes: Sequence[PartitionKey],
    mappings: Iterable[Mapping],
) -> list[list[Mapping]]:
    """Quadratic pairwise grouping (ablation baseline for the partition tree)."""
    keys = [_as_key(key) for key in attributes]
    groups: list[tuple[tuple[str, ...], list[Mapping]]] = []
    for mapping in mappings:
        signature = tuple(key.label(mapping) for key in keys)
        for existing_signature, bucket in groups:
            if existing_signature == signature:
                bucket.append(mapping)
                break
        else:
            groups.append((signature, [mapping]))
    return [bucket for _, bucket in groups]


def represent(partitions: Sequence[Sequence[Mapping]]) -> list[Mapping]:
    """One representative mapping per partition, carrying the partition's probability.

    The representative is the partition's first mapping; its probability is
    the sum over the partition, because every mapping of the partition yields
    the same source query and therefore the same answer tuples (Section IV).
    """
    representatives: list[Mapping] = []
    for bucket in partitions:
        if not bucket:
            continue
        total = sum(mapping.probability for mapping in bucket)
        representatives.append(bucket[0].with_probability(total))
    return representatives


def partition_and_represent(
    attributes: Sequence[str],
    mappings: Iterable[Mapping],
) -> list[Mapping]:
    """Convenience composition of :func:`partition` and :func:`represent`."""
    return represent(partition(attributes, mappings))
