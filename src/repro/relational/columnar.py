"""Columnar batch representation and column-level predicate compilation.

The row engine in :mod:`repro.relational.executor` interprets predicate and
expression ASTs once per tuple — every row pays attribute resolution, method
dispatch and comparison coercion again.  The columnar engine amortises all of
that per *operator*: a :class:`ColumnBatch` stores a relation column-major
(one Python list per column), attribute references are resolved once, and
predicates are evaluated as column-level sweeps (MonetDB/X100-style
vectorisation, in pure Python).

Semantics are identical to the row engine by construction:

* :func:`expression_values` mirrors ``Expression.evaluate`` element-wise
  (``None`` propagates through arithmetic);
* :func:`predicate_mask` mirrors ``Predicate.evaluate`` element-wise,
  including the ``None``-comparison and ``comparable`` coercion rules, with a
  fast path that skips coercion entirely when a column is type-homogeneous;
* row order is preserved everywhere, so duplicate elimination and answer
  aggregation see the same sequences.

The differential test harness (``tests/core/evaluators/test_differential.py``)
asserts that every evaluator returns identical answers on both engines.
"""

from __future__ import annotations

import operator
from itertools import compress
from typing import Any, Sequence

from repro.obs.trace import current_tracer
from repro.relational.expressions import _ARITHMETIC, Arithmetic, ColumnRef, Expression, Literal
from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    FalsePredicate,
    In,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.relation import Relation, missing_column_error, resolve_unqualified
from repro.relational.types import comparable

_NONE_TYPE = type(None)

#: Comparison operators as C-level callables (same truth table as the
#: lambdas in :mod:`repro.relational.predicates`).
_OPERATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class ColumnBatch:
    """A relation stored column-major: one Python list per column label.

    Column lists are shared freely between batches (a projection is a list of
    references, not a copy), so operators must never mutate them in place —
    every transformation builds new lists.
    """

    __slots__ = (
        "columns",
        "data",
        "name",
        "length",
        "_column_positions",
        "_source",
        "_vectors",
    )

    def __init__(
        self,
        columns: Sequence[str],
        data: Sequence[list],
        name: str = "",
        length: int | None = None,
    ):
        self.columns: tuple[str, ...] = tuple(columns)
        self.data: list[list] = list(data)
        if len(self.data) != len(self.columns):
            raise ValueError(
                f"got {len(self.data)} columns of data for {len(self.columns)} labels"
            )
        self.name = name
        self.length = length if length is not None else (len(self.data[0]) if self.data else 0)
        self._column_positions = {label: i for i, label in enumerate(self.columns)}
        #: the Relation this batch was built from, when it still holds exactly
        #: that relation's data (lets to_relation() return the original object)
        self._source: Relation | None = None
        #: lazily-built {column position: classified array entry} cache for
        #: the vector engine (see repro.relational.vector.column_entry)
        self._vectors: dict | None = None

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnBatch":
        """Wrap a :class:`Relation` (column-major view cached on the relation)."""
        batch = cls(
            relation.columns,
            relation.column_data(),
            name=relation.name,
            length=len(relation),
        )
        batch._source = relation
        return batch

    def to_relation(self) -> Relation:
        """Convert back to a row-major :class:`Relation`.

        A batch created by :meth:`from_relation` returns the original object,
        so relation → batch → relation round trips (cache hits, materialised
        leaves) are free.
        """
        if self._source is not None:
            return self._source
        if not self.data:
            # Zero-column batch: zip(*[]) would lose the row count.
            return Relation(self.columns, [()] * self.length, name=self.name)
        return Relation.from_columns(self.columns, self.data, name=self.name)

    # ------------------------------------------------------------------ #
    # column handling (same resolution semantics as Relation)
    # ------------------------------------------------------------------ #
    def column_index(self, label: str) -> int:
        """Position of an exact column label."""
        try:
            return self._column_positions[label]
        except KeyError:
            raise missing_column_error(self.columns, label, self.name) from None

    def has_column(self, label: str) -> bool:
        """True when the exact label is present."""
        return label in self._column_positions

    def resolve(self, name: str, qualifier: str | None = None) -> int:
        """Resolve an attribute reference to a column position.

        Same semantics as :meth:`Relation.resolve` — both delegate to the
        shared :func:`~repro.relational.relation.resolve_unqualified` helper,
        so the engines cannot drift apart on resolution rules.
        """
        if qualifier is not None:
            return self.column_index(f"{qualifier}.{name}")
        if name in self._column_positions:
            return self._column_positions[name]
        return resolve_unqualified(self.columns, name)

    def column(self, label: str) -> list:
        """The column list for an exact label."""
        return self.data[self.column_index(label)]

    # ------------------------------------------------------------------ #
    # batch transformations
    # ------------------------------------------------------------------ #
    def filter(self, mask: Sequence[bool]) -> "ColumnBatch":
        """Rows where ``mask`` is true (order preserved).

        One C-level pass extracts the selected row positions, then each
        column is gathered once — far cheaper than compressing every column
        over the full batch when the mask is selective.
        """
        indexes = list(compress(range(self.length), mask))
        data = [list(map(column.__getitem__, indexes)) for column in self.data]
        return ColumnBatch(self.columns, data, name=self.name, length=len(indexes))

    def take(self, indexes: Sequence[int]) -> "ColumnBatch":
        """Rows at the given positions, in the given order."""
        data = [list(map(column.__getitem__, indexes)) for column in self.data]
        return ColumnBatch(self.columns, data, name=self.name, length=len(indexes))

    def iter_rows(self):
        """Row tuples in order (used for dedup and the row-wise fallback)."""
        if not self.data:
            return iter([()] * self.length)
        return zip(*self.data)

    def concat(self, extra: "ColumnBatch") -> "ColumnBatch":
        """Vertical concatenation: this batch's rows, then ``extra``'s rows.

        This is the delta-application primitive: a cached materialization is
        extended with the rows a monotone plan produced over just the
        appended source rows.  Every output column is a brand-new list — both
        inputs may alias version-cached or shared lists, which must never be
        mutated.
        """
        if self.columns != extra.columns:
            raise ValueError(
                f"cannot concat batches with different columns: "
                f"{list(self.columns)} vs {list(extra.columns)}"
            )
        data = [column + other for column, other in zip(self.data, extra.data)]
        return ColumnBatch(
            self.columns, data, name=self.name, length=self.length + extra.length
        )

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the batch holds no rows."""
        return self.length == 0

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnBatch(name={self.name!r}, columns={list(self.columns)}, "
            f"rows={self.length})"
        )


# --------------------------------------------------------------------------- #
# expression compilation
# --------------------------------------------------------------------------- #
def expression_values(expr: Expression, batch: ColumnBatch) -> tuple[bool, Any]:
    """Evaluate ``expr`` over the whole batch.

    Returns ``(is_constant, value)``: a constant expression yields its single
    value (not broadcast — callers handle broadcasting), anything else yields
    a list of one value per row, identical to evaluating the expression
    row-by-row.
    """
    if isinstance(expr, Literal):
        return True, expr.value
    if isinstance(expr, ColumnRef):
        return False, batch.data[batch.resolve(expr.name, expr.qualifier)]
    if isinstance(expr, Arithmetic):
        fn = _ARITHMETIC[expr.op]
        left_const, left = expression_values(expr.left, batch)
        right_const, right = expression_values(expr.right, batch)
        if left_const and right_const:
            if left is None or right is None:
                return True, None
            return True, fn(left, right)
        if right_const:
            if right is None:
                return True, None
            return False, [None if l is None else fn(l, right) for l in left]
        if left_const:
            if left is None:
                return True, None
            return False, [None if r is None else fn(left, r) for r in right]
        return False, [
            None if l is None or r is None else fn(l, r) for l, r in zip(left, right)
        ]
    # Unknown expression type: fall back to row-wise evaluation.
    relation = batch.to_relation()
    return False, [expr.evaluate(relation, row) for row in relation.rows]


# --------------------------------------------------------------------------- #
# predicate compilation
# --------------------------------------------------------------------------- #
def predicate_mask(predicate: Predicate, batch: ColumnBatch) -> list[bool]:
    """One boolean per row: exactly ``predicate.evaluate`` on each row.

    An empty batch returns an empty mask without touching the predicate,
    matching the row engine (which never evaluates a predicate it has no
    rows for).
    """
    if batch.length == 0:
        return []
    mask = _mask(predicate, batch, batch.length)
    tracer = current_tracer()
    if tracer is not None:
        tracer.event(
            "columnar", kernel="predicate_mask", rows=batch.length, kept=sum(mask)
        )
    return mask


def _mask(predicate: Predicate, batch: ColumnBatch, n: int) -> list[bool]:
    if isinstance(predicate, Comparison):
        return _comparison_mask(predicate, batch, n)
    if isinstance(predicate, TruePredicate):
        return [True] * n
    if isinstance(predicate, FalsePredicate):
        return [False] * n
    if isinstance(predicate, And):
        out = _mask(predicate.operands[0], batch, n)
        for operand in predicate.operands[1:]:
            out = [a and b for a, b in zip(out, _mask(operand, batch, n))]
        return out
    if isinstance(predicate, Or):
        out = _mask(predicate.operands[0], batch, n)
        for operand in predicate.operands[1:]:
            out = [a or b for a, b in zip(out, _mask(operand, batch, n))]
        return out
    if isinstance(predicate, Not):
        return [not value for value in _mask(predicate.operand, batch, n)]
    if isinstance(predicate, In):
        const, values = expression_values(predicate.expr, batch)
        members = predicate.values
        if const:
            return [values in members] * n
        return [value in members for value in values]
    if isinstance(predicate, Between):
        return _between_mask(predicate, batch, n)
    # Unknown predicate type: fall back to row-wise evaluation.
    relation = batch.to_relation()
    return [predicate.evaluate(relation, row) for row in relation.rows]


def _compare(op_fn, left: Any, right: Any) -> bool:
    """One comparison with the row engine's coercion rules."""
    if left is None or right is None:
        return False
    left, right = comparable(left, right)
    try:
        return op_fn(left, right)
    except TypeError:
        return False


def _directly_comparable(types: set) -> bool:
    """True when :func:`comparable` is the identity for every type pairing.

    That holds when every non-``None`` value is numeric (int/float/bool) or
    every one is a string — the two families the coercion rules leave alone.
    """
    types.discard(_NONE_TYPE)
    if not types:
        return True
    if types <= {int, float, bool}:
        return True
    return types == {str}


def _direct_mask(op: str, values: list, constant: Any) -> list[bool]:
    """Column-versus-constant masks without per-element coercion.

    Only called when :func:`_directly_comparable` holds, so the raw operators
    cannot raise ``TypeError`` on non-``None`` values and agree with the
    coerced comparison exactly.  ``None`` compares false under every operator
    (the row engine's rule).
    """
    if op == "=":
        return [value == constant for value in values]
    if op == "!=":
        return [value is not None and value != constant for value in values]
    if op == "<":
        return [value is not None and value < constant for value in values]
    if op == "<=":
        return [value is not None and value <= constant for value in values]
    if op == ">":
        return [value is not None and value > constant for value in values]
    return [value is not None and value >= constant for value in values]


_SWAPPED_OP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _comparison_mask(cmp: Comparison, batch: ColumnBatch, n: int) -> list[bool]:
    op_fn = _OPERATORS[cmp.op]
    left_const, left = expression_values(cmp.left, batch)
    right_const, right = expression_values(cmp.right, batch)
    if left_const and right_const:
        return [_compare(op_fn, left, right)] * n
    if left_const:
        # constant <op> column  ≡  column <swapped-op> constant
        left, right = right, left
        op = _SWAPPED_OP[cmp.op]
        op_fn = _OPERATORS[op]
        right_const = True
    else:
        op = cmp.op
    if right_const:
        if right is None:
            return [False] * n
        if _directly_comparable(set(map(type, left)) | {type(right)}):
            return _direct_mask(op, left, right)
        return [_compare(op_fn, value, right) for value in left]
    # column <op> column
    if _directly_comparable(set(map(type, left)) | set(map(type, right))):
        if op == "=":
            return [l is not None and l == r for l, r in zip(left, right)]
        return [
            l is not None and r is not None and op_fn(l, r) for l, r in zip(left, right)
        ]
    return [_compare(op_fn, l, r) for l, r in zip(left, right)]


def _between_one(low: Any, high: Any, value: Any) -> bool:
    """One BETWEEN test with the row engine's coercion rules."""
    if value is None:
        return False
    low_cmp, value_low = comparable(low, value)
    high_cmp, value_high = comparable(high, value)
    try:
        return low_cmp <= value_low and value_high <= high_cmp
    except TypeError:
        return False


def _between_mask(predicate: Between, batch: ColumnBatch, n: int) -> list[bool]:
    const, values = expression_values(predicate.expr, batch)
    low, high = predicate.low, predicate.high
    if const:
        return [_between_one(low, high, values)] * n
    return [_between_one(low, high, value) for value in values]
