"""Logical relational-algebra plan nodes.

A query — target or source — is a tree of :class:`PlanNode`.  Target queries
are trees whose :class:`Scan` leaves name *target* relations and whose column
references use *target* attributes; source queries are the same structures
over source relations (obtained by reformulation).  o-sharing additionally
mixes in :class:`Materialized` leaves that hold already-computed intermediate
source relations.

Every node knows how to

* enumerate its children and rebuild itself with new children (generic tree
  rewriting used by o-sharing and MQO),
* list the column references it uses (used by partitioning and reformulation),
* produce a canonical fingerprint (used to detect identical source queries /
  shared sub-plans).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.relational.expressions import ColumnRef, Expression
from repro.relational.predicates import Predicate
from repro.relational.relation import Relation

_MATERIALIZED_IDS = itertools.count(1)


class PlanNode:
    """Base class of all plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        """Child nodes, left to right."""
        raise NotImplementedError

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """A copy of this node with its children replaced."""
        raise NotImplementedError

    def referenced_columns(self) -> list[ColumnRef]:
        """Column references used *by this node itself* (not its subtree)."""
        return []

    def canonical(self) -> str:
        """Canonical fingerprint of the subtree rooted at this node."""
        raise NotImplementedError

    # -- tree utilities -------------------------------------------------- #
    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def subtree_columns(self) -> list[ColumnRef]:
        """All column references in the subtree."""
        refs: list[ColumnRef] = []
        for node in self.walk():
            refs.extend(node.referenced_columns())
        return refs

    def operators(self) -> list["PlanNode"]:
        """All non-leaf operators in the subtree (pre-order)."""
        return [node for node in self.walk() if node.children()]

    def leaves(self) -> list["PlanNode"]:
        """All leaf nodes of the subtree."""
        return [node for node in self.walk() if not node.children()]

    def contains(self, node: "PlanNode") -> bool:
        """True when ``node`` (by identity) occurs in the subtree."""
        return any(candidate is node for candidate in self.walk())

    def replace(self, old: "PlanNode", new: "PlanNode") -> "PlanNode":
        """Return a copy of the subtree with ``old`` (by identity) replaced by ``new``."""
        if self is old:
            return new
        children = self.children()
        if not children:
            return self
        replaced = [child.replace(old, new) for child in children]
        if all(a is b for a, b in zip(replaced, children)):
            return self
        return self.with_children(replaced)

    def transform(self, visit: Callable[["PlanNode"], "PlanNode"]) -> "PlanNode":
        """Bottom-up rewrite: children first, then ``visit`` on the rebuilt node."""
        children = self.children()
        if children:
            rebuilt = self.with_children([child.transform(visit) for child in children])
        else:
            rebuilt = self
        return visit(rebuilt)

    def depth(self) -> int:
        """Height of the subtree (a leaf has depth 1)."""
        children = self.children()
        if not children:
            return 1
        return 1 + max(child.depth() for child in children)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.canonical()


# --------------------------------------------------------------------------- #
# leaves
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scan(PlanNode):
    """Scan of a named base relation, optionally under an alias.

    In a target query the relation name refers to a *target* relation
    (e.g. ``PO``); the alias (default: the relation name) is what column
    references use as qualifier, enabling self-joins (``PO1``, ``PO2``).
    """

    relation: str
    alias: str | None = None

    @property
    def label(self) -> str:
        """The qualifier under which this scan's columns are visible."""
        return self.alias or self.relation

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        if children:
            raise ValueError("Scan has no children")
        return self

    def canonical(self) -> str:
        return f"Scan({self.relation} AS {self.label})"


class Materialized(PlanNode):
    """A leaf holding an already-computed intermediate :class:`Relation`.

    o-sharing replaces executed operators with these nodes; e-MQO uses them to
    share the result of a common sub-plan between several source queries.
    Identity (not content) distinguishes two materialised nodes, but the
    canonical form embeds a stable id so that fingerprints remain useful.
    """

    def __init__(self, relation: Relation, label: str = ""):
        self.relation = relation
        self.label = label or relation.name or "intermediate"
        self.node_id = next(_MATERIALIZED_IDS)

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        if children:
            raise ValueError("Materialized has no children")
        return self

    def canonical(self) -> str:
        return f"Materialized(#{self.node_id}:{self.label})"

    @property
    def is_empty(self) -> bool:
        """True when the held relation has no rows."""
        return self.relation.is_empty

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Materialized({self.label!r}, rows={len(self.relation)})"


# --------------------------------------------------------------------------- #
# unary operators
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Select(PlanNode):
    """Selection σ_predicate(child)."""

    child: PlanNode
    predicate: Predicate

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Select(child, self.predicate)

    def referenced_columns(self) -> list[ColumnRef]:
        return self.predicate.referenced_columns()

    def canonical(self) -> str:
        return f"Select[{self.predicate.canonical()}]({self.child.canonical()})"


@dataclass(frozen=True)
class Project(PlanNode):
    """Projection π_columns(child).

    ``distinct`` controls duplicate elimination; the paper's probabilistic
    answer aggregation removes duplicates at the answer level, so projections
    default to bag semantics.
    """

    child: PlanNode
    columns: tuple[ColumnRef, ...]
    distinct: bool = False

    def __init__(self, child: PlanNode, columns: Sequence[ColumnRef], distinct: bool = False):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "distinct", distinct)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Project(child, self.columns, self.distinct)

    def referenced_columns(self) -> list[ColumnRef]:
        return list(self.columns)

    def canonical(self) -> str:
        cols = ", ".join(ref.display for ref in self.columns)
        kind = "ProjectDistinct" if self.distinct else "Project"
        return f"{kind}[{cols}]({self.child.canonical()})"


AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Aggregate operator (COUNT/SUM/AVG/MIN/MAX), optionally grouped.

    ``argument`` may be ``None`` only for COUNT (count of rows).
    """

    child: PlanNode
    function: str
    argument: Expression | None = None
    group_by: tuple[ColumnRef, ...] = ()

    def __init__(
        self,
        child: PlanNode,
        function: str,
        argument: Expression | None = None,
        group_by: Sequence[ColumnRef] = (),
    ):
        function = function.upper()
        if function not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unsupported aggregate function {function!r}")
        if argument is None and function != "COUNT":
            raise ValueError(f"aggregate {function} requires an argument expression")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "argument", argument)
        object.__setattr__(self, "group_by", tuple(group_by))

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        (child,) = children
        return Aggregate(child, self.function, self.argument, self.group_by)

    def referenced_columns(self) -> list[ColumnRef]:
        refs: list[ColumnRef] = []
        if self.argument is not None:
            refs.extend(self.argument.referenced_columns())
        refs.extend(self.group_by)
        return refs

    def canonical(self) -> str:
        argument = str(self.argument) if self.argument is not None else "*"
        group = ", ".join(ref.display for ref in self.group_by)
        suffix = f" GROUP BY {group}" if group else ""
        return f"Aggregate[{self.function}({argument}){suffix}]({self.child.canonical()})"


# --------------------------------------------------------------------------- #
# binary operators
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Product(PlanNode):
    """Cartesian product left × right."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        left, right = children
        return Product(left, right)

    def canonical(self) -> str:
        return f"Product({self.left.canonical()}, {self.right.canonical()})"


@dataclass(frozen=True)
class Union(PlanNode):
    """Set union left ∪ right (an extension beyond the paper's SPJ+aggregate set).

    Both inputs must have the same arity; the output adopts the left input's
    column labels.  ``distinct`` selects set semantics (the default, SQL's
    UNION) versus bag semantics (UNION ALL).
    """

    left: PlanNode
    right: PlanNode
    distinct: bool = True

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        left, right = children
        return Union(left, right, self.distinct)

    def canonical(self) -> str:
        kind = "Union" if self.distinct else "UnionAll"
        return f"{kind}({self.left.canonical()}, {self.right.canonical()})"


@dataclass(frozen=True)
class Join(PlanNode):
    """Theta join left ⋈_predicate right (executed as a hash join when possible)."""

    left: PlanNode
    right: PlanNode
    predicate: Predicate

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> PlanNode:
        left, right = children
        return Join(left, right, self.predicate)

    def referenced_columns(self) -> list[ColumnRef]:
        return self.predicate.referenced_columns()

    def canonical(self) -> str:
        return (
            f"Join[{self.predicate.canonical()}]"
            f"({self.left.canonical()}, {self.right.canonical()})"
        )


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def plan_scans(plan: PlanNode) -> list[Scan]:
    """All :class:`Scan` leaves in the plan."""
    return [node for node in plan.walk() if isinstance(node, Scan)]


def plan_operator_count(plan: PlanNode) -> int:
    """Number of operator (non-leaf) nodes in the plan."""
    return len(plan.operators())


def plan_target_attributes(plan: PlanNode) -> list[ColumnRef]:
    """Distinct column references used anywhere in the plan, in first-use order."""
    seen: set[tuple[str | None, str]] = set()
    ordered: list[ColumnRef] = []
    for ref in plan.subtree_columns():
        key = (ref.qualifier, ref.name)
        if key not in seen:
            seen.add(key)
            ordered.append(ref)
    return ordered
