"""Hash indexes over base relations.

Equality selections dominate the paper's workload (Table III), so the engine
builds hash indexes on demand: ``Database.index(relation, column)`` returns a
value → row-positions map that the executor consults when a selection's
predicate is a single ``column = constant`` comparison over a base-relation
scan.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable

from repro.relational.relation import Relation


class HashIndex:
    """A value → row positions index over one column of a relation."""

    def __init__(self, relation: Relation, column: str):
        self.relation = relation
        self.column = column
        position = relation.column_index(column)
        buckets: dict[Hashable, list[int]] = defaultdict(list)
        for row_number, row in enumerate(relation.rows):
            value = row[position]
            if isinstance(value, Hashable):
                buckets[value].append(row_number)
        self._buckets = dict(buckets)

    def lookup(self, value: Any) -> list[int]:
        """Row positions whose indexed column equals ``value``."""
        return self._buckets.get(value, [])

    def lookup_rows(self, value: Any) -> list[tuple]:
        """Rows whose indexed column equals ``value``."""
        return [self.relation.rows[i] for i in self.lookup(value)]

    def __len__(self) -> int:
        return len(self._buckets)

    def __contains__(self, value: object) -> bool:
        return value in self._buckets


class IndexCatalog:
    """Lazy cache of :class:`HashIndex` objects keyed by (relation name, column)."""

    def __init__(self) -> None:
        self._indexes: dict[tuple[str, str], HashIndex] = {}

    def get(self, relation: Relation, relation_name: str, column: str) -> HashIndex:
        """Return (building if needed) the index on ``relation_name.column``."""
        key = (relation_name, column)
        index = self._indexes.get(key)
        if index is None or index.relation is not relation:
            index = HashIndex(relation, column)
            self._indexes[key] = index
        return index

    def invalidate(self, relation_name: str | None = None) -> None:
        """Drop cached indexes (all of them, or only one relation's)."""
        if relation_name is None:
            self._indexes.clear()
            return
        for key in [key for key in self._indexes if key[0] == relation_name]:
            del self._indexes[key]

    def __len__(self) -> int:
        return len(self._indexes)
