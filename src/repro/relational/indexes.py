"""Hash indexes over base relations.

Equality selections dominate the paper's workload (Table III), so the engine
builds hash indexes on demand: ``Database.index(relation, column)`` returns a
value → row-positions map that the executor consults when a selection's
predicate is a single ``column = constant`` comparison over a base-relation
scan.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import defaultdict
from typing import Any, Callable, Hashable

from repro.relational.relation import DELTA_DELETE, DELTA_UPDATE, Relation


class HashIndex:
    """A value → row positions index over one column of a relation."""

    def __init__(self, relation: Relation, column: str):
        self.relation = relation
        self.column = column
        self._position = relation.column_index(column)
        #: number of rows the buckets currently cover (appends start here;
        #: carried by the index, not the relation, so a *chain* of deltas can
        #: be replayed later without consulting the already-mutated relation)
        self._length = len(relation.rows)
        buckets: dict[Hashable, list[int]] = defaultdict(list)
        for row_number, row in enumerate(relation.rows):
            value = row[self._position]
            if isinstance(value, Hashable):
                buckets[value].append(row_number)
        self._buckets = dict(buckets)

    def apply_append(self, rows: list[tuple]) -> None:
        """Fold appended ``rows`` (at positions ``self._length``...) into the buckets.

        Copy-on-write: the affected buckets and the bucket dict are replaced
        by new objects and swapped in with a single assignment, so a reader
        holding the old dict keeps a consistent pre-append view.
        """
        position = self._position
        start = self._length
        buckets = dict(self._buckets)
        for offset, row in enumerate(rows):
            value = row[position]
            if isinstance(value, Hashable):
                buckets[value] = buckets.get(value, []) + [start + offset]
        self._buckets = buckets
        self._length = start + len(rows)

    def apply_delete(self, positions: list[int]) -> None:
        """Remap buckets after deleting ``positions`` (ascending, pre-write).

        Surviving row positions shift down by the number of deleted rows
        before them; deleted positions drop out, and buckets that empty
        disappear.  The remap is monotone, so every bucket's position list
        stays ascending.  Copy-on-write like :meth:`apply_append`.
        """
        doomed = set(positions)
        buckets: dict[Hashable, list[int]] = {}
        for value, rows in self._buckets.items():
            new_rows = [
                row - bisect_left(positions, row) for row in rows if row not in doomed
            ]
            if new_rows:
                buckets[value] = new_rows
        self._buckets = buckets
        self._length -= len(doomed)

    def apply_update(self, positions: list[int], rows: list[tuple]) -> None:
        """Re-key the updated positions (row numbering is unchanged).

        The updated positions are dropped from every bucket, then re-inserted
        under their replacement rows' key values (``insort`` keeps the
        position lists ascending).  Copy-on-write like :meth:`apply_append`.
        """
        changed = set(positions)
        buckets: dict[Hashable, list[int]] = {}
        for value, members in self._buckets.items():
            kept = [position for position in members if position not in changed]
            if kept:
                buckets[value] = kept
        index_position = self._position
        for position, row in zip(positions, rows):
            value = row[index_position]
            if isinstance(value, Hashable):
                members = buckets.get(value)
                if members is None:
                    buckets[value] = [position]
                else:
                    insort(members, position)
        self._buckets = buckets

    def lookup(self, value: Any) -> list[int]:
        """Row positions whose indexed column equals ``value``."""
        return self._buckets.get(value, [])

    def lookup_rows(self, value: Any) -> list[tuple]:
        """Rows whose indexed column equals ``value``."""
        return [self.relation.rows[i] for i in self.lookup(value)]

    def __len__(self) -> int:
        return len(self._buckets)

    def __contains__(self, value: object) -> bool:
        return value in self._buckets


class IndexCatalog:
    """Lazy cache of :class:`HashIndex` objects keyed by (relation name, column).

    A cached index is reused as long as the relation *data* is unchanged: the
    cache entry records the :attr:`Relation.version` token it was built from,
    so passing a fresh aliased/prefixed view of the same rows (which shares
    the token) hits the cache instead of rebuilding.  :attr:`builds` counts
    the indexes actually constructed, which regression tests and benchmarks
    use to assert that repeated indexed selects build exactly once.
    """

    def __init__(self) -> None:
        self._indexes: dict[tuple[str, str], tuple[HashIndex, int]] = {}
        self._listeners: list[Callable[[str | None], None]] = []
        #: number of hash indexes physically built since creation
        self.builds: int = 0
        #: number of cached indexes patched in place by write deltas
        self.patches: int = 0
        #: number of cached indexes dropped by a write (rebuilt on next use)
        self.rebuilds: int = 0

    def apply_delta(self, relation_name: str, relation: Relation, delta) -> int:
        """Maintain cached indexes on ``relation_name`` through a write.

        Every delta kind whose base version matches the cached entry is
        patched in place: appends fold the new rows into the buckets, deletes
        remap the surviving positions, updates re-key the changed positions
        (no rebuild, no listener notification — the write path has its own
        delta-aware listener chain on the
        :class:`~repro.relational.database.Database`).  Only a broken chain
        (``delta is None``, or a version mismatch from a missed write) drops
        the relation's entries, counted in :attr:`rebuilds`.  Returns the
        number patched.
        """
        patched = 0
        for key in [key for key in self._indexes if key[0] == relation_name]:
            index, version = self._indexes[key]
            if delta is not None and version == delta.base_version:
                if delta.is_append:
                    index.apply_append(list(delta.rows))
                elif delta.kind == DELTA_DELETE:
                    index.apply_delete(list(delta.positions))
                elif delta.kind == DELTA_UPDATE:
                    index.apply_update(list(delta.positions), list(delta.rows))
                else:  # pragma: no cover - no other delta kinds exist
                    del self._indexes[key]
                    self.rebuilds += 1
                    continue
                self._indexes[key] = (index, delta.version)
                patched += 1
            else:
                del self._indexes[key]
                self.rebuilds += 1
        self.patches += patched
        return patched

    def get(self, relation: Relation, relation_name: str, column: str) -> HashIndex:
        """Return (building if needed) the index on ``relation_name.column``."""
        key = (relation_name, column)
        entry = self._indexes.get(key)
        if entry is not None:
            index, version = entry
            if version == relation.version:
                return index
        index = HashIndex(relation, column)
        self.builds += 1
        self._indexes[key] = (index, relation.version)
        return index

    def invalidate(self, relation_name: str | None = None) -> None:
        """Drop cached indexes (all of them, or only one relation's).

        Registered invalidation listeners (e.g. a
        :class:`~repro.relational.plancache.PlanCache`) are notified with the
        relation name (``None`` meaning "everything").
        """
        if relation_name is None:
            self._indexes.clear()
        else:
            for key in [key for key in self._indexes if key[0] == relation_name]:
                del self._indexes[key]
        for listener in list(self._listeners):
            listener(relation_name)

    def add_invalidation_listener(self, listener: Callable[[str | None], None]) -> None:
        """Call ``listener(relation_name)`` whenever indexes are invalidated."""
        self._listeners.append(listener)

    def remove_invalidation_listener(self, listener: Callable[[str | None], None]) -> None:
        """Detach a previously registered invalidation listener."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def __len__(self) -> int:
        return len(self._indexes)
