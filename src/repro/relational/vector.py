"""NumPy-vectorized kernels for the columnar engine (``engine="vector"``).

The columnar engine amortises interpretation per *operator*; this module goes
one step further and replaces the per-element Python sweeps with NumPy array
kernels: boolean-mask selection, hash join via joint factorisation
(``np.unique``) + ``searchsorted``, first-occurrence duplicate elimination and
grouped aggregation via sort-based segment extraction.

Byte-identity is the contract, and it is enforced *per column*: a kernel only
runs when every column it touches classifies into a clean dtype whose NumPy
semantics provably match the row engine's Python semantics — otherwise the
kernel returns ``None`` and the executor falls back to the serial columnar
path for that node, exactly like the parallel engine falls back below
``min_partition_rows``.  The classification rules:

* ``{int}``/``{bool}``/``{bool, int}`` → ``int64`` (``True == 1`` collapses in
  Python sets/dicts exactly as it does under an integer cast; values outside
  the int64 range reject the column);
* ``{float}`` → ``float64`` (bit-identical values; NaN presence is recorded
  because NaN breaks hash-semantics equivalence for joins/dedup and identity
  semantics for ``IN`` — NaN-bearing columns only serve comparison masks,
  where NumPy's IEEE ordering matches Python's);
* ``{str}`` → ``'U'`` arrays when the values round-trip exactly (NumPy
  compares strings by code point, like Python);
* anything else — ``None``-bearing columns, mixed ``str``/``int`` coercion
  families, mixed ``int``/``float`` — is rejected and served by the coercing
  serial code, the single source of truth for those semantics.

Cross-representation comparisons guard exactness: an ``int64``/``float64``
comparison only vectorizes when the integer side is within ±2^53 (exactly
representable in float64), because Python compares int↔float *exactly* while
NumPy promotes to float64.

Classified columns are cached.  A batch wrapping an unmutated base relation
(``ColumnBatch.from_relation``) stores its entries in the relation's
version-keyed one-slot ``_vector_cache`` holder — shared with relabelled
views, rolled forward through append deltas (``Relation.deltas_between``) so
warm sessions keep their arrays across writes, and abandoned on any other
write.  Anonymous intermediate batches cache per batch.

NumPy is optional: without it every kernel returns ``None`` and
``engine="vector"`` raises a ``ValueError`` naming the available engines.
"""

from __future__ import annotations

import functools
import operator
from typing import Any, Sequence

try:  # NumPy is an optional extra (setup.py: repro[vector])
    import numpy as np
except ImportError:  # pragma: no cover - exercised via HAVE_NUMPY monkeypatch
    np = None

from repro.obs.trace import current_tracer
from repro.relational.columnar import _SWAPPED_OP, ColumnBatch, _mask
from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    FalsePredicate,
    In,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.types import _try_parse_number

#: True when NumPy imported.  Tests monkeypatch this to simulate a NumPy-less
#: install without uninstalling anything; every kernel checks it through
#: :func:`numpy_available`.
HAVE_NUMPY = np is not None

#: Largest integer magnitude exactly representable in a float64.
_EXACT_FLOAT_INT = 2**53

#: int64 bounds for constants folded into integer comparisons.
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

#: Composite key codes stay below this so mixed-radix combination cannot
#: overflow int64.
_CODE_LIMIT = 2**62

#: Sentinel distinguishing "not cached yet" from a cached rejection (None).
_MISS = object()

_NP_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def numpy_available() -> bool:
    """True when the vector engine can run in this environment."""
    return np is not None and HAVE_NUMPY


def _traced_kernel(fn):
    """Record each kernel attempt as an ambient ``vector`` trace event.

    ``engaged=False`` means the kernel declined (returned ``None``) and the
    executor served the node through the serial fallback — exactly the
    decision traces need to explain why a "vector" query ran at columnar
    speed.  Untraced runs pay one thread-local read per *operator*, nothing
    per row.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        result = fn(*args, **kwargs)
        tracer = current_tracer()
        if tracer is not None:
            tracer.event("vector", kernel=fn.__name__, engaged=result is not None)
        return result

    return wrapper


# --------------------------------------------------------------------------- #
# column classification and caching
# --------------------------------------------------------------------------- #
def _entry_for_list(column: list):
    """Classify one column: ``(array, has_nan)`` or ``None`` (rejected)."""
    kinds = set(map(type, column))
    n = len(column)
    if not kinds:
        return np.empty(0, dtype=np.int64), False
    if kinds == {bool}:
        return np.array(column, dtype=np.bool_), False
    if kinds <= {bool, int}:
        try:
            return np.fromiter(column, np.int64, count=n), False
        except OverflowError:
            return None  # beyond int64: keep Python's arbitrary precision
    if kinds == {float}:
        arr = np.fromiter(column, np.float64, count=n)
        return arr, bool(np.isnan(arr).any())
    if kinds == {str}:
        try:
            arr = np.asarray(column, dtype=np.str_)
        except Exception:
            return None
        if arr.ndim != 1 or arr.tolist() != column:
            return None  # embedded NULs etc. would not round-trip
        return arr, False
    return None


def _concat_entries(first, second):
    """Entry for the concatenation of two classified columns, or ``None``.

    The families must agree (a cross-family concatenation is a mixed column,
    which classification from scratch would reject too); within the numeric
    family ``bool``/``int`` widen to int64 while ``int``/``float`` mixes are
    rejected — Python collapses ``1`` and ``1.0`` under set semantics, which
    integer codes cannot express.
    """
    if first is None or second is None:
        return None
    a, a_nan = first
    b, b_nan = second
    if a.size == 0:
        return second
    if b.size == 0:
        return first
    ka, kb = a.dtype.kind, b.dtype.kind
    if ka == "U" and kb == "U":
        return np.concatenate([a, b]), False
    if ka in "bi" and kb in "bi":
        if ka == "b" and kb == "b":
            return np.concatenate([a, b]), False
        return (
            np.concatenate([a.astype(np.int64), b.astype(np.int64)]),
            False,
        )
    if ka == "f" and kb == "f":
        return np.concatenate([a, b]), a_nan or b_nan
    return None


def _rolled_entries(source, payload, version) -> dict:
    """The relation-level entry dict rolled forward to ``version``.

    Only an unbroken all-append delta chain rolls forward: appended values
    are classified and concatenated per position.  A rejected position stays
    rejected (appends never remove the offending values), a family change
    drops just that position, and any non-append write drops everything.
    """
    if payload is None:
        return {}
    old_version, old_entries = payload
    if not old_entries:
        return {}
    chain = source.deltas_between(old_version, version)
    if chain is None or any(not delta.is_append for delta in chain):
        return {}
    appended = [row for delta in chain for row in delta.rows]
    entries: dict = {}
    for position, entry in old_entries.items():
        if entry is None:
            entries[position] = None
            continue
        suffix = _entry_for_list([row[position] for row in appended])
        rolled = _concat_entries(entry, suffix)
        if rolled is not None:
            entries[position] = rolled
    return entries


def _relation_entry(source, batch: ColumnBatch, position: int):
    """Serve ``position`` from the relation-level cache, or ``_MISS``.

    Eligibility is an identity check: the relation's version-keyed
    column-major cache must be current *and* hold the very list object the
    batch carries — a batch built before a write keeps classifying locally
    against its own snapshot.
    """
    cached_columns = source._column_cache[0]
    version = source.version
    if cached_columns is None or cached_columns[0] != version:
        return _MISS
    if cached_columns[1][position] is not batch.data[position]:
        return _MISS
    holder = source._vector_cache
    payload = holder[0]
    if payload is not None and payload[0] == version:
        entries = payload[1]
    else:
        entries = _rolled_entries(source, payload, version)
        holder[0] = (version, entries)
    entry = entries.get(position, _MISS)
    if entry is _MISS:
        entry = _entry_for_list(batch.data[position])
        entries[position] = entry
    return entry


def column_entry(batch: ColumnBatch, position: int):
    """The classified array entry for one batch column (cached), or ``None``."""
    source = batch._source
    if source is not None:
        entry = _relation_entry(source, batch, position)
        if entry is not _MISS:
            return entry
    vectors = batch._vectors
    if vectors is None:
        vectors = batch._vectors = {}
    entry = vectors.get(position, _MISS)
    if entry is _MISS:
        entry = _entry_for_list(batch.data[position])
        vectors[position] = entry
    return entry


def _ref_entry(ref: ColumnRef, batch: ColumnBatch):
    try:
        position = batch.resolve(ref.name, ref.qualifier)
    except KeyError:
        return None  # the serial fallback raises the engine's standard error
    return column_entry(batch, position)


def _int_exact(arr) -> bool:
    """True when every value is exactly representable in a float64."""
    if arr.dtype.kind == "b" or arr.size == 0:
        return True
    return -_EXACT_FLOAT_INT <= int(arr.min()) and int(arr.max()) <= _EXACT_FLOAT_INT


# --------------------------------------------------------------------------- #
# predicate masks
# --------------------------------------------------------------------------- #
@_traced_kernel
def vector_predicate_mask(predicate: Predicate, batch: ColumnBatch):
    """``predicate_mask`` as Python bools via NumPy, or ``None`` (fallback).

    An empty batch falls back (the serial mask returns ``[]`` without
    touching the predicate, and so must we).
    """
    if not numpy_available() or batch.length == 0:
        return None
    mask = _vmask(predicate, batch, batch.length)
    if mask is None:
        return None
    return mask.tolist()


@_traced_kernel
def vector_select_indices(predicate: Predicate, batch: ColumnBatch):
    """Kept row positions for a selection, or ``None`` (fallback)."""
    if not numpy_available() or batch.length == 0:
        return None
    mask = _vmask(predicate, batch, batch.length)
    if mask is None:
        return None
    return np.flatnonzero(mask).tolist()


def _vmask(predicate: Predicate, batch: ColumnBatch, n: int, strict: bool = False):
    if isinstance(predicate, Comparison):
        return _vcomparison(predicate, batch, n)
    if isinstance(predicate, TruePredicate):
        return np.ones(n, dtype=np.bool_)
    if isinstance(predicate, FalsePredicate):
        return np.zeros(n, dtype=np.bool_)
    if isinstance(predicate, (And, Or)):
        parts = [_vmask(operand, batch, n, strict) for operand in predicate.operands]
        if strict:
            # Strict mode runs on virtual batches (no materialised column
            # lists), so there is nothing for the serial fill-in to sweep.
            if any(part is None for part in parts):
                return None
        elif all(part is None for part in parts):
            return None
        combine = np.logical_and if isinstance(predicate, And) else np.logical_or
        out = None
        for operand, part in zip(predicate.operands, parts):
            if part is None:
                # Serve the unvectorizable conjunct serially; combining its
                # exact Python mask keeps the whole node on the fast path.
                part = np.fromiter(_mask(operand, batch, n), np.bool_, count=n)
            out = part if out is None else combine(out, part)
        return out
    if isinstance(predicate, Not):
        inner = _vmask(predicate.operand, batch, n, strict)
        return None if inner is None else ~inner
    if isinstance(predicate, In):
        return _vin(predicate, batch, n)
    if isinstance(predicate, Between):
        return _vbetween(predicate, batch, n)
    return None  # unknown predicate type: row-fallback territory


def _vcomparison(cmp: Comparison, batch: ColumnBatch, n: int):
    left, right, op = cmp.left, cmp.right, cmp.op
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right, op = right, left, _SWAPPED_OP[op]
    if not isinstance(left, ColumnRef):
        return None
    entry = _ref_entry(left, batch)
    if entry is None:
        return None
    arr = entry[0]
    if isinstance(right, Literal):
        return _const_mask(op, arr, right.value)
    if isinstance(right, ColumnRef):
        other = _ref_entry(right, batch)
        if other is None:
            return None
        return _col_col_mask(op, arr, other[0])
    return None  # arithmetic operand: serial expression evaluation


def _const_mask(op: str, arr, const):
    """``arr <op> const`` under the row engine's coercion rules, or ``None``."""
    kind = arr.dtype.kind
    if const is None:
        # None compares false under every operator.
        return np.zeros(arr.shape[0], dtype=np.bool_)
    kind_of_const = type(const)
    if kind in "bif":
        if kind_of_const is str:
            parsed = _try_parse_number(const)
            if parsed is None:
                return None  # Python stringifies the numbers instead
            const, kind_of_const = parsed, type(parsed)
        elif kind_of_const is bool:
            const, kind_of_const = int(const), int
        if kind_of_const is int:
            if kind == "f":
                if not -_EXACT_FLOAT_INT <= const <= _EXACT_FLOAT_INT:
                    return None  # promotion to float64 would be inexact
            elif not _INT64_MIN <= const <= _INT64_MAX:
                return None
        elif kind_of_const is float:
            if const != const:
                # NaN: IEEE ordering (everything False, "!=" True) matches
                # Python's, independent of the integer column's magnitude.
                return _NP_OPS[op](arr, const)
            if kind in "bi" and not _int_exact(arr):
                return None
        else:
            return None
        return _NP_OPS[op](arr, const)
    if kind == "U" and kind_of_const is str:
        return _NP_OPS[op](arr, const)  # code-point order, like Python
    return None  # cross-family: the coercing serial path decides


def _col_col_mask(op: str, a, b):
    ka, kb = a.dtype.kind, b.dtype.kind
    if ka in "bif" and kb in "bif":
        if ka == "f" and kb in "bi" and not _int_exact(b):
            return None
        if kb == "f" and ka in "bi" and not _int_exact(a):
            return None
        return _NP_OPS[op](a, b)
    if ka == "U" and kb == "U":
        return _NP_OPS[op](a, b)
    return None


def _vin(predicate: In, batch: ColumnBatch, n: int):
    """``IN`` membership via ``np.isin``, or ``None``.

    The row engine tests plain ``value in members`` — **no** coercion, so a
    string member can never match a numeric column (and vice versa); such
    members are dropped rather than rejected.  NaN anywhere rejects: ``in``
    uses identity-or-equality, which an array test cannot reproduce.
    """
    expr = predicate.expr
    if not isinstance(expr, ColumnRef):
        return None
    entry = _ref_entry(expr, batch)
    if entry is None:
        return None
    arr, has_nan = entry
    members = list(predicate.values)
    if not members:
        return np.zeros(n, dtype=np.bool_)
    kind = arr.dtype.kind
    if kind in "bif":
        if has_nan:
            return None
        numeric = []
        for member in members:
            member_type = type(member)
            if member_type is bool:
                numeric.append(int(member))
            elif member_type is int:
                numeric.append(member)
            elif member_type is float:
                if member != member:
                    return None
                numeric.append(member)
            elif member_type is str:
                continue  # == never matches a number
            else:
                return None
        any_float = any(type(member) is float for member in numeric)
        kept = []
        if kind in "bi":
            if any_float and not _int_exact(arr):
                return None
            for member in numeric:
                if type(member) is not int:
                    kept.append(member)
                elif any_float:
                    # isin promotes everything to float64; an int member
                    # beyond 2^53 cannot equal any exactly-held value anyway.
                    if -_EXACT_FLOAT_INT <= member <= _EXACT_FLOAT_INT:
                        kept.append(member)
                elif _INT64_MIN <= member <= _INT64_MAX:
                    kept.append(member)
        else:
            for member in numeric:
                if type(member) is not int:
                    kept.append(member)
                else:
                    try:
                        as_float = float(member)
                    except OverflowError:
                        continue  # cannot equal any float64
                    if int(as_float) == member:
                        kept.append(as_float)
        if not kept:
            return np.zeros(n, dtype=np.bool_)
        return np.isin(arr, kept)
    if kind == "U":
        kept = [member for member in members if type(member) is str]
        dropped = [member for member in members if type(member) is not str]
        if any(not isinstance(member, (bool, int, float)) for member in dropped):
            return None  # arbitrary objects could define __eq__ against str
        if not kept:
            return np.zeros(n, dtype=np.bool_)
        return np.isin(arr, np.asarray(kept, dtype=np.str_))
    return None


def _vbetween(predicate: Between, batch: ColumnBatch, n: int):
    expr = predicate.expr
    if not isinstance(expr, ColumnRef):
        return None
    entry = _ref_entry(expr, batch)
    if entry is None:
        return None
    arr = entry[0]
    low, high = predicate.low, predicate.high
    if low is None or high is None:
        return None  # comparable() has None-specific behaviour: serial path
    low_mask = _const_mask(">=", arr, low)
    if low_mask is None:
        return None
    high_mask = _const_mask("<=", arr, high)
    if high_mask is None:
        return None
    return low_mask & high_mask


# --------------------------------------------------------------------------- #
# fused selection over a cross product
# --------------------------------------------------------------------------- #
class _SideEntries(dict):
    """Lazy ``{combined position: entry}`` view of one product side.

    A virtual-product adapter batch carries the *combined* label list but only
    one side's rows; positions belonging to the other side classify as
    ``None`` (rejected), which makes any sub-predicate touching that side fail
    strict vectorisation on this adapter — exactly the signal
    :func:`_product_mask` uses to decompose the predicate instead.
    """

    def __init__(self, batch: ColumnBatch, offset: int, width: int):
        super().__init__()
        self._batch = batch
        self._offset = offset
        self._width = width

    def get(self, position, default=None):
        if position not in self:
            local = position - self._offset
            if 0 <= local < self._width:
                self[position] = column_entry(self._batch, local)
            else:
                self[position] = None
        return dict.__getitem__(self, position)


@_traced_kernel
def vector_product_select_positions(
    predicate: Predicate, left: ColumnBatch, right: ColumnBatch, labels: Sequence[str]
):
    """Surviving ``(left_rows, right_rows)`` of ``Select(Product)``, or ``None``.

    Fuses the selection into the cross product so the ``n × m`` value lists
    are never materialised: the mask over the virtual product is assembled
    from per-side masks (``np.repeat`` for the left side, ``np.tile`` for the
    right — the row engine's left-outer/right-inner ordering) and broadcast
    cross-side comparisons.  Only surviving coordinates are returned; the
    executor gathers them from the *original* Python column lists, preserving
    object identity (``True`` must stay ``bool``, not become ``1``).

    Strict: any sub-predicate that fails to vectorise rejects the whole node
    (there are no materialised product columns for a serial fill-in to
    sweep); the executor then materialises the product exactly as before.
    An empty product also rejects — the serial mask returns ``[]`` without
    evaluating the predicate, and the fallback reproduces that.
    """
    if not numpy_available():
        return None
    n_left, n_right = len(left), len(right)
    total = n_left * n_right
    if total == 0:
        return None
    split = len(left.data)
    placeholder = [[] for _ in labels]
    adapter_left = ColumnBatch(labels, placeholder, length=n_left)
    adapter_left._vectors = _SideEntries(left, 0, split)
    adapter_right = ColumnBatch(labels, placeholder, length=n_right)
    adapter_right._vectors = _SideEntries(right, split, len(right.data))
    mask = _product_mask(predicate, adapter_left, adapter_right, n_left, n_right)
    if mask is None:
        return None
    kept = np.flatnonzero(mask)
    left_rows = kept // n_right
    right_rows = kept - left_rows * n_right
    return left_rows.tolist(), right_rows.tolist()


def _product_mask(
    predicate: Predicate,
    adapter_left: ColumnBatch,
    adapter_right: ColumnBatch,
    n_left: int,
    n_right: int,
):
    """Boolean mask over the virtual product in global row order, or ``None``."""
    side = _vmask(predicate, adapter_left, n_left, strict=True)
    if side is not None:
        return np.repeat(side, n_right)
    side = _vmask(predicate, adapter_right, n_right, strict=True)
    if side is not None:
        return np.tile(side, n_left)
    if isinstance(predicate, (And, Or)):
        combine = np.logical_and if isinstance(predicate, And) else np.logical_or
        out = None
        for operand in predicate.operands:
            part = _product_mask(operand, adapter_left, adapter_right, n_left, n_right)
            if part is None:
                return None
            out = part if out is None else combine(out, part)
        return out
    if isinstance(predicate, Not):
        inner = _product_mask(
            predicate.operand, adapter_left, adapter_right, n_left, n_right
        )
        return None if inner is None else ~inner
    if isinstance(predicate, Comparison):
        return _cross_comparison(predicate, adapter_left, adapter_right)
    return None


def _cross_comparison(
    cmp: Comparison, adapter_left: ColumnBatch, adapter_right: ColumnBatch
):
    """Broadcast a column-to-column comparison that spans both product sides.

    ``mask[l, r]`` compares the left side's row ``l`` against the right
    side's row ``r``; ravelling the ``(n_left, n_right)`` result in C order
    is exactly the global product row order.  Exactness guards are
    :func:`_col_col_mask`'s own (it accepts the broadcast 2-D views).
    """
    left, right, op = cmp.left, cmp.right, cmp.op
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right, op = right, left, _SWAPPED_OP[op]
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    first = _cross_entry(left, adapter_left, adapter_right)
    second = _cross_entry(right, adapter_left, adapter_right)
    if first is None or second is None:
        return None
    (first_left, a), (second_left, b) = first, second
    if first_left == second_left:
        return None  # same side: the per-side attempt already rejected it
    if first_left:
        mask = _col_col_mask(op, a[:, None], b[None, :])
    else:
        mask = _col_col_mask(op, a[None, :], b[:, None])
    return None if mask is None else mask.ravel()


def _cross_entry(ref: ColumnRef, adapter_left: ColumnBatch, adapter_right: ColumnBatch):
    """``(is_left_side, array)`` for a reference on the combined labels, or ``None``."""
    try:
        position = adapter_left.resolve(ref.name, ref.qualifier)
    except KeyError:
        return None  # the serial fallback raises the engine's standard error
    entry = column_entry(adapter_left, position)
    if entry is not None:
        return True, entry[0]
    entry = column_entry(adapter_right, position)
    if entry is not None:
        return False, entry[0]
    return None


# --------------------------------------------------------------------------- #
# hash join: joint factorisation + stable sort + searchsorted
# --------------------------------------------------------------------------- #
@_traced_kernel
def vector_join_indices(
    left: ColumnBatch, right: ColumnBatch, pairs: Sequence[tuple[int, int]]
):
    """Matching ``(left_idx, right_idx)`` of a hash equi-join, or ``None``.

    Exactly the serial probe order: left rows in ascending order, each
    emitting its matching right rows in ascending order (a stable sort of
    the right key codes keeps equal keys in ascending index order, so the
    ``searchsorted`` span *is* the serial bucket).  Key columns must
    classify, carry no NaN (Python buckets give NaN identity semantics) and
    live in one family per pair — int/float crosses vectorize only when the
    integer side is float64-exact, mirroring dict hash/eq equivalence.
    """
    if not numpy_available():
        return None
    left_n, right_n = len(left), len(right)
    if left_n == 0 or right_n == 0:
        return [], []
    pair_codes = []
    sizes = []
    for left_pos, right_pos in pairs:
        left_entry = column_entry(left, left_pos)
        right_entry = column_entry(right, right_pos)
        if (
            left_entry is None
            or right_entry is None
            or left_entry[1]
            or right_entry[1]
        ):
            return None
        left_arr, right_arr = left_entry[0], right_entry[0]
        ka, kb = left_arr.dtype.kind, right_arr.dtype.kind
        if ka in "bif" and kb in "bif":
            if "f" in (ka, kb):
                if ka in "bi" and not _int_exact(left_arr):
                    return None
                if kb in "bi" and not _int_exact(right_arr):
                    return None
                left_arr = left_arr.astype(np.float64)
                right_arr = right_arr.astype(np.float64)
            else:
                left_arr = left_arr.astype(np.int64)
                right_arr = right_arr.astype(np.int64)
        elif not (ka == "U" and kb == "U"):
            return None  # cross-family keys: serial dict semantics decide
        both = np.concatenate([left_arr, right_arr])
        _, inverse = np.unique(both, return_inverse=True)
        pair_codes.append(inverse.astype(np.int64))
        sizes.append(int(inverse.max()) + 1)  # both sides non-empty here
    code = pair_codes[0]
    size = sizes[0]
    for next_code, next_size in zip(pair_codes[1:], sizes[1:]):
        if size * max(next_size, 1) > _CODE_LIMIT:
            return None
        code = code * next_size + next_code
        size *= max(next_size, 1)
    left_codes = code[:left_n]
    right_codes = code[left_n:]
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    span_start = np.searchsorted(sorted_codes, left_codes, side="left")
    span_stop = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = span_stop - span_start
    matched = counts > 0
    match_counts = counts[matched]
    total = int(match_counts.sum())
    if total == 0:
        return [], []
    left_idx = np.repeat(np.flatnonzero(matched), match_counts)
    cumulative = np.cumsum(match_counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        cumulative - match_counts, match_counts
    )
    right_idx = order[np.repeat(span_start[matched], match_counts) + within]
    return left_idx.tolist(), right_idx.tolist()


# --------------------------------------------------------------------------- #
# duplicate elimination and grouping: shared row coding
# --------------------------------------------------------------------------- #
def _combined_codes(entries):
    """One int64 code per row with code equality == Python tuple equality.

    Every entry must be classified and NaN-free (``np.unique`` collapses
    NaNs, Python's set semantics do not).  Per-column factor codes combine
    mixed-radix, guarded against int64 overflow.
    """
    code = None
    size = 1
    for entry in entries:
        if entry is None or entry[1]:
            return None
        arr = entry[0]
        uniq, inverse = np.unique(arr, return_inverse=True)
        inverse = inverse.astype(np.int64)
        radix = max(len(uniq), 1)
        if code is None:
            code, size = inverse, radix
        else:
            if size * radix > _CODE_LIMIT:
                return None
            code = code * radix + inverse
            size *= radix
    return code


def _first_occurrence_keep(code) -> list[int]:
    """Ascending first-occurrence positions of each distinct code."""
    _, first = np.unique(code, return_index=True)
    first.sort()
    return first.tolist()


@_traced_kernel
def vector_distinct_indices(batch: ColumnBatch, positions: Sequence[int]):
    """First-occurrence keep list for DISTINCT over ``positions``, or ``None``."""
    if not numpy_available() or not positions:
        return None
    entries = [column_entry(batch, position) for position in positions]
    code = _combined_codes(entries)
    if code is None:
        return None
    return _first_occurrence_keep(code)


@_traced_kernel
def vector_union_distinct_indices(left: ColumnBatch, right: ColumnBatch):
    """Keep list for UNION DISTINCT over the stacked batches, or ``None``."""
    if not numpy_available() or not left.data:
        return None
    entries = []
    for position in range(len(left.data)):
        entry = _concat_entries(
            column_entry(left, position), column_entry(right, position)
        )
        if entry is None:
            return None
        entries.append(entry)
    code = _combined_codes(entries)
    if code is None:
        return None
    return _first_occurrence_keep(code)


@_traced_kernel
def vector_group_indices(
    batch: ColumnBatch,
    positions: Sequence[int],
    key_columns: Sequence[list],
    n: int,
):
    """Serial-identical grouping via sort-based segment extraction, or ``None``.

    Returns ``{key tuple: ascending member positions}`` with keys inserted in
    first-occurrence order and built from the *original Python values* at
    each group's first row — the exact dict the serial loop produces, so the
    executor's serial per-group fold (and its float accumulation) runs
    unchanged on top.
    """
    if not numpy_available() or not positions or n == 0:
        return None
    entries = [column_entry(batch, position) for position in positions]
    code = _combined_codes(entries)
    if code is None:
        return None
    uniq, first, inverse = np.unique(code, return_index=True, return_inverse=True)
    inverse = inverse.astype(np.int64)
    group_order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[group_order] = np.arange(len(uniq), dtype=np.int64)
    group_ids = rank[inverse]
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    boundaries = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    member_lists = np.split(order, boundaries)
    first_rows = first[group_order]
    groups: dict[tuple, list[int]] = {}
    for group_id, members in enumerate(member_lists):
        row = int(first_rows[group_id])
        key = tuple(column[row] for column in key_columns)
        groups[key] = members.tolist()
    return groups
