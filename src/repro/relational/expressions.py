"""Scalar expressions evaluated against a row of a :class:`Relation`.

Expressions are the leaves of predicates (:mod:`repro.relational.predicates`)
and the inputs of aggregates.  Only what the paper's query workload needs is
implemented: column references, literals and the four arithmetic operators
(used by derived measures such as ``price * quantity``).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

from repro.relational.relation import Relation, Row


class Expression:
    """Base class for scalar expressions."""

    def evaluate(self, relation: Relation, row: Row) -> Any:
        """Evaluate the expression against one row of ``relation``."""
        raise NotImplementedError

    def referenced_columns(self) -> list["ColumnRef"]:
        """All column references appearing in the expression."""
        raise NotImplementedError

    def rename(self, rename_ref: Callable[["ColumnRef"], "ColumnRef"]) -> "Expression":
        """Return a copy with every column reference rewritten by ``rename_ref``."""
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column by attribute name and optional qualifier.

    For target queries the qualifier is the *target alias* (e.g. ``PO1``) and
    the name is the *target attribute* (e.g. ``orderNum``).  Reformulation
    rewrites both parts into source-level labels.
    """

    name: str
    qualifier: str | None = None

    @property
    def display(self) -> str:
        """Human-readable form (``qualifier.name`` or just ``name``)."""
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def evaluate(self, relation: Relation, row: Row) -> Any:
        return row[relation.resolve(self.name, self.qualifier)]

    def referenced_columns(self) -> list["ColumnRef"]:
        return [self]

    def rename(self, rename_ref: Callable[["ColumnRef"], "ColumnRef"]) -> "Expression":
        return rename_ref(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.display


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, relation: Relation, row: Row) -> Any:
        return self.value

    def referenced_columns(self) -> list[ColumnRef]:
        return []

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Expression":
        return self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic over two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ValueError(f"unsupported arithmetic operator {self.op!r}")

    def evaluate(self, relation: Relation, row: Row) -> Any:
        left = self.left.evaluate(relation, row)
        right = self.right.evaluate(relation, row)
        if left is None or right is None:
            return None
        return _ARITHMETIC[self.op](left, right)

    def referenced_columns(self) -> list[ColumnRef]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Expression":
        return Arithmetic(self.op, self.left.rename(rename_ref), self.right.rename(rename_ref))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left} {self.op} {self.right})"


def col(name: str, qualifier: str | None = None) -> ColumnRef:
    """Shorthand constructor for :class:`ColumnRef`.

    ``col("PO.orderNum")`` and ``col("orderNum", "PO")`` are equivalent.
    """
    if qualifier is None and "." in name:
        qualifier, name = name.split(".", 1)
    return ColumnRef(name=name, qualifier=qualifier)


def lit(value: Any) -> Literal:
    """Shorthand constructor for :class:`Literal`."""
    return Literal(value)
